#!/usr/bin/env python
"""Overload drill: watch thrashing happen, then watch admission control
prevent it.

The Figure 8 mechanics, narrated with live cluster snapshots: an open
system pushes 400 TPS of single-item buys at a 50-item hotspot on a
resource-constrained cluster (phase2a priced like the m1.large disk
write it is).  Without admission control the option-round backlog and
RPC queues balloon; with Dynamic(90) the doomed hot transactions are
turned away and the system stays inside its capacity.

Run:  python examples/overload_drill.py
"""

from repro.core import DynamicPolicy
from repro.harness import Experiment, ExperimentConfig, HealthMonitor
from repro.harness.report import print_table

RATE_TPS = 400.0


def run(label, admission):
    config = ExperimentConfig(
        name=f"drill-{label}", seed=17, system="planet",
        topology="ec2", n_items=25_000, hotspot_size=50,
        rate_tps=RATE_TPS, timeout_ms=5_000.0, min_items=1, max_items=1,
        admission=admission, need_model=True,
        storage_service_ms=0.8,
        storage_service_overrides={"phase2a": 5.5},
        warmup_ms=5_000.0, duration_ms=20_000.0, drain_ms=15_000.0)
    experiment = Experiment(config)
    monitor = HealthMonitor(experiment.cluster, interval_ms=5_000.0)
    result = experiment.run()
    return result, monitor


def main() -> None:
    rows = []
    depth_series = {}
    for label, admission in (("no control", None),
                             ("Dynamic(90)", DynamicPolicy(90))):
        result, monitor = run(label, admission)
        metrics = result.metrics
        last = monitor.samples[-1]
        rows.append([
            label,
            round(metrics.commit_tps(), 1),
            round(metrics.abort_tps(), 1),
            round(metrics.rejected_tps(), 1),
            round(metrics.mean_response_ms(), 0),
            last.max_queue_depth,
            round(100 * last.option_reject_rate, 1),
        ])
        depth_series[label] = monitor.series("max_queue_depth")

    print_table(
        ["admission", "commit tps", "abort tps", "rejected tps",
         "mean resp ms", "max RPC queue", "option reject %"],
        rows,
        title=(f"Overload drill: {RATE_TPS:.0f} TPS at a 50-item "
               "hotspot, disk-priced phase2a"))

    print("max RPC queue depth over time (5s samples):")
    for label, series in depth_series.items():
        print(f"  {label:12s} {[int(v) for v in series]}")
    print()
    print("Reading it: without control the servers queue ever deeper "
          "processing doomed option rounds; Dynamic(90) rejects the "
          "low-likelihood hot transactions up front, trading raw "
          "attempts for stable queues and cheap responses.")


if __name__ == "__main__":
    main()
