#!/usr/bin/env python
"""Two ends of the consistency/latency spectrum on one database.

Reproduces the paper's Listings 3 and 4 side by side:

* **Twitter-style post** (Listing 4): append-only, never conflicts —
  the developer defines only onFailure and onAccept, so the user gets
  an answer as soon as the first storage node has the post (eventual-
  consistency response times, strongly consistent data).

* **ATM withdrawal** (Listing 3): correctness-critical — no onAccept,
  the user waits for the real outcome; if the timeout fires first the
  ATM declines, and the remote finally callback alerts service
  personnel about a withdrawal that committed after the decline.

Run:  python examples/social_vs_atm.py
"""

from repro import PlanetSession, Update, WriteOp, quick_cluster


def twitter_post(env, cluster) -> None:
    # A user's timeline record is mastered in their home region, so we
    # run the app server in the data center that leads the record.
    home_dc = cluster.leader_dc("timeline:alice")
    region = cluster.topology.datacenters[home_dc].name
    print(f"== Twitter-style post from {region} "
          "(onFailure + onAccept only) ==")
    session = PlanetSession(cluster, "tweet-app", datacenter=home_dc)

    def on_failure(info):
        print(f"  +{info.elapsed_ms:7.1f} ms  app: could not reach "
              "the service")

    def on_accept(info):
        print(f"  +{info.elapsed_ms:7.1f} ms  app: tweet posted "
              "(guaranteed durable, globally visible soon)")

    (session.transaction([WriteOp("timeline:alice", Update.delta(+1))],
                         timeout_ms=200)
     .on_failure(on_failure)
     .on_accept(on_accept)
     ).execute()


def atm_withdrawal(env, cluster) -> None:
    print("== ATM withdrawal (no onAccept; 25 ms deadline forces a "
          "decline) ==")
    session = PlanetSession(cluster, "atm-42", datacenter=1)  # us-east

    def on_failure(info):
        print(f"  +{info.elapsed_ms:7.1f} ms  atm: transaction failed, "
              "please try again (no cash dispensed)")

    def on_complete(info):
        verdict = "dispensing cash" if info.success else "declined"
        print(f"  +{info.elapsed_ms:7.1f} ms  atm: {verdict}")

    def alert_service(info):
        if info.success and info.timed_out:
            print(f"  +{info.elapsed_ms:7.1f} ms  ops: withdrawal "
                  f"{info.txid} committed AFTER the ATM showed a "
                  "failure - reconcile the account!")

    (session.transaction(
        [WriteOp("account:alice", Update.delta(-100, floor=0))],
        timeout_ms=25)
     .on_failure(on_failure)
     .on_complete(on_complete)
     .finally_callback_remote(alert_service)
     ).execute()


def main() -> None:
    env, cluster = quick_cluster(seed=11)
    cluster.load({"timeline:alice": 0, "account:alice": 500})

    twitter_post(env, cluster)
    env.run()
    print()
    atm_withdrawal(env, cluster)
    env.run()

    print()
    print(f"account balance after reconciliation: "
          f"{cluster.read_value('account:alice', dc=1)}")


if __name__ == "__main__":
    main()
