#!/usr/bin/env python
"""Ticket sale: speculative commits + admission control under a rush.

§3.2 of the paper motivates speculative commits with a ticket
reservation system: respond instantly when the sale is safe, without
significantly overselling a high-demand event.  This example sells a
hot event (one record everybody wants) and a catalogue of cold events,
comparing three configurations over the same 30-second rush:

* traditional semantics (wait for the real outcome);
* speculation only (onComplete at 95 % likelihood);
* speculation + Dynamic(50) admission control.

Stock floors guarantee the event can never go negative, whatever the
programming model does.

Run:  python examples/ticket_sale.py
"""

import random

from repro import (
    DynamicPolicy,
    OracleLatencySource,
    CommitLikelihoodModel,
    PlanetSession,
    Update,
    WriteOp,
    quick_cluster,
)
from repro.harness import print_table


HOT_EVENT = "event:google-io"
COLD_EVENTS = [f"event:meetup-{i}" for i in range(200)]
RUSH_MS = 30_000.0
RATE_TPS = 60.0
HOT_FRACTION = 0.5


def run_configuration(label, seed, spec_threshold, admission):
    env, cluster = quick_cluster(seed=seed)
    cluster.load({HOT_EVENT: 2_000})
    cluster.load({event: 100 for event in COLD_EVENTS})

    matrix = OracleLatencySource(cluster.topology, cluster.streams,
                                 samples=1500).latency_matrix()
    model = CommitLikelihoodModel(
        matrix, cluster.mastership.leader_distribution())
    model.precompute()

    sessions = [
        PlanetSession(cluster, f"kiosk-{dc}", dc, model=model,
                      admission=admission)
        for dc in range(5)
    ]
    transactions = []
    rng = random.Random(seed)

    def buyer(env):
        i = 0
        while env.now < RUSH_MS:
            yield env.timeout(rng.expovariate(RATE_TPS / 1000.0))
            event = (HOT_EVENT if rng.random() < HOT_FRACTION
                     else rng.choice(COLD_EVENTS))
            session = sessions[i % len(sessions)]
            i += 1
            tx = (session.transaction(
                      [WriteOp(event, Update.delta(-1, floor=0))],
                      timeout_ms=2_000)
                  .on_failure(lambda info: None)
                  .on_complete(lambda info: None,
                               threshold=spec_threshold)
                  .finally_callback(lambda info: None))
            transactions.append((event == HOT_EVENT, tx.execute()))

    env.process(buyer(env))
    env.run()

    sold = sum(1 for _hot, t in transactions if t.committed)
    spec = sum(1 for _hot, t in transactions if t.spec_committed)
    apologies = sum(1 for _hot, t in transactions if t.spec_incorrect)
    rejected = sum(1 for _hot, t in transactions if t.admitted is False)
    responses = [t.commit_response_ms for _hot, t in transactions
                 if t.commit_response_ms is not None]
    mean_response = sum(responses) / len(responses) if responses else 0.0
    remaining = cluster.read_value(HOT_EVENT)
    return [label, len(transactions), sold, spec, apologies, rejected,
            round(mean_response, 1), remaining]


def main() -> None:
    rows = [
        run_configuration("wait for outcome", 7, None, None),
        run_configuration("spec 95%", 7, 0.95, None),
        run_configuration("spec 95% + Dyn(50)", 7, 0.95, DynamicPolicy(50)),
    ]
    print_table(
        ["configuration", "requests", "sold", "spec-responses", "apologies",
         "rejected", "mean resp ms", "hot stock left"],
        rows,
        title="Ticket rush: 60 req/s for 30 s, half aimed at one event")
    print("Oversell check: hot stock never drops below zero thanks to "
          "the stock floor, even with speculative responses.")


if __name__ == "__main__":
    main()
