#!/usr/bin/env python
"""The generalized model (§4.1): live progress UI + user-defined commit.

A checkout page subscribes to ``on_progress`` and narrates the
transaction's journey — "contacting the backend", "booking received",
"order completed" — exactly the UX §4.1.2 describes.  The handler also
*redefines commit*: the page stops waiting once the commit likelihood
passes 95 %, reclaiming the thread of control with ``FINISH_TX`` while
the Paxos rounds settle in the background.

Background shoppers keep the items warm so the likelihood starts below
the bar and visibly rises as learned messages arrive.

Run:  python examples/progress_tracker.py
"""

import random

from repro import (
    FINISH_TX,
    CommitLikelihoodModel,
    OracleLatencySource,
    PlanetSession,
    TxState,
    Update,
    WriteOp,
    quick_cluster,
)

ITEMS = [f"item:{i}" for i in range(5)]
WARMUP_MS = 20_000.0
FINISH_AT = 0.95
SEED = 4


def background_shoppers(env, cluster, seed):
    """A trickle of buy traffic that warms the access-rate buckets."""
    session = PlanetSession(cluster, "background", datacenter=4)
    rng = random.Random(seed)

    def shop(env):
        while True:
            yield env.timeout(rng.expovariate(1 / 800.0))  # ~1.25 tps
            item = rng.choice(ITEMS)
            (session.transaction([WriteOp(item, Update.delta(-1))],
                                 timeout_ms=5_000)
             .on_failure(lambda info: None)).execute()

    env.process(shop(env))


def main() -> None:
    env, cluster = quick_cluster(seed=SEED)
    cluster.load({item: 10_000 for item in ITEMS})
    background_shoppers(env, cluster, seed=SEED)
    env.run(until=WARMUP_MS)

    matrix = OracleLatencySource(cluster.topology, cluster.streams,
                                 samples=1500).latency_matrix()
    model = CommitLikelihoodModel(
        matrix, cluster.mastership.leader_distribution())
    model.precompute()
    session = PlanetSession(cluster, "checkout", datacenter=2, model=model)

    page_done = False

    def progress(info):
        nonlocal page_done
        if page_done:
            return None
        banner = {
            "likelihood": "trying to contact the backend...",
            "accepted": "booking received...",
            "learned": "confirming with remote regions...",
            "decided": "order completed",
            "timeout": "this is taking longer than expected...",
        }.get(info.stage, info.stage)
        print(f"  +{info.elapsed_ms:7.1f} ms  [{info.stage:10s}] "
              f"{banner}  (P(commit)={info.commit_likelihood:.3f})")
        if info.stage == "decided":
            page_done = True
            return FINISH_TX
        if info.commit_likelihood >= FINISH_AT:
            print(f"  +{info.elapsed_ms:7.1f} ms  page: likelihood above "
                  f"{FINISH_AT:.0%} - showing the success screen now")
            page_done = True
            return FINISH_TX
        return None

    def final(info):
        print(f"  +{info.elapsed_ms:7.1f} ms  background: true outcome = "
              f"{info.state.value}")

    order = [
        WriteOp("item:0", Update.delta(-1)),
        WriteOp("item:3", Update.delta(-2)),
    ]
    tx = (session.transaction(order, timeout_ms=2_000)
          .on_progress(progress)
          .finally_callback(final))
    planet_tx = tx.execute()
    # The background shoppers run forever; bound the simulation instead
    # of draining the queue.
    env.run(until=WARMUP_MS + 5_000)

    print()
    returned_after = planet_tx.stage_fired_ms - planet_tx.start_ms
    decided_after = planet_tx.decided_ms - planet_tx.start_ms
    print(f"control returned after {returned_after:.1f} ms; "
          f"the real decision took {decided_after:.1f} ms")
    if planet_tx.state is not TxState.COMMITTED:
        print("(a background shopper beat us to an item - the page "
              "apologized via the finally callback)")


if __name__ == "__main__":
    main()
