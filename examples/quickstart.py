#!/usr/bin/env python
"""Quickstart: the web-shop order transaction of the paper's Listing 2.

Builds the five-data-center geo-replicated database, then places an
order with a 300 ms deadline.  Within that deadline the user sees one
of three responses — an error, "thanks for your order", or the final
result — and is always eventually told the true outcome via the
finally callbacks, no matter how slow the WAN was.

Run:  python examples/quickstart.py
"""

from repro import (
    PlanetSession,
    Update,
    WriteOp,
    quick_cluster,
)


def main() -> None:
    env, cluster = quick_cluster(seed=42)  # the paper's 5 EC2 regions
    cluster.load({"item:17": 100, "orders": 0})
    session = PlanetSession(cluster, "web-frontend", datacenter=0)

    def show_error(info):
        print(f"[{env.now:7.1f} ms] page: something went wrong "
              f"(state={info.state.value})")

    def show_thanks(info):
        print(f"[{env.now:7.1f} ms] page: thanks for your order! "
              "We'll email you a confirmation.")

    def show_result(info):
        print(f"[{env.now:7.1f} ms] page: order "
              f"{'successful' if info.success else 'not successful'}")

    def update_via_ajax(info):
        print(f"[{env.now:7.1f} ms] ajax: final status = "
              f"{info.state.value}")

    def send_email(info):
        print(f"[{env.now:7.1f} ms] email: your order "
              f"{'shipped!' if info.success else 'could not be placed.'}")

    # Listing 2, in Python: buy one unit of item 17, record the order.
    order = [
        WriteOp("orders", Update.delta(+1)),
        WriteOp("item:17", Update.delta(-1)),
    ]
    (session.transaction(order, timeout_ms=300)
     .on_failure(show_error)
     .on_accept(show_thanks)
     .on_complete(show_result, threshold=0.90)
     .finally_callback(update_via_ajax)
     .finally_callback_remote(send_email)
     ).execute()

    env.run()
    print("\nfinal stock of item:17 in every data center:")
    for dc in range(5):
        name = cluster.topology.datacenters[dc].name
        print(f"  {name:10s} -> {cluster.read_value('item:17', dc=dc)}")


if __name__ == "__main__":
    main()
