#!/usr/bin/env python
"""Comparing commit/success likelihoods across protocols (§5.1.3).

The PLANET model is protocol-agnostic: given a vulnerability-window
distribution, any commit protocol gets a likelihood.  This example
builds the paper's MDCC model plus the three §5.1.3 sketches — an
eventually consistent quorum store, Megastore-style entity groups, and
classical 2PC — on the same five-region latency matrix, then prints
how each protocol's success likelihood degrades as the update rate on
a record (or partition) grows.

Run:  python examples/protocol_comparison.py
"""

from repro import (
    CommitLikelihoodModel,
    OracleLatencySource,
    RandomStreams,
    ec2_five_dc,
)
from repro.core.protocol_models import (
    MegastoreModel,
    QuorumStoreModel,
    TwoPhaseCommitModel,
)
from repro.harness import print_table
from repro.harness.report import render_bars

RATES_PER_SEC = [0.1, 0.5, 2.0, 8.0]
CLIENT_DC, LEADER_DC = 0, 1       # us-west client, us-east master
PARTICIPANTS = [1, 2, 3]          # 2PC participants
PARTITION_FANIN = 20              # records per Megastore entity group


def main() -> None:
    topo = ec2_five_dc(spike_prob=0.0)
    streams = RandomStreams(seed=9)
    matrix = OracleLatencySource(topo, streams,
                                 samples=2000).latency_matrix()

    mdcc = CommitLikelihoodModel(matrix, [0.2] * 5)
    mdcc.precompute()
    megastore = MegastoreModel(mdcc)
    quorum_store = QuorumStoreModel(matrix, read_quorum=1, write_quorum=2)
    two_pc = TwoPhaseCommitModel(matrix, extra_hold_ms=100.0)

    rows = []
    for rate_per_sec in RATES_PER_SEC:
        lam = rate_per_sec / 1000.0  # per-ms
        rows.append([
            rate_per_sec,
            round(quorum_store.update_success_likelihood(CLIENT_DC, lam), 3),
            round(mdcc.record_likelihood(CLIENT_DC, LEADER_DC, lam), 3),
            round(megastore.partition_likelihood(
                CLIENT_DC, LEADER_DC, lam * PARTITION_FANIN), 3),
            round(two_pc.record_likelihood(CLIENT_DC, PARTICIPANTS, lam), 3),
        ])
    print_table(
        ["updates/sec", "EC quorum store", "MDCC (per record)",
         f"Megastore ({PARTITION_FANIN}-rec group)", "2PC (+100ms hold)"],
        rows,
        title="P(success) vs per-record update rate, five EC2 regions")

    lam = 2.0 / 1000.0
    print(render_bars(
        ["EC store", "MDCC", "Megastore", "2PC"],
        [quorum_store.update_success_likelihood(CLIENT_DC, lam),
         mdcc.record_likelihood(CLIENT_DC, LEADER_DC, lam),
         megastore.partition_likelihood(CLIENT_DC, LEADER_DC,
                                        lam * PARTITION_FANIN),
         two_pc.record_likelihood(CLIENT_DC, PARTICIPANTS, lam)],
        width=40, title="\nP(success) at 2 updates/sec:"))
    print()
    print("Reading the table: Megastore pays for partition-granularity "
          "conflicts; 2PC pays for the extra lock hold; the EC store's "
          "short quorum window wins on likelihood but gives up "
          "transactions and strong reads to get it.")


if __name__ == "__main__":
    main()
