#!/usr/bin/env python
"""Flash sale: admission control plus developer-side retries.

§4.2 of the paper: PLANET never retries rejected transactions itself,
but the transaction summary gives the developer everything needed to
retry with exponential backoff.  This example floods one item with
buyers under a Dynamic(90) policy, then shows a single determined
buyer pushing their purchase through `execute_with_retries` while a
tracer prints the winning attempt's protocol timeline.

Run:  python examples/flash_sale_retry.py
"""

import random

from repro import (
    CommitLikelihoodModel,
    DynamicPolicy,
    OracleLatencySource,
    PlanetSession,
    Update,
    WriteOp,
    quick_cluster,
)
from repro.core.retry import BackoffPolicy, execute_with_retries
from repro.harness.tracing import TransactionTracer

FLASH_ITEM = "item:flash"
CROWD_TPS = 40.0
WARMUP_MS = 25_000.0


def main() -> None:
    env, cluster = quick_cluster(seed=6)
    cluster.load({FLASH_ITEM: 100_000})

    matrix = OracleLatencySource(cluster.topology, cluster.streams,
                                 samples=1500).latency_matrix()
    model = CommitLikelihoodModel(
        matrix, cluster.mastership.leader_distribution())
    model.precompute()

    # The crowd: everyone hammers the flash item through Dynamic(90).
    crowd = [
        PlanetSession(cluster, f"crowd-{dc}", dc, model=model,
                      admission=DynamicPolicy(90))
        for dc in range(5)
    ]
    rng = random.Random(1)

    def crowd_loop(env):
        i = 0
        while True:
            yield env.timeout(rng.expovariate(CROWD_TPS / 1000.0))
            session = crowd[i % len(crowd)]
            i += 1
            (session.transaction([WriteOp(FLASH_ITEM, Update.delta(-1))],
                                 timeout_ms=3_000)
             .on_failure(lambda info: None)).execute()

    env.process(crowd_loop(env))
    env.run(until=WARMUP_MS)

    crowd_txs = [t for s in crowd for t in s.transactions]
    rejected = sum(1 for t in crowd_txs if t.admitted is False)
    committed = sum(1 for t in crowd_txs if t.committed)
    print(f"crowd so far: {len(crowd_txs)} requests, {committed} sales, "
          f"{rejected} turned away by Dynamic(90)")

    # One determined buyer retries through the rejections.
    buyer = PlanetSession(cluster, "determined-buyer", 2, model=model,
                          admission=DynamicPolicy(90))
    retry = execute_with_retries(
        buyer, [WriteOp(FLASH_ITEM, Update.delta(-1))], timeout_ms=3_000,
        backoff=BackoffPolicy(initial_ms=200, multiplier=1.6,
                              max_backoff_ms=2_000, jitter=0.1),
        max_attempts=40)
    env.run(until=WARMUP_MS + 120_000)

    print(f"\nbuyer attempts: {len(retry.attempts)}")
    for i, attempt in enumerate(retry.attempts, start=1):
        likelihood = attempt.initial_likelihood
        print(f"  attempt {i}: state={attempt.state.value:9s} "
              f"initial P(commit)={likelihood:.3f}")
    if retry.committed:
        winning = retry.attempts[-1]
        print(f"\npurchase succeeded: decided "
              f"{winning.decided_ms - winning.start_ms:.0f} ms after the "
              "winning attempt started")
        tracer = TransactionTracer()
        # Re-run a fresh, traced purchase to show a live timeline.
        # (Note the quirk at the end: with only onFailure defined, the
        # stage block fires at the timeout even though the commit has
        # long been known — exactly Figure 3's semantics.)
        traced_tx = (buyer.transaction(
                         [WriteOp(FLASH_ITEM, Update.delta(-1))],
                         timeout_ms=3_000)
                     .on_failure(lambda info: None))
        traced = traced_tx.execute()
        trace = tracer.attach(traced)
        env.run(until=env.now + 10_000)
        print(trace.render())
    else:
        print("\nthe buyer gave up after exhausting the retry budget")


if __name__ == "__main__":
    main()
