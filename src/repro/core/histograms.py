"""Discrete probability mass functions over message-delay bins.

All the stochastic-variable manipulations of §5.1.2 — convolution of
delays (eq. 1/3/5), quorum order statistics (eq. 2), maxima over
leaders (eq. 4), mixtures over unknown locations and sizes (eq. 6),
and the Poisson no-conflict integral (eq. 7/8b) — are carried out on
fixed-width histograms, mirroring the paper's own simplification
("in practice, the integration itself is simplified as we use
histograms for the statistics", §5.2).

A :class:`Pmf` is immutable; a :class:`WindowedHistogram` is the
mutable, aging sample collector the statistics service maintains.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np


class Pmf:
    """A distribution over delays ``[0, n_bins * bin_ms)``.

    Mass that would fall beyond the last bin is accumulated *in* the
    last bin so that total mass stays 1 (a deliberate saturation — the
    likelihood integral then under-estimates commit probability for
    extreme tails, which is the conservative direction).
    """

    __slots__ = ("bin_ms", "probs")

    def __init__(self, probs: np.ndarray, bin_ms: float):
        if bin_ms <= 0:
            raise ValueError("bin_ms must be positive")
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probs must be a non-empty 1-D array")
        if (probs < -1e-12).any():
            raise ValueError("negative probability mass")
        total = probs.sum()
        if total <= 0:
            raise ValueError("zero total mass")
        self.bin_ms = float(bin_ms)
        self.probs = np.clip(probs, 0.0, None) / total

    # -- constructors -------------------------------------------------------

    @classmethod
    def point(cls, delay_ms: float, bin_ms: float, n_bins: int) -> "Pmf":
        """All mass on one delay (degenerate distribution)."""
        probs = np.zeros(n_bins)
        index = min(int(delay_ms / bin_ms), n_bins - 1)
        probs[index] = 1.0
        return cls(probs, bin_ms)

    @classmethod
    def from_samples(cls, samples: Sequence[float], bin_ms: float,
                     n_bins: int) -> "Pmf":
        """Bin a list of delay samples (values beyond the range saturate)."""
        if len(samples) == 0:
            raise ValueError("no samples")
        indices = np.minimum(
            (np.asarray(samples, dtype=float) / bin_ms).astype(int),
            n_bins - 1)
        probs = np.bincount(indices, minlength=n_bins).astype(float)
        return cls(probs, bin_ms)

    @classmethod
    def from_counts(cls, counts: np.ndarray, bin_ms: float) -> "Pmf":
        return cls(np.asarray(counts, dtype=float), bin_ms)

    # -- descriptive ----------------------------------------------------------

    @property
    def n_bins(self) -> int:
        return self.probs.size

    def bin_centers(self) -> np.ndarray:
        return (np.arange(self.n_bins) + 0.5) * self.bin_ms

    def mean(self) -> float:
        return float(np.dot(self.probs, self.bin_centers()))

    def cdf(self) -> np.ndarray:
        return np.cumsum(self.probs)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q outside [0, 1]")
        index = int(np.searchsorted(self.cdf(), q))
        return min(index, self.n_bins - 1) * self.bin_ms

    # -- algebra of stochastic variables -------------------------------------

    def _check_compatible(self, other: "Pmf") -> None:
        if abs(other.bin_ms - self.bin_ms) > 1e-9:
            raise ValueError("mismatched bin widths")

    def convolve(self, other: "Pmf") -> "Pmf":
        """Distribution of the sum of two independent delays (eq. 1)."""
        self._check_compatible(other)
        n = max(self.n_bins, other.n_bins)
        full = np.convolve(self.probs, other.probs)
        probs = full[:n].copy()
        probs[-1] += full[n:].sum()  # saturate the tail
        return Pmf(probs, self.bin_ms)

    def shift(self, delay_ms: float) -> "Pmf":
        """Add a constant delay."""
        if delay_ms < 0:
            raise ValueError("negative shift")
        # Half-up rounding (not banker's) so .5 boundaries shift right.
        k = math.floor(delay_ms / self.bin_ms + 0.5)
        if k == 0:
            return self
        probs = np.zeros_like(self.probs)
        if k < self.n_bins:
            probs[k:] = self.probs[:-k]
            probs[-1] += self.probs[-k:].sum()  # saturate displaced mass
        else:
            probs[-1] = 1.0
        return Pmf(probs, self.bin_ms)

    def scale(self, factor: float) -> "Pmf":
        """Distribution of ``factor * X`` (used for RTT -> one-way)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        centers = np.arange(self.n_bins) * factor
        indices = np.minimum(centers.astype(int), self.n_bins - 1)
        probs = np.zeros_like(self.probs)
        np.add.at(probs, indices, self.probs)
        return Pmf(probs, self.bin_ms)

    @staticmethod
    def mixture(pmfs: Sequence["Pmf"], weights: Sequence[float]) -> "Pmf":
        """Marginalize over a discrete latent choice (eq. 6)."""
        if len(pmfs) != len(weights) or not pmfs:
            raise ValueError("pmfs and weights must align and be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights sum to zero")
        n = max(p.n_bins for p in pmfs)
        bin_ms = pmfs[0].bin_ms
        acc = np.zeros(n)
        for pmf, weight in zip(pmfs, weights):
            pmfs[0]._check_compatible(pmf)
            acc[:pmf.n_bins] += (weight / total) * pmf.probs
        return Pmf(acc, bin_ms)

    @staticmethod
    def max_of(pmfs: Sequence["Pmf"]) -> "Pmf":
        """Distribution of the max of independent delays (eq. 4)."""
        if not pmfs:
            raise ValueError("need at least one pmf")
        n = max(p.n_bins for p in pmfs)
        cdf = np.ones(n)
        for pmf in pmfs:
            pmfs[0]._check_compatible(pmf)
            c = np.ones(n)
            c[:pmf.n_bins] = pmf.cdf()
            cdf *= c
        return Pmf._from_cdf(cdf, pmfs[0].bin_ms)

    def iid_max(self, k: int) -> "Pmf":
        """Max of ``k`` independent copies of this variable."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return Pmf._from_cdf(self.cdf() ** k, self.bin_ms)

    @staticmethod
    def quorum_of(pmfs: Sequence["Pmf"], quorum: int) -> "Pmf":
        """Time until ``quorum`` of the independent delays elapsed (eq. 2).

        This is the ``quorum``-th order statistic of independent,
        non-identically distributed delays, computed bin-wise through
        the Poisson-binomial distribution of "how many responses have
        arrived by t".
        """
        n_replicas = len(pmfs)
        if not 1 <= quorum <= n_replicas:
            raise ValueError(
                f"quorum {quorum} impossible with {n_replicas} replicas")
        n = max(p.n_bins for p in pmfs)
        arrived = np.empty((n_replicas, n))
        for i, pmf in enumerate(pmfs):
            pmfs[0]._check_compatible(pmf)
            c = np.ones(n)
            c[:pmf.n_bins] = pmf.cdf()
            arrived[i] = c
        # dp[k] = P(exactly k responses arrived by t), vectorized over t.
        dp = np.zeros((n_replicas + 1, n))
        dp[0] = 1.0
        for i in range(n_replicas):
            p = arrived[i]
            for k in range(i + 1, 0, -1):
                dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p
            dp[0] = dp[0] * (1.0 - p)
        cdf = dp[quorum:].sum(axis=0)
        return Pmf._from_cdf(cdf, pmfs[0].bin_ms)

    @staticmethod
    def _from_cdf(cdf: np.ndarray, bin_ms: float) -> "Pmf":
        cdf = np.clip(cdf, 0.0, 1.0)
        # Force saturation so the result is a proper distribution even
        # when some mass lies beyond the modelled range.
        cdf[-1] = 1.0
        probs = np.diff(cdf, prepend=0.0)
        return Pmf(np.clip(probs, 0.0, None), bin_ms)

    # -- the no-conflict integral (eq. 8b) -------------------------------------

    def no_arrival_probability(self, rate_per_ms: float,
                               extra_ms: float = 0.0) -> float:
        """``sum_t P(T = t) * exp(-lambda * (t + extra))``.

        With ``T`` the conflict-window length and ``lambda`` the
        Poisson update-arrival rate of the record, this is the
        probability that no interfering update arrives during the
        window — the per-record commit likelihood of eq. 8b, with
        ``extra`` playing the role of the processing time *w*.
        """
        if rate_per_ms < 0:
            raise ValueError("negative arrival rate")
        if rate_per_ms == 0:
            return 1.0
        times = self.bin_centers() + max(extra_ms, 0.0)
        value = float(np.dot(self.probs, np.exp(-rate_per_ms * times)))
        return min(max(value, 0.0), 1.0)  # clamp float-rounding drift


class WindowedHistogram:
    """An aging sample collector (the window approach of §5.2.1).

    Samples land in the current *generation*; :meth:`rotate` retires
    the oldest generation, so the histogram tracks the last
    ``generations`` rotation periods of network behaviour.
    """

    def __init__(self, bin_ms: float = 2.0, n_bins: int = 1024,
                 generations: int = 6):
        if generations < 1:
            raise ValueError("need at least one generation")
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self.generations = int(generations)
        self._counts: List[np.ndarray] = [np.zeros(self.n_bins)]

    def add(self, sample_ms: float) -> None:
        index = min(int(sample_ms / self.bin_ms), self.n_bins - 1)
        self._counts[-1][index] += 1.0

    def merge_counts(self, counts: np.ndarray) -> None:
        """Fold another histogram's counts into the current generation."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_bins,):
            raise ValueError("shape mismatch")
        self._counts[-1] += counts

    def rotate(self) -> None:
        """Start a new generation, retiring the oldest if full."""
        self._counts.append(np.zeros(self.n_bins))
        while len(self._counts) > self.generations:
            self._counts.pop(0)

    def total_count(self) -> float:
        return float(sum(c.sum() for c in self._counts))

    def counts(self) -> np.ndarray:
        return np.sum(self._counts, axis=0)

    def pmf(self, fallback: Optional[Pmf] = None) -> Pmf:
        """Current distribution, or ``fallback`` if no samples yet."""
        counts = self.counts()
        if counts.sum() <= 0:
            if fallback is not None:
                return fallback
            raise ValueError("empty histogram and no fallback")
        return Pmf.from_counts(counts, self.bin_ms)
