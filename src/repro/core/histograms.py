"""Discrete probability mass functions over message-delay bins.

All the stochastic-variable manipulations of §5.1.2 — convolution of
delays (eq. 1/3/5), quorum order statistics (eq. 2), maxima over
leaders (eq. 4), mixtures over unknown locations and sizes (eq. 6),
and the Poisson no-conflict integral (eq. 7/8b) — are carried out on
fixed-width histograms, mirroring the paper's own simplification
("in practice, the integration itself is simplified as we use
histograms for the statistics", §5.2).

A :class:`Pmf` is immutable; a :class:`WindowedHistogram` is the
mutable, aging sample collector the statistics service maintains.

Fast paths
----------
The likelihood engine evaluates thousands of these operations per
model rebuild, so the algebra carries two speed layers on top of the
exact defaults:

* **derived-value caching** — a ``Pmf`` lazily caches its CDF, its
  support (index past the last nonzero bin), and its real-FFT spectra
  (keyed by transform size).  Caches hold values that are *identical*
  to what the uncached code computed, so they are always on.
* **FFT convolution** — :meth:`Pmf.convolve` switches from the exact
  ``np.convolve`` path to an FFT product when the full convolution
  size reaches :data:`FFT_MIN_SIZE` (or when asked explicitly with
  ``method="fft"``).  The default cutoff is above the default bin
  count, so results that feed admission decisions take the exact path
  unless a caller opts in; the property suite pins the FFT path to the
  exact one within 1e-12 (measured error is ~1e-17 for probability
  vectors).
* **trusted construction** — the CDF-domain operations
  (:meth:`quorum_of`, :meth:`iid_max`, :meth:`max_of`,
  :meth:`mixture`) accept ``renormalize=False`` to skip the final
  re-normalizing division when the caller knows the mass already sums
  to one (their outputs are differences of a clipped CDF ending at
  exactly 1.0, or convex combinations of normalized PMFs).
* **tail truncation** — :meth:`Pmf.truncate` folds a negligible tail
  (``epsilon`` of mass) into the last kept bin.  The default epsilon
  everywhere is 0.0, which is a no-op: exact by default.

The naive implementations are preserved verbatim as module-level
``_reference_*`` functions; the property tests compare every fast path
against them so the fast paths cannot silently drift.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Full-size threshold at which ``convolve(method="auto")`` switches
#: to FFT convolution.  ``4096`` keeps every convolution at the
#: default resolution (1024 bins -> full size 2047) on the exact
#: ``np.convolve`` path; callers with larger histograms, or fast-path
#: callers passing ``method="fft"``, get the O(n log n) product.
FFT_MIN_SIZE = 4096

#: Trailing probability mass the FFT path may ignore when sizing its
#: transforms.  CDF-domain operations force saturation by pinning the
#: last CDF entry to 1.0, which plants ~1e-16 of float-rounding
#: artifact in the last bin; sizing transforms to the *exact* support
#: would then always pay full-width FFTs.  Dropping a trailing tail of
#: at most this mass perturbs a convolution by the same amount —
#: orders of magnitude inside the 1e-12 property-test pin — while
#: keeping any genuine saturated mass (which dwarfs the tolerance).
SPECTRUM_TAIL_TOLERANCE = 1e-14


def _next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (FFT sizes; 2^k is fastest)."""
    return 1 << max(0, (n - 1).bit_length())


class Pmf:
    """A distribution over delays ``[0, n_bins * bin_ms)``.

    Mass that would fall beyond the last bin is accumulated *in* the
    last bin so that total mass stays 1 (a deliberate saturation — the
    likelihood integral then under-estimates commit probability for
    extreme tails, which is the conservative direction).
    """

    __slots__ = ("bin_ms", "probs", "_cdf", "_support", "_esupport",
                 "_spectra")

    def __init__(self, probs: np.ndarray, bin_ms: float):
        if bin_ms <= 0:
            raise ValueError("bin_ms must be positive")
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probs must be a non-empty 1-D array")
        if (probs < -1e-12).any():
            raise ValueError("negative probability mass")
        total = probs.sum()
        if total <= 0:
            raise ValueError("zero total mass")
        self.bin_ms = float(bin_ms)
        self.probs = np.clip(probs, 0.0, None) / total
        self._cdf: Optional[np.ndarray] = None
        self._support: Optional[int] = None
        self._esupport: Optional[int] = None
        self._spectra: Optional[Dict[int, np.ndarray]] = None

    @classmethod
    def _trusted(cls, probs: np.ndarray, bin_ms: float,
                 cdf: Optional[np.ndarray] = None) -> "Pmf":
        """Wrap ``probs`` without validation or re-normalization.

        Internal fast-path constructor: the caller guarantees a
        non-empty 1-D float array of non-negative mass summing to one
        (within float rounding).  ``cdf`` may hand over an already
        computed CDF to seed the cache.
        """
        pmf = object.__new__(cls)
        pmf.bin_ms = bin_ms
        pmf.probs = probs
        pmf._cdf = cdf
        pmf._support = None
        pmf._esupport = None
        pmf._spectra = None
        return pmf

    # -- constructors -------------------------------------------------------

    @classmethod
    def point(cls, delay_ms: float, bin_ms: float, n_bins: int) -> "Pmf":
        """All mass on one delay (degenerate distribution)."""
        probs = np.zeros(n_bins)
        index = min(int(delay_ms / bin_ms), n_bins - 1)
        probs[index] = 1.0
        return cls(probs, bin_ms)

    @classmethod
    def from_samples(cls, samples: Sequence[float], bin_ms: float,
                     n_bins: int) -> "Pmf":
        """Bin a list of delay samples (values beyond the range saturate)."""
        if len(samples) == 0:
            raise ValueError("no samples")
        indices = np.minimum(
            (np.asarray(samples, dtype=float) / bin_ms).astype(int),
            n_bins - 1)
        probs = np.bincount(indices, minlength=n_bins).astype(float)
        return cls(probs, bin_ms)

    @classmethod
    def from_counts(cls, counts: np.ndarray, bin_ms: float) -> "Pmf":
        return cls(np.asarray(counts, dtype=float), bin_ms)

    # -- descriptive ----------------------------------------------------------

    @property
    def n_bins(self) -> int:
        return self.probs.size

    def bin_centers(self) -> np.ndarray:
        return (np.arange(self.n_bins) + 0.5) * self.bin_ms

    def mean(self) -> float:
        return float(np.dot(self.probs, self.bin_centers()))

    def cdf(self) -> np.ndarray:
        """Cumulative distribution; cached, returned read-only."""
        cached = self._cdf
        if cached is None:
            cached = np.cumsum(self.probs)
            cached.setflags(write=False)
            self._cdf = cached
        return cached

    @property
    def support(self) -> int:
        """Index one past the last nonzero bin (cached)."""
        cached = self._support
        if cached is None:
            nonzero = np.flatnonzero(self.probs)
            cached = int(nonzero[-1]) + 1 if nonzero.size else 1
            self._support = cached
        return cached

    @property
    def effective_support(self) -> int:
        """Support with a negligible trailing tail ignored (cached).

        Index one past the last bin that matters to the FFT path:
        trailing bins holding at most :data:`SPECTRUM_TAIL_TOLERANCE`
        total mass are not counted.  Genuine saturated mass is many
        orders of magnitude above the tolerance, so only float-rounding
        artifacts (e.g. the forced ``cdf[-1] = 1.0`` of the CDF-domain
        operations) are trimmed.
        """
        cached = self._esupport
        if cached is None:
            trailing = np.cumsum(self.probs[::-1])
            drop = int(np.searchsorted(trailing, SPECTRUM_TAIL_TOLERANCE,
                                       side="right"))
            cached = max(1, self.n_bins - drop)
            self._esupport = cached
        return cached

    def spectrum(self, size: int) -> np.ndarray:
        """Real-FFT of the effective-support prefix, padded to ``size``.

        Cached per transform size; a model rebuild convolving the same
        operand against many partners pays the forward transform once.
        """
        spectra = self._spectra
        if spectra is None:
            spectra = {}
            self._spectra = spectra
        spec = spectra.get(size)
        if spec is None:
            spec = np.fft.rfft(self.probs[:self.effective_support], size)
            spectra[size] = spec
        return spec

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q outside [0, 1]")
        index = int(np.searchsorted(self.cdf(), q))
        return min(index, self.n_bins - 1) * self.bin_ms

    # -- algebra of stochastic variables -------------------------------------

    def _check_compatible(self, other: "Pmf") -> None:
        if abs(other.bin_ms - self.bin_ms) > 1e-9:
            raise ValueError("mismatched bin widths")

    def convolve(self, other: "Pmf", method: str = "auto") -> "Pmf":
        """Distribution of the sum of two independent delays (eq. 1).

        ``method`` selects the algorithm: ``"direct"`` is the exact
        ``np.convolve`` path, ``"fft"`` the spectral product (identical
        saturation semantics, ~1e-17 rounding difference), ``"auto"``
        picks FFT once the full convolution size reaches
        :data:`FFT_MIN_SIZE`.
        """
        self._check_compatible(other)
        if method == "auto":
            full_size = self.n_bins + other.n_bins - 1
            method = "fft" if full_size >= FFT_MIN_SIZE else "direct"
        if method == "direct":
            return _reference_convolve(self, other)
        if method != "fft":
            raise ValueError(f"unknown convolution method {method!r}")
        n = max(self.n_bins, other.n_bins)
        sa, sb = self.effective_support, other.effective_support
        raw_size = sa + sb - 1
        size = _next_pow2(raw_size)
        raw = np.fft.irfft(
            self.spectrum(size) * other.spectrum(size), size)[:raw_size]
        # FFT rounding can leave tiny negative values where the exact
        # result is zero; clip before saturating.
        np.maximum(raw, 0.0, out=raw)
        probs = np.zeros(n)
        if raw_size <= n:
            probs[:raw_size] = raw
        else:
            probs[:n] = raw[:n]
            probs[n - 1] += raw[n:].sum()  # saturate the tail
        total = probs.sum()
        if not 0.0 < total < np.inf:  # pragma: no cover - degenerate input
            raise ValueError("convolution lost all mass")
        probs /= total
        return Pmf._trusted(probs, self.bin_ms)

    def shift(self, delay_ms: float) -> "Pmf":
        """Add a constant delay."""
        if delay_ms < 0:
            raise ValueError("negative shift")
        # Half-up rounding (not banker's) so .5 boundaries shift right.
        k = math.floor(delay_ms / self.bin_ms + 0.5)
        if k == 0:
            return self
        probs = np.zeros_like(self.probs)
        if k < self.n_bins:
            probs[k:] = self.probs[:-k]
            probs[-1] += self.probs[-k:].sum()  # saturate displaced mass
        else:
            probs[-1] = 1.0
        return Pmf(probs, self.bin_ms)

    def scale(self, factor: float) -> "Pmf":
        """Distribution of ``factor * X`` (used for RTT -> one-way)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        centers = np.arange(self.n_bins) * factor
        indices = np.minimum(centers.astype(int), self.n_bins - 1)
        probs = np.zeros_like(self.probs)
        np.add.at(probs, indices, self.probs)
        return Pmf(probs, self.bin_ms)

    def truncate(self, epsilon: float) -> "Pmf":
        """Fold a negligible tail into the last kept bin.

        Returns a PMF whose trailing bins holding at most ``epsilon``
        total mass are removed, with that mass saturated into the new
        last bin — the same conservative direction as the range
        saturation.  ``epsilon <= 0`` is exact and returns ``self``
        unchanged (the default throughout the likelihood engine).
        """
        if epsilon <= 0.0:
            return self
        # tail[i] = mass at bins i..end; keep the shortest prefix whose
        # dropped tail holds at most epsilon.
        tail = np.cumsum(self.probs[::-1])[::-1]
        keep = int(np.searchsorted(-tail, -epsilon, side="left"))
        keep = max(1, min(keep, self.n_bins))
        if keep >= self.n_bins:
            return self
        probs = self.probs[:keep].copy()
        probs[-1] += self.probs[keep:].sum()
        return Pmf(probs, self.bin_ms)

    @staticmethod
    def mixture(pmfs: Sequence["Pmf"], weights: Sequence[float],
                renormalize: bool = True) -> "Pmf":
        """Marginalize over a discrete latent choice (eq. 6).

        ``renormalize=False`` skips the final normalizing division: a
        convex combination of normalized PMFs already sums to one up to
        float rounding (the fast-path callers' property tests pin the
        difference below 1e-12).
        """
        if renormalize:
            return _reference_mixture(pmfs, weights)
        if len(pmfs) != len(weights) or not pmfs:
            raise ValueError("pmfs and weights must align and be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights sum to zero")
        n = max(p.n_bins for p in pmfs)
        acc = np.zeros(n)
        for pmf, weight in zip(pmfs, weights):
            pmfs[0]._check_compatible(pmf)
            # Bins past the support are exactly zero, so accumulating
            # only the support prefix adds the identical values.
            s = pmf.support
            acc[:s] += (weight / total) * pmf.probs[:s]
        return Pmf._trusted(acc, pmfs[0].bin_ms)

    @staticmethod
    def convolution_mixture(pairs: Sequence[Sequence["Pmf"]],
                            weights: Sequence[float]) -> "Pmf":
        """``sum_i w_i * (a_i ⊛ b_i)`` in one spectral pass.

        Convolution and mixture commute, so the weighted sum of
        pairwise convolutions is a single inverse transform of the
        weighted sum of spectral products — one ``irfft`` instead of
        one per pair.  A fast-path-only operation (the reference is
        the per-pair :meth:`convolve` + :meth:`mixture` chain, pinned
        within 1e-12 by the property suite): range saturation folds
        after the mixture instead of per term — identical, since
        folding is linear — and the normalizing division happens once
        on the mixed result.
        """
        if len(pairs) != len(weights) or not pairs:
            raise ValueError("pairs and weights must align and be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights sum to zero")
        first = pairs[0][0]
        n = 0
        raw_size = 1
        for a, b in pairs:
            first._check_compatible(a)
            first._check_compatible(b)
            n = max(n, a.n_bins, b.n_bins)
            raw_size = max(raw_size,
                           a.effective_support + b.effective_support - 1)
        size = _next_pow2(raw_size)
        spec = None
        for (a, b), weight in zip(pairs, weights):
            term = (weight / total) * a.spectrum(size) * b.spectrum(size)
            spec = term if spec is None else spec + term
        raw = np.fft.irfft(spec, size)[:raw_size]
        np.maximum(raw, 0.0, out=raw)
        probs = np.zeros(n)
        if raw_size <= n:
            probs[:raw_size] = raw
        else:
            probs[:n] = raw[:n]
            probs[n - 1] += raw[n:].sum()  # saturate the tail
        total_mass = probs.sum()
        if not 0.0 < total_mass < np.inf:  # pragma: no cover - degenerate
            raise ValueError("convolution mixture lost all mass")
        probs /= total_mass
        return Pmf._trusted(probs, first.bin_ms)

    @staticmethod
    def max_of(pmfs: Sequence["Pmf"],
               renormalize: bool = True) -> "Pmf":
        """Distribution of the max of independent delays (eq. 4)."""
        if not pmfs:
            raise ValueError("need at least one pmf")
        n = max(p.n_bins for p in pmfs)
        cdf = np.ones(n)
        for pmf in pmfs:
            pmfs[0]._check_compatible(pmf)
            c = np.ones(n)
            c[:pmf.n_bins] = pmf.cdf()
            cdf *= c
        return Pmf._from_cdf(cdf, pmfs[0].bin_ms, renormalize=renormalize)

    def iid_max(self, k: int, renormalize: bool = True) -> "Pmf":
        """Max of ``k`` independent copies of this variable.

        The CDF is exactly constant past the support, so the k-th
        power is evaluated once there and broadcast — identical values,
        a fraction of the elementwise work.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        cdf = self.cdf()
        s = self.support
        powered = np.empty_like(cdf)
        np.power(cdf[:s], k, out=powered[:s])
        if s < powered.size:
            powered[s:] = np.power(cdf[s - 1], k)
        return Pmf._from_cdf(powered, self.bin_ms,
                             renormalize=renormalize)

    @staticmethod
    def quorum_of(pmfs: Sequence["Pmf"], quorum: int,
                  renormalize: bool = True) -> "Pmf":
        """Time until ``quorum`` of the independent delays elapsed (eq. 2).

        This is the ``quorum``-th order statistic of independent,
        non-identically distributed delays, computed bin-wise through
        the Poisson-binomial distribution of "how many responses have
        arrived by t".
        """
        n_replicas = len(pmfs)
        if not 1 <= quorum <= n_replicas:
            raise ValueError(
                f"quorum {quorum} impossible with {n_replicas} replicas")
        n = max(p.n_bins for p in pmfs)
        # Every input CDF is exactly constant past its support, so the
        # Poisson-binomial sweep is too: run it over the widest support
        # and broadcast the final column across the constant tail —
        # identical values to the full-width sweep.
        width = min(n, max(p.support for p in pmfs))
        arrived = np.empty((n_replicas, width))
        for i, pmf in enumerate(pmfs):
            pmfs[0]._check_compatible(pmf)
            row = arrived[i]
            row[:] = 1.0
            stop = min(pmf.n_bins, width)
            row[:stop] = pmf.cdf()[:stop]
        # dp[k] = P(exactly k responses arrived by t), vectorized over t.
        dp = np.zeros((n_replicas + 1, width))
        dp[0] = 1.0
        for i in range(n_replicas):
            p = arrived[i]
            for k in range(i + 1, 0, -1):
                dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p
            dp[0] = dp[0] * (1.0 - p)
        cdf = np.empty(n)
        cdf[:width] = dp[quorum:].sum(axis=0)
        if width < n:
            cdf[width:] = cdf[width - 1]
        return Pmf._from_cdf(cdf, pmfs[0].bin_ms, renormalize=renormalize)

    @staticmethod
    def _from_cdf(cdf: np.ndarray, bin_ms: float,
                  renormalize: bool = True) -> "Pmf":
        if renormalize:
            cdf = np.clip(cdf, 0.0, 1.0)
            # Force saturation so the result is a proper distribution
            # even when some mass lies beyond the modelled range.
            cdf[-1] = 1.0
            probs = np.diff(cdf, prepend=0.0)
            np.clip(probs, 0.0, None, out=probs)
            return Pmf(probs, bin_ms)
        # Fast path: every caller hands over a freshly built scratch
        # array, so the clip and the difference run in place (same
        # values as the reference; np.diff with prepend=0.0 is exactly
        # the first-element copy plus pairwise subtraction).
        np.clip(cdf, 0.0, 1.0, out=cdf)
        cdf[-1] = 1.0
        probs = np.empty_like(cdf)
        probs[0] = cdf[0]
        np.subtract(cdf[1:], cdf[:-1], out=probs[1:])
        np.maximum(probs, 0.0, out=probs)
        # The differences of a clipped CDF ending at exactly 1.0 sum
        # to 1.0 up to float rounding; hand the CDF to the cache.
        cdf.setflags(write=False)
        return Pmf._trusted(probs, bin_ms, cdf=cdf)

    # -- the no-conflict integral (eq. 8b) -------------------------------------

    def no_arrival_probability(self, rate_per_ms: float,
                               extra_ms: float = 0.0) -> float:
        """``sum_t P(T = t) * exp(-lambda * (t + extra))``.

        With ``T`` the conflict-window length and ``lambda`` the
        Poisson update-arrival rate of the record, this is the
        probability that no interfering update arrives during the
        window — the per-record commit likelihood of eq. 8b, with
        ``extra`` playing the role of the processing time *w*.
        """
        if rate_per_ms < 0:
            raise ValueError("negative arrival rate")
        if rate_per_ms == 0:
            return 1.0
        times = self.bin_centers() + max(extra_ms, 0.0)
        value = float(np.dot(self.probs, np.exp(-rate_per_ms * times)))
        return min(max(value, 0.0), 1.0)  # clamp float-rounding drift


# -- reference implementations -------------------------------------------------
#
# These are the original, exact algorithms, kept verbatim so the
# property tests can compare every accelerated path against them.
# ``Pmf.convolve(method="direct")`` and ``mixture(renormalize=True)``
# delegate here — the exact path IS the reference, by construction.


def _reference_convolve(a: Pmf, b: Pmf) -> Pmf:
    """Exact convolution with range saturation (the default path)."""
    a._check_compatible(b)
    n = max(a.n_bins, b.n_bins)
    full = np.convolve(a.probs, b.probs)
    probs = full[:n].copy()
    probs[-1] += full[n:].sum()  # saturate the tail
    return Pmf(probs, a.bin_ms)


def _reference_mixture(pmfs: Sequence[Pmf],
                       weights: Sequence[float]) -> Pmf:
    """Exact mixture with a final re-normalization (the default path)."""
    if len(pmfs) != len(weights) or not pmfs:
        raise ValueError("pmfs and weights must align and be non-empty")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights sum to zero")
    n = max(p.n_bins for p in pmfs)
    bin_ms = pmfs[0].bin_ms
    acc = np.zeros(n)
    for pmf, weight in zip(pmfs, weights):
        pmfs[0]._check_compatible(pmf)
        acc[:pmf.n_bins] += (weight / total) * pmf.probs
    return Pmf(acc, bin_ms)


def _reference_from_cdf(cdf: np.ndarray, bin_ms: float) -> Pmf:
    """The original CDF-to-PMF conversion, re-normalizing division and
    all."""
    cdf = np.clip(cdf, 0.0, 1.0)
    cdf[-1] = 1.0
    probs = np.diff(cdf, prepend=0.0)
    return Pmf(np.clip(probs, 0.0, None), bin_ms)


def _reference_max_of(pmfs: Sequence[Pmf]) -> Pmf:
    """Exact max-of: CDF product followed by re-normalization."""
    if not pmfs:
        raise ValueError("need at least one pmf")
    n = max(p.n_bins for p in pmfs)
    cdf = np.ones(n)
    for pmf in pmfs:
        pmfs[0]._check_compatible(pmf)
        c = np.ones(n)
        c[:pmf.n_bins] = np.cumsum(pmf.probs)
        cdf *= c
    return _reference_from_cdf(cdf, pmfs[0].bin_ms)


def _reference_iid_max(pmf: Pmf, k: int) -> Pmf:
    """Exact k-fold iid max."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return _reference_from_cdf(np.cumsum(pmf.probs) ** k, pmf.bin_ms)


def _reference_quorum_of(pmfs: Sequence[Pmf], quorum: int) -> Pmf:
    """Exact quorum order statistic (Poisson-binomial sweep)."""
    n_replicas = len(pmfs)
    if not 1 <= quorum <= n_replicas:
        raise ValueError(
            f"quorum {quorum} impossible with {n_replicas} replicas")
    n = max(p.n_bins for p in pmfs)
    arrived = np.empty((n_replicas, n))
    for i, pmf in enumerate(pmfs):
        pmfs[0]._check_compatible(pmf)
        c = np.ones(n)
        c[:pmf.n_bins] = np.cumsum(pmf.probs)
        arrived[i] = c
    dp = np.zeros((n_replicas + 1, n))
    dp[0] = 1.0
    for i in range(n_replicas):
        p = arrived[i]
        for k in range(i + 1, 0, -1):
            dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p
        dp[0] = dp[0] * (1.0 - p)
    cdf = dp[quorum:].sum(axis=0)
    return _reference_from_cdf(cdf, pmfs[0].bin_ms)


class WindowedHistogram:
    """An aging sample collector (the window approach of §5.2.1).

    Samples land in the current *generation*; :meth:`rotate` retires
    the oldest generation, so the histogram tracks the last
    ``generations`` rotation periods of network behaviour.

    The histogram carries a :attr:`version` counter that advances
    whenever its *aggregate counts* change: on every :meth:`add` and
    :meth:`merge_counts`, and on a :meth:`rotate` that retires a
    generation holding samples (a rotation that only opens a fresh
    empty generation leaves the aggregate — and the version —
    untouched).  :meth:`pmf` caches its result against the version, so
    steady statistics cost one binning however often the model asks;
    the statistics service uses the same counter to tell which DC
    pairs actually moved between model rebuilds.
    """

    def __init__(self, bin_ms: float = 2.0, n_bins: int = 1024,
                 generations: int = 6):
        if generations < 1:
            raise ValueError("need at least one generation")
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self.generations = int(generations)
        self._counts: List[np.ndarray] = [np.zeros(self.n_bins)]
        self._version = 0
        self._pmf_version = -1
        self._pmf_cache: Optional[Pmf] = None

    @property
    def version(self) -> int:
        """Monotone counter of aggregate-count changes."""
        return self._version

    def add(self, sample_ms: float) -> None:
        index = min(int(sample_ms / self.bin_ms), self.n_bins - 1)
        self._counts[-1][index] += 1.0
        self._version += 1

    def merge_counts(self, counts: np.ndarray) -> None:
        """Fold another histogram's counts into the current generation."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_bins,):
            raise ValueError("shape mismatch")
        self._counts[-1] += counts
        self._version += 1

    def rotate(self) -> None:
        """Start a new generation, retiring the oldest if full."""
        self._counts.append(np.zeros(self.n_bins))
        while len(self._counts) > self.generations:
            retired = self._counts.pop(0)
            if retired.sum() > 0:
                self._version += 1

    def total_count(self) -> float:
        return float(sum(c.sum() for c in self._counts))

    def counts(self) -> np.ndarray:
        return np.sum(self._counts, axis=0)

    def pmf(self, fallback: Optional[Pmf] = None) -> Pmf:
        """Current distribution, or ``fallback`` if no samples yet.

        The binned result is cached until the counts change (tracked
        by :attr:`version`); fallbacks are returned as-is, uncached.
        """
        if (self._pmf_cache is not None
                and self._pmf_version == self._version):
            return self._pmf_cache
        counts = self.counts()
        if counts.sum() <= 0:
            if fallback is not None:
                return fallback
            raise ValueError("empty histogram and no fallback")
        pmf = Pmf.from_counts(counts, self.bin_ms)
        self._pmf_cache = pmf
        self._pmf_version = self._version
        return pmf
