"""Conflict/likelihood models for other commit protocols (§5.1.3).

The paper notes that the likelihood machinery is not MDCC-specific:

* a PBS-style model predicts the chance of *losing an update* in an
  eventually consistent quorum store (Dynamo, Cassandra);
* restricting conflicts to whole partitions (entity groups) models
  Megastore, which runs one transaction at a time per partition;
* adding extra lock-hold delays models classical two-phase commit;
* MDCC *fast ballots* are the same chain at the ⌈3N/4⌉ quorum plus a
  collision-recovery latency branch (see
  :class:`~repro.core.likelihood.CommitLikelihoodModel` with
  ``mode="fast"``); :func:`protocol_comparison` lines all of these up
  on one topology.

All of them reuse the discrete-PMF toolbox: build the distribution of
the protocol's *vulnerability window*, then integrate the Poisson
no-arrival probability against it (the eq. 8b pattern).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.histograms import Pmf
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix


class QuorumStoreModel:
    """Lost-update likelihood for an eventually consistent quorum store.

    A read-modify-write against a Dynamo-style store reads from ``R``
    of ``N`` replicas, computes for ``w`` ms, and writes to ``W`` of
    ``N``.  Another writer that lands inside that window can silently
    overwrite the update (last-writer-wins).  The model returns the
    probability that **no** concurrent write arrives in the window —
    the "likelihood of an update succeeding without lost updates" the
    paper describes for non-transactional stores.
    """

    def __init__(self, latency: LatencyMatrix, n_replicas: Optional[int] = None,
                 read_quorum: int = 1, write_quorum: int = 1):
        self.latency = latency
        self.n = n_replicas if n_replicas is not None else latency.n
        if not 1 <= self.n <= latency.n:
            raise ValueError(f"replica count {self.n} outside the topology")
        if not 1 <= read_quorum <= self.n:
            raise ValueError(f"read quorum {read_quorum} impossible")
        if not 1 <= write_quorum <= self.n:
            raise ValueError(f"write quorum {write_quorum} impossible")
        self.read_quorum = read_quorum
        self.write_quorum = write_quorum
        self._windows: Dict[int, Pmf] = {}

    def _window(self, client_dc: int) -> Pmf:
        window = self._windows.get(client_dc)
        if window is None:
            rtts = [self.latency.rtt(client_dc, replica_dc)
                    for replica_dc in range(self.n)]
            read_wait = Pmf.quorum_of(rtts, self.read_quorum)
            write_wait = Pmf.quorum_of(rtts, self.write_quorum)
            window = read_wait.convolve(write_wait)
            self._windows[client_dc] = window
        return window

    def update_success_likelihood(self, client_dc: int,
                                  write_rate_per_ms: float,
                                  w_ms: float = 0.0) -> float:
        """P(no concurrent writer inside the read-modify-write window)."""
        window = self._window(client_dc)
        return window.no_arrival_probability(write_rate_per_ms,
                                             extra_ms=max(w_ms, 0.0))

    def staleness_probability(self, client_dc: int,
                              write_rate_per_ms: float) -> float:
        """P(a read misses the latest write) for ``R`` below ``N``.

        With ``R + W > N`` reads are always fresh; otherwise a read is
        stale if the latest write is newer than the read quorum's
        replication lag — approximated by a write arriving within one
        write-quorum window before the read.
        """
        if self.read_quorum + self.write_quorum > self.n:
            return 0.0
        rtts = [self.latency.rtt(client_dc, replica_dc)
                for replica_dc in range(self.n)]
        lag = Pmf.quorum_of(rtts, self.n)  # full propagation time
        return 1.0 - lag.no_arrival_probability(write_rate_per_ms)


class MegastoreModel:
    """Commit likelihood with partition-granularity conflicts.

    Megastore serializes transactions per entity group: any concurrent
    update *anywhere in the partition* conflicts.  The window math is
    identical to MDCC's (one Paxos round per commit), so this wraps a
    :class:`CommitLikelihoodModel` and evaluates it against partition
    arrival rates instead of record rates.
    """

    def __init__(self, base: CommitLikelihoodModel):
        if not base.ready:
            raise ValueError("precompute the base model first")
        self.base = base

    def partition_likelihood(self, client_dc: int, leader_dc: int,
                             partition_rate_per_ms: float,
                             w_ms: float = 0.0) -> float:
        """P(commit) for one entity-group transaction."""
        return self.base.record_likelihood(client_dc, leader_dc,
                                           partition_rate_per_ms, w_ms)

    def transaction_likelihood(self, client_dc: int,
                               partitions: Sequence[Tuple[int, float]],
                               w_ms: float = 0.0) -> float:
        """Product over the entity groups a transaction touches."""
        likelihood = 1.0
        for leader_dc, rate in partitions:
            likelihood *= self.partition_likelihood(client_dc, leader_dc,
                                                    rate, w_ms)
        return likelihood


class TwoPhaseCommitModel:
    """Conflict-window likelihood for classical two-phase commit.

    2PC holds locks from the prepare message until the commit/abort
    decision reaches each participant: window = max over participants
    of one round trip (prepare + vote) + the decision's one-way delay
    + any extra coordinator wait (``extra_hold_ms``, e.g. a group-
    commit flush or participant fsync).  The paper: "the model could
    be adapted slightly to model more classical two-phase commit
    implementations by introducing extra wait delays".
    """

    def __init__(self, latency: LatencyMatrix, extra_hold_ms: float = 0.0):
        if extra_hold_ms < 0:
            raise ValueError("negative extra hold")
        self.latency = latency
        self.extra_hold_ms = float(extra_hold_ms)
        self._windows: Dict[Tuple[int, Tuple[int, ...]], Pmf] = {}

    def _window(self, coordinator_dc: int,
                participant_dcs: Tuple[int, ...]) -> Pmf:
        key = (coordinator_dc, participant_dcs)
        window = self._windows.get(key)
        if window is None:
            prepare = Pmf.max_of([
                self.latency.rtt(coordinator_dc, participant)
                for participant in participant_dcs
            ])
            decision = Pmf.max_of([
                self.latency.one_way(coordinator_dc, participant)
                for participant in participant_dcs
            ])
            window = prepare.convolve(decision)
            if self.extra_hold_ms > 0:
                window = window.shift(self.extra_hold_ms)
            self._windows[key] = window
        return window

    def record_likelihood(self, coordinator_dc: int,
                          participant_dcs: Sequence[int],
                          arrival_rate_per_ms: float,
                          w_ms: float = 0.0) -> float:
        """P(no conflicting lock request during the 2PC hold window)."""
        window = self._window(coordinator_dc, tuple(participant_dcs))
        return window.no_arrival_probability(arrival_rate_per_ms,
                                             extra_ms=max(w_ms, 0.0))

    def transaction_likelihood(self, coordinator_dc: int,
                               records: Sequence[Tuple[Sequence[int], float]],
                               w_ms: float = 0.0) -> float:
        """Product over records of per-record no-conflict likelihoods."""
        likelihood = 1.0
        for participant_dcs, rate in records:
            likelihood *= self.record_likelihood(coordinator_dc,
                                                 participant_dcs, rate, w_ms)
        return likelihood


def protocol_comparison(latency: LatencyMatrix,
                        leader_distribution: Sequence[float],
                        client_dc: int, leader_dc: int,
                        arrival_rate_per_ms: float,
                        w_ms: float = 0.0,
                        collision_probability: float = 0.0,
                        size_distribution: Optional[Dict[int, float]] = None,
                        ) -> Dict[str, float]:
    """Commit/success likelihoods of every modelled protocol, side by
    side, for one record on one topology.

    Returns a dict with keys ``mdcc_classic``, ``mdcc_fast``,
    ``quorum_store``, ``megastore``, and ``two_phase_commit`` — the
    cross-protocol view §5.1.3 sketches, extended with the fast-ballot
    variant (⌈3N/4⌉ quorum, recovery branch weighted by
    ``collision_probability``).  Megastore shares MDCC's window and is
    evaluated at the same rate, so any difference in a real comparison
    comes from feeding it partition-level rates instead.
    """
    results: Dict[str, float] = {}
    models: List[Tuple[str, CommitLikelihoodModel]] = []
    for name, mode in (("mdcc_classic", "classic"), ("mdcc_fast", "fast")):
        model = CommitLikelihoodModel(
            latency, leader_distribution,
            size_distribution=size_distribution, memo_capacity=0,
            mode=mode, collision_probability=(collision_probability
                                              if mode == "fast" else 0.0))
        model.precompute()
        models.append((name, model))
        results[name] = model.record_likelihood(
            client_dc, leader_dc, arrival_rate_per_ms, w_ms)
    n = latency.n
    store = QuorumStoreModel(latency, read_quorum=1,
                             write_quorum=n // 2 + 1)
    results["quorum_store"] = store.update_success_likelihood(
        client_dc, arrival_rate_per_ms, w_ms)
    results["megastore"] = MegastoreModel(models[0][1]).partition_likelihood(
        client_dc, leader_dc, arrival_rate_per_ms, w_ms)
    results["two_phase_commit"] = TwoPhaseCommitModel(
        latency).record_likelihood(
            client_dc, list(range(n)), arrival_rate_per_ms, w_ms)
    return results
