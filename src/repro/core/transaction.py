"""The PLANET transaction programming model (§3 and §4.1).

A :class:`PlanetSession` wraps an MDCC client (transaction manager)
together with the commit-likelihood model, an admission-control
policy, and the remote-callback service.  :meth:`PlanetSession.transaction`
returns a :class:`Tx` builder mirroring Listing 2 of the paper::

    tx = (session.transaction(writes, timeout_ms=300)
          .on_failure(show_error)
          .on_accept(show_thanks)
          .on_complete(show_result, threshold=0.90)
          .finally_callback(update_page)
          .finally_callback_remote(send_email))
    planet_tx = tx.execute()

Within the timeout exactly one stage block runs — the latest defined
block the transaction's progress has reached (Figure 2); the finally
callbacks run whenever the outcome becomes known.  The generalized
model replaces the staged blocks with ``on_progress``, whose handler
may return :data:`FINISH_TX` to regain the thread of control
(Listing 5).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.admission import AdmissionPolicy, NoAdmission
from repro.core.callbacks import RemoteCallbackService
from repro.core.likelihood import CommitLikelihoodModel
from repro.core.states import FINISH_TX, TxInfo, TxState
from repro.mdcc.coordinator import TransactionHandle, TransactionManager
from repro.sim import Environment, Event, WheelTimer
from repro.storage.option import Decision
from repro.storage.record import WriteOp

Callback = Callable[[TxInfo], None]


class PlanetSession:
    """One application client speaking the PLANET model.

    Parameters
    ----------
    model:
        A precomputed :class:`CommitLikelihoodModel`; without one,
        likelihoods default to 1.0 (no speculation, no admission
        rejections) — useful for PLANET's staged callbacks alone.
    admission:
        The admission-control policy (default: attempt everything).
    remote_service:
        Shared :class:`RemoteCallbackService` for at-least-once remote
        finally callbacks; created privately when omitted.
    statistics:
        Optional :class:`~repro.core.statistics.StatisticsService`; when
        given, transaction sizes are registered with it (§5.2.2).
    """

    def __init__(self, cluster, name: str, datacenter: int,
                 model: Optional[CommitLikelihoodModel] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 remote_service: Optional[RemoteCallbackService] = None,
                 statistics=None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.name = name
        self.datacenter = datacenter
        self.tm: TransactionManager = cluster.create_client(name, datacenter)
        self.model = model
        self.admission = admission or NoAdmission()
        self.remote_service = remote_service or RemoteCallbackService(
            self.env, cluster.streams)
        self.statistics = statistics
        self.rng = cluster.streams.get(f"planet-session-{name}")
        self.crashed = False
        #: All transactions ever executed through this session.
        self.transactions: List["PlanetTransaction"] = []

    def transaction(self, writes: Sequence[WriteOp], timeout_ms: float,
                    read_keys: Optional[Sequence[str]] = None,
                    think_time_ms: float = 0.0) -> "Tx":
        """Build a PLANET transaction (Listing 2's ``new Tx(300ms)``)."""
        return Tx(self, writes, timeout_ms, read_keys=read_keys,
                  think_time_ms=think_time_ms)

    def crash(self) -> None:
        """Simulate application-server failure.

        Local finally callbacks of in-flight transactions are lost
        (at-most-once); remote finally callbacks still fire through the
        cluster-side service (at-least-once).
        """
        self.crashed = True

    def read(self, keys: Sequence[str], as_of_ms=None):
        """Read-committed reads of ``keys`` from the local replicas.

        Returns a kernel event that fires with ``{key: ReadReply}`` —
        the read side of the workload the paper calls orthogonal to
        the programming model (reads never conflict and never wait on
        pending options).  ``as_of_ms`` requests a point-in-time read
        (see :meth:`TransactionManager.read_only`).
        """
        return self.tm.read_only(keys, as_of_ms=as_of_ms)

    def estimate_commit_time(self, writes: Sequence[WriteOp],
                             percentile: float = 0.5) -> float:
        """Predicted commit latency (ms) for a write set.

        Uses the likelihood model's per-leader quorum estimates — the
        "estimated duration" statistic of §5.2 — e.g. to choose a
        sensible timeout before executing.  Requires a precomputed
        model.
        """
        if self.model is None:
            raise RuntimeError("session has no likelihood model")
        leaders = [self.cluster.leader_dc(op.key) for op in writes]
        if not leaders:
            raise ValueError("a transaction needs at least one write")
        pmf = self.model.commit_time_pmf(self.datacenter, leaders)
        return pmf.quantile(percentile)

    def suggest_timeout(self, writes: Sequence[WriteOp],
                        confidence: float = 0.99,
                        margin: float = 1.25) -> float:
        """A timeout that the commit should beat with ``confidence``.

        The paper leaves timeout choice to user studies; this helper
        grounds it in the measured latency distributions instead:
        the ``confidence`` quantile of the predicted commit time, padded
        by ``margin`` for processing slack.
        """
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        return self.estimate_commit_time(writes,
                                         percentile=confidence) * margin


class Tx:
    """Builder for one PLANET transaction (the fluent API of §2.3)."""

    def __init__(self, session: PlanetSession, writes: Sequence[WriteOp],
                 timeout_ms: float,
                 read_keys: Optional[Sequence[str]] = None,
                 think_time_ms: float = 0.0):
        if timeout_ms <= 0:
            raise ValueError("timeout must be positive (inf is allowed)")
        self.session = session
        self.writes = list(writes)
        self.timeout_ms = float(timeout_ms)
        self.read_keys = list(read_keys) if read_keys is not None else None
        self.think_time_ms = float(think_time_ms)
        self._on_failure: Optional[Callback] = None
        self._on_accept: Optional[Callback] = None
        self._on_complete: Optional[Callback] = None
        self._complete_threshold: Optional[float] = None
        self._on_progress: Optional[Callable] = None
        self._finally: Optional[Callback] = None
        self._finally_remote: Optional[Callback] = None

    # -- stage blocks (simplified model, §3) ---------------------------------

    def on_failure(self, callback: Callback) -> "Tx":
        """Runs at the timeout when nothing is known (required)."""
        self._on_failure = callback
        return self

    def on_accept(self, callback: Callback) -> "Tx":
        """Runs when the transaction is accepted (will not be lost)."""
        self._on_accept = callback
        return self

    def on_complete(self, callback: Callback,
                    threshold: Optional[float] = None) -> "Tx":
        """Runs when the outcome is known before the timeout.

        With ``threshold`` P < 1.0 the block runs *speculatively* as
        soon as the commit likelihood reaches P (§3.2); the state is
        then ``SPEC_COMMITTED`` and a finally callback later reports
        the true outcome.
        """
        if threshold is not None and not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1]")
        self._on_complete = callback
        self._complete_threshold = threshold
        return self

    # -- generalized model (§4.1) ----------------------------------------------

    def on_progress(self, callback: Callable) -> "Tx":
        """Install a generalized progress handler (exclusive with the
        staged blocks).  The handler receives a :class:`TxInfo` on
        every state change and may return :data:`FINISH_TX`."""
        self._on_progress = callback
        return self

    # -- finally callbacks (§3.3) --------------------------------------------------

    def finally_callback(self, callback: Callback) -> "Tx":
        """Local at-most-once notification of the final outcome."""
        self._finally = callback
        return self

    def finally_callback_remote(self, callback: Callback) -> "Tx":
        """Web-service-style at-least-once notification."""
        self._finally_remote = callback
        return self

    # -- execution ------------------------------------------------------------------

    def execute(self) -> "PlanetTransaction":
        """Validate the block combination and launch the transaction."""
        if self._on_progress is not None:
            if (self._on_failure or self._on_accept or self._on_complete):
                raise ValueError(
                    "on_progress (generalized model) cannot be combined "
                    "with the simplified stage blocks")
        elif self._on_failure is None:
            raise ValueError("the on_failure stage block is required (§3.1)")
        transaction = PlanetTransaction(self)
        self.session.transactions.append(transaction)
        transaction._start()
        return transaction


class PlanetTransaction:
    """A running (then finished) PLANET transaction.

    Exposes both the programming-model events and the bookkeeping the
    experiment harness reads:

    * ``closed_event`` — fires when the application regains control
      (a stage block ran, or ``on_progress`` returned FINISH_TX);
    * ``final_event`` — fires when the true outcome is known and the
      finally callbacks have been dispatched;
    * outcome fields (``state``, ``spec_committed``, ``admitted``,
      timestamps) documented inline.
    """

    def __init__(self, tx: Tx):
        self.tx = tx
        self.session = tx.session
        self.env: Environment = tx.session.env
        self.start_ms: float = self.env.now
        self.closed_event: Event = self.env.event()
        self.final_event: Event = self.env.event()
        self.state: TxState = TxState.UNKNOWN
        self.handle: Optional[TransactionHandle] = None
        #: None until admission runs; then True/False.
        self.admitted: Optional[bool] = None
        self.initial_likelihood: Optional[float] = None
        self.current_likelihood: float = 1.0
        self.returned = False
        self.stage_fired: Optional[str] = None
        self.stage_fired_ms: Optional[float] = None
        self.timeout_expired = False
        self.spec_committed = False
        self.spec_fired_ms: Optional[float] = None
        self.decided_ms: Optional[float] = None
        self.committed: Optional[bool] = None
        self._factors: Dict[str, float] = {}
        self._finished = False
        #: Wheel timer guarding the client deadline; cancelled once the
        #: transaction has both finished and fired its user stage, so a
        #: fast commit never leaves a dead timeout on the kernel.
        self._deadline_timer: Optional[WheelTimer] = None

    # -- public accounting ------------------------------------------------------

    @property
    def txid(self) -> str:
        return self.handle.txid if self.handle is not None else "(unstarted)"

    @property
    def elapsed_ms(self) -> float:
        return self.env.now - self.start_ms

    @property
    def commit_response_ms(self) -> Optional[float]:
        """User-perceived commit latency: speculative report if one
        was made, otherwise the real decision time."""
        if self.spec_fired_ms is not None:
            return self.spec_fired_ms - self.start_ms
        if self.decided_ms is not None:
            return self.decided_ms - self.start_ms
        return None

    @property
    def spec_incorrect(self) -> bool:
        """A speculative commit later contradicted by an abort."""
        return self.spec_committed and self.committed is False

    def info(self, stage: str = "") -> TxInfo:
        rejected = ()
        if self.handle is not None and self.handle.result is not None:
            rejected = tuple(self.handle.result.rejected_keys)
        return TxInfo(txid=self.txid, state=self.state,
                      commit_likelihood=self.current_likelihood,
                      timed_out=self.timeout_expired,
                      elapsed_ms=self.elapsed_ms, stage=stage,
                      rejected_keys=rejected)

    # -- lifecycle ------------------------------------------------------------------

    def _start(self) -> None:
        tx = self.tx
        if self.session.statistics is not None:
            self.session.statistics.record_transaction_size(len(tx.writes))
        self.handle = self.session.tm.begin(
            tx.writes, read_keys=tx.read_keys,
            think_time_ms=tx.think_time_ms, gate_after_reads=True)
        self.handle.progress_hooks.append(self._on_tm_event)
        if math.isfinite(tx.timeout_ms):
            self._deadline_timer = self.env.arm_timer(
                self.env.now + tx.timeout_ms, self._on_deadline)

    def _maybe_cancel_deadline(self) -> None:
        """Drop the deadline timer once it can no longer matter."""
        timer = self._deadline_timer
        if timer is not None and self._finished and self.returned:
            timer.cancel()
            self._deadline_timer = None

    def _on_deadline(self) -> None:
        """Wheel callback: the client deadline passed."""
        self._deadline_timer = None
        if self._finished and self.returned:
            return
        self.timeout_expired = True
        if self.tx._on_progress is not None:
            self._notify_progress("timeout")
            return
        if self.returned:
            return
        # Figure 2: run the latest defined stage the progress reached.
        if self.state is TxState.ACCEPTED and self.tx._on_accept is not None:
            self._fire_stage("accept", self.tx._on_accept)
        else:
            self._fire_stage("failure", self.tx._on_failure)

    # -- TM event plumbing -----------------------------------------------------------

    def _on_tm_event(self, stage: str, handle: TransactionHandle) -> None:
        if stage == "reads_done":
            self._after_reads(handle)
        elif stage == "accepted":
            self._after_accepted()
        elif stage == "learned":
            self._after_learned(handle)
        elif stage == "decided":
            self._after_decided(handle)

    def _after_reads(self, handle: TransactionHandle) -> None:
        model = self.session.model
        client_dc = self.session.datacenter
        for key, reply in handle.reads.items():
            if model is None:
                self._factors[key] = 1.0
            else:
                self._factors[key] = model.record_likelihood(
                    client_dc, reply.leader_dc, reply.arrival_rate,
                    w_ms=self.tx.think_time_ms)
        likelihood = 1.0
        for factor in self._factors.values():
            likelihood *= factor
        self.initial_likelihood = likelihood
        self.current_likelihood = likelihood
        self.admitted = self.session.admission.decide(
            likelihood, self.session.rng)
        metrics = self.env.metrics
        if metrics is not None:
            metrics.inc("planet.admission",
                        label="admitted" if self.admitted else "rejected")
            # Likelihoods live in [0, 1]: probability buckets, not the
            # registry's default latency buckets.
            metrics.histogram(
                "planet.likelihood",
                bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
            ).observe(likelihood)
        if not self.admitted:
            handle.gate.succeed(False)
            self._finish_rejected()
            return
        handle.gate.succeed(True)
        self._notify_progress("likelihood")
        self._maybe_spec_commit()

    def _after_accepted(self) -> None:
        if not self.state.is_final and self.state is not TxState.SPEC_COMMITTED:
            self.state = TxState.ACCEPTED
        self._notify_progress("accepted")
        # §3.1: with onComplete undefined, onAccept runs immediately at
        # acceptance instead of waiting for the timeout.
        if (self.tx._on_progress is None and not self.returned
                and not self.timeout_expired
                and self.tx._on_complete is None
                and self.tx._on_accept is not None):
            self._fire_stage("accept", self.tx._on_accept)

    def _after_learned(self, handle: TransactionHandle) -> None:
        self._recompute_likelihood(handle)
        self._notify_progress("learned")
        self._maybe_spec_commit()

    def _recompute_likelihood(self, handle: TransactionHandle) -> None:
        if any(decision is Decision.REJECTED
               for decision in handle.learned.values()):
            self.current_likelihood = 0.0
            return
        likelihood = 1.0
        for key in handle.unlearned_keys:
            likelihood *= self._factors.get(key, 1.0)
        self.current_likelihood = likelihood

    def _maybe_spec_commit(self) -> None:
        threshold = self.tx._complete_threshold
        if (self.tx._on_progress is not None or threshold is None
                or threshold >= 1.0):
            return
        if (self.returned or self.timeout_expired or self._finished
                or self.current_likelihood < threshold):
            return
        if self.handle is not None and not self.handle.unlearned_keys:
            # Every option is already learned: the real decision is
            # being delivered this instant — that is a normal commit,
            # not a speculation.
            return
        self.spec_committed = True
        self.spec_fired_ms = self.env.now
        self.state = TxState.SPEC_COMMITTED
        if self.env.metrics is not None:
            self.env.metrics.inc("planet.spec_commit")
        self._fire_stage("complete", self.tx._on_complete)

    def _after_decided(self, handle: TransactionHandle) -> None:
        result = handle.result
        self.decided_ms = self.env.now
        self.committed = result.committed
        self.state = TxState.COMMITTED if result.committed else TxState.ABORTED
        self.current_likelihood = 1.0 if result.committed else 0.0
        self._notify_progress("decided")
        if (self.tx._on_progress is None and not self.returned
                and not self.timeout_expired
                and self.tx._on_complete is not None):
            self._fire_stage("complete", self.tx._on_complete)
        self._finish()

    # -- terminal paths ---------------------------------------------------------------

    def _finish_rejected(self) -> None:
        """Admission control turned the transaction away (§4.2)."""
        self.state = TxState.REJECTED
        self.current_likelihood = 0.0
        self.committed = False
        self.decided_ms = self.env.now
        self._notify_progress("rejected")
        if self.tx._on_progress is None and not self.returned:
            # The outcome is known immediately: deliver it through the
            # latest defined closure-capable block.
            if self.tx._on_complete is not None:
                self._fire_stage("complete", self.tx._on_complete)
            else:
                self._fire_stage("failure", self.tx._on_failure)
        self._finish()

    def _fire_stage(self, stage: str, callback: Optional[Callback]) -> None:
        self.returned = True
        self.stage_fired = stage
        self.stage_fired_ms = self.env.now
        if self.env.metrics is not None:
            self.env.metrics.inc("planet.stage_fired", label=stage)
        self._maybe_cancel_deadline()
        info = self.info(stage=stage)
        if not self.closed_event.triggered:
            self.closed_event.succeed(info)
        if callback is not None:
            callback(info)

    def _notify_progress(self, stage: str) -> None:
        handler = self.tx._on_progress
        if handler is None:
            return
        outcome = handler(self.info(stage=stage))
        if outcome is FINISH_TX and not self.returned:
            self.returned = True
            self.stage_fired = "progress"
            self.stage_fired_ms = self.env.now
            self._maybe_cancel_deadline()
            if not self.closed_event.triggered:
                self.closed_event.succeed(self.info(stage="progress"))

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._maybe_cancel_deadline()
        if self.env.metrics is not None and self.spec_incorrect:
            self.env.metrics.inc("planet.spec_incorrect")
        # Feedback for adaptive admission policies (probing baselines).
        admission = self.session.admission
        if (self.admitted and self.committed is not None
                and hasattr(admission, "observe_outcome")):
            admission.observe_outcome(self.committed)
        info = self.info(stage="finally")
        if self.tx._finally is not None and not self.session.crashed:
            self.tx._finally(info)
        if self.tx._finally_remote is not None:
            self.session.remote_service.submit(self.tx._finally_remote, info)
        if not self.final_event.triggered:
            self.final_event.succeed(info)
