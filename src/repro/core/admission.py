"""Likelihood-based admission control (§4.2).

When the predicted commit likelihood of a transaction is low, it is
often better not to attempt it at all: the doomed attempt would waste
resources and — worse — hold options that increase contention for
everyone else.  Two policies from the paper:

* ``Fixed(threshold, attempt_rate)`` — below the threshold, attempt
  with a fixed probability;
* ``Dynamic(threshold)`` — below the threshold, attempt with
  probability equal to the likelihood itself.

Thresholds and rates are expressed in **percent** to match the paper's
notation (``Fixed(40, 20)``, ``Dynamic(50)``).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class AdmissionPolicy(ABC):
    """Decides whether to attempt a transaction given its likelihood."""

    @abstractmethod
    def decide(self, likelihood: float, rng: random.Random) -> bool:
        """True to attempt the transaction, False to reject it."""

    @abstractmethod
    def describe(self) -> str:
        """Short label for reports (e.g. ``"Dyn(50)"``)."""


class NoAdmission(AdmissionPolicy):
    """Attempt everything (the paper's baseline configuration)."""

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        return True

    def describe(self) -> str:
        return "none"


class FixedPolicy(AdmissionPolicy):
    """``Fixed(threshold, attempt_rate)``: coin-flip below the threshold.

    ``Fixed(40, 20)`` attempts transactions whose likelihood is below
    40 % only 20 % of the time; an attempt rate of 100 disables the
    policy.
    """

    def __init__(self, threshold_pct: float, attempt_rate_pct: float):
        if not 0.0 <= threshold_pct <= 100.0:
            raise ValueError(f"threshold {threshold_pct} outside [0, 100]")
        if not 0.0 <= attempt_rate_pct <= 100.0:
            raise ValueError(
                f"attempt rate {attempt_rate_pct} outside [0, 100]")
        self.threshold = threshold_pct / 100.0
        self.attempt_rate = attempt_rate_pct / 100.0

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        if likelihood >= self.threshold:
            return True
        return rng.random() < self.attempt_rate

    def describe(self) -> str:
        return (f"F({self.threshold * 100:.0f},"
                f"{self.attempt_rate * 100:.0f})")


class AdaptiveProbingPolicy(AdmissionPolicy):
    """Likelihood-blind adaptive load control (Heiss & Wagner style).

    The comparison baseline from the paper's related work (§7, [18]):
    instead of predicting per-transaction commit likelihood, maintain a
    single global admit probability and *probe* — periodically compare
    the achieved goodput against the previous period and hill-climb the
    admit rate in whichever direction improves it.

    The harness must feed outcomes back through
    :meth:`observe_outcome`; :class:`~repro.core.transaction.PlanetTransaction`
    does so automatically for any policy exposing that method.
    """

    def __init__(self, env, probe_interval_ms: float = 5_000.0,
                 initial_rate: float = 1.0, step: float = 0.1,
                 min_rate: float = 0.05):
        if probe_interval_ms <= 0:
            raise ValueError("probe interval must be positive")
        if not 0.0 < initial_rate <= 1.0:
            raise ValueError("initial rate outside (0, 1]")
        if not 0.0 < step < 1.0:
            raise ValueError("step outside (0, 1)")
        if not 0.0 < min_rate <= initial_rate:
            raise ValueError("min rate outside (0, initial]")
        self.env = env
        self.admit_rate = float(initial_rate)
        self.step = float(step)
        self.min_rate = float(min_rate)
        self._commits_this_period = 0
        self._last_goodput = 0.0
        self._direction = -1.0  # first move backs off from full admit
        self.probe_interval_ms = float(probe_interval_ms)
        #: (time, admit_rate) trail for observability/ablations.
        self.history = []
        env.process(self._probe_loop())

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        return rng.random() < self.admit_rate

    def observe_outcome(self, committed: bool) -> None:
        if committed:
            self._commits_this_period += 1

    def _probe_loop(self):
        while True:
            yield self.env.timeout(self.probe_interval_ms)
            goodput = self._commits_this_period / self.probe_interval_ms
            self._commits_this_period = 0
            if goodput < self._last_goodput:
                self._direction = -self._direction  # worse: turn around
            self._last_goodput = goodput
            self.admit_rate = min(
                1.0, max(self.min_rate,
                         self.admit_rate + self._direction * self.step))
            self.history.append((self.env.now, self.admit_rate))

    def describe(self) -> str:
        return f"Adaptive({self.admit_rate:.2f})"


class DynamicPolicy(AdmissionPolicy):
    """``Dynamic(threshold)``: attempt rate follows the likelihood.

    Below the threshold, a transaction with likelihood ``L`` is
    attempted with probability ``L``.  ``Dynamic(0)`` is equivalent to
    no admission control; ``Dynamic(100)`` throttles everything in
    proportion to its likelihood — the paper's recommended default is
    Dynamic with a high threshold.
    """

    def __init__(self, threshold_pct: float):
        if not 0.0 <= threshold_pct <= 100.0:
            raise ValueError(f"threshold {threshold_pct} outside [0, 100]")
        self.threshold = threshold_pct / 100.0

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        if likelihood >= self.threshold:
            return True
        return rng.random() < likelihood

    def describe(self) -> str:
        return f"Dyn({self.threshold * 100:.0f})"
