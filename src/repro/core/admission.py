"""Likelihood-based admission control (§4.2).

When the predicted commit likelihood of a transaction is low, it is
often better not to attempt it at all: the doomed attempt would waste
resources and — worse — hold options that increase contention for
everyone else.  Two policies from the paper:

* ``Fixed(threshold, attempt_rate)`` — below the threshold, attempt
  with a fixed probability;
* ``Dynamic(threshold)`` — below the threshold, attempt with
  probability equal to the likelihood itself.

Thresholds and rates are expressed in **percent** to match the paper's
notation (``Fixed(40, 20)``, ``Dynamic(50)``).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Iterable, Optional, Tuple


class LikelihoodMemo:
    """Admission-time LRU over per-record likelihood evaluations.

    Every admission decision re-runs the eq. 8b Poisson integral —
    a ~1000-term dot product — even though the inputs repeat heavily:
    the (client DC, leader DC) cell is one of N², the processing time
    *w* is usually a per-workload constant, and hot records share
    arrival-rate buckets.  This cache sits in front of
    :meth:`~repro.core.likelihood.CommitLikelihoodModel.record_likelihood`
    and keys on ``(client_dc, leader_dc, rate, w)``.

    **Exact by default.**  With ``rate_quantum``/``w_quantum`` unset,
    keys are the raw float inputs: a hit returns the bit-identical
    value a fresh evaluation would have produced, so memoization never
    changes an admission decision.  Setting a quantum trades exactness
    for hit rate: inputs are snapped to the quantization grid and the
    integral is evaluated *at the snapped values*, keeping the cache
    coherent (one key, one value — never a stale neighbour's value).

    The likelihood model invalidates per cell when a rebuild changes
    that cell's conflict-window PMF, so entries never outlive the
    matrix they were computed from.
    """

    __slots__ = ("capacity", "rate_quantum", "w_quantum", "hits",
                 "misses", "_entries")

    def __init__(self, capacity: int = 4096,
                 rate_quantum: Optional[float] = None,
                 w_quantum: Optional[float] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if rate_quantum is not None and rate_quantum <= 0:
            raise ValueError("rate quantum must be positive")
        if w_quantum is not None and w_quantum <= 0:
            raise ValueError("w quantum must be positive")
        self.capacity = int(capacity)
        self.rate_quantum = rate_quantum
        self.w_quantum = w_quantum
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def evaluation_point(self, rate: float,
                         w_ms: float) -> Tuple[float, float]:
        """The (rate, w) the integral is evaluated at for these inputs.

        The identity map unless quantization is enabled; snapped
        values are also the cache key, so cached and computed results
        always agree.
        """
        if self.rate_quantum is not None and rate > 0.0:
            rate = max(round(rate / self.rate_quantum), 1) \
                * self.rate_quantum
        if self.w_quantum is not None and w_ms > 0.0:
            w_ms = round(w_ms / self.w_quantum) * self.w_quantum
        return rate, w_ms

    def lookup(self, client_dc: int, leader_dc: int, rate: float,
               w_ms: float) -> Tuple[tuple, Optional[float]]:
        """``(key, cached value or None)`` for one evaluation."""
        rate, w_ms = self.evaluation_point(rate, w_ms)
        key = (client_dc, leader_dc, rate, w_ms)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return key, value

    def store(self, key: tuple, value: float) -> None:
        entries = self._entries
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def invalidate_cells(
            self, cells: Iterable[Tuple[int, int]]) -> int:
        """Drop entries whose (client_dc, leader_dc) cell was rebuilt."""
        cells = set(cells)
        if not cells:
            return 0
        stale = [key for key in self._entries if key[:2] in cells]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AdmissionPolicy(ABC):
    """Decides whether to attempt a transaction given its likelihood."""

    @abstractmethod
    def decide(self, likelihood: float, rng: random.Random) -> bool:
        """True to attempt the transaction, False to reject it."""

    @abstractmethod
    def describe(self) -> str:
        """Short label for reports (e.g. ``"Dyn(50)"``)."""


class NoAdmission(AdmissionPolicy):
    """Attempt everything (the paper's baseline configuration)."""

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        return True

    def describe(self) -> str:
        return "none"


class FixedPolicy(AdmissionPolicy):
    """``Fixed(threshold, attempt_rate)``: coin-flip below the threshold.

    ``Fixed(40, 20)`` attempts transactions whose likelihood is below
    40 % only 20 % of the time; an attempt rate of 100 disables the
    policy.
    """

    def __init__(self, threshold_pct: float, attempt_rate_pct: float):
        if not 0.0 <= threshold_pct <= 100.0:
            raise ValueError(f"threshold {threshold_pct} outside [0, 100]")
        if not 0.0 <= attempt_rate_pct <= 100.0:
            raise ValueError(
                f"attempt rate {attempt_rate_pct} outside [0, 100]")
        self.threshold = threshold_pct / 100.0
        self.attempt_rate = attempt_rate_pct / 100.0

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        if likelihood >= self.threshold:
            return True
        return rng.random() < self.attempt_rate

    def describe(self) -> str:
        return (f"F({self.threshold * 100:.0f},"
                f"{self.attempt_rate * 100:.0f})")


class AdaptiveProbingPolicy(AdmissionPolicy):
    """Likelihood-blind adaptive load control (Heiss & Wagner style).

    The comparison baseline from the paper's related work (§7, [18]):
    instead of predicting per-transaction commit likelihood, maintain a
    single global admit probability and *probe* — periodically compare
    the achieved goodput against the previous period and hill-climb the
    admit rate in whichever direction improves it.

    The harness must feed outcomes back through
    :meth:`observe_outcome`; :class:`~repro.core.transaction.PlanetTransaction`
    does so automatically for any policy exposing that method.
    """

    def __init__(self, env, probe_interval_ms: float = 5_000.0,
                 initial_rate: float = 1.0, step: float = 0.1,
                 min_rate: float = 0.05):
        if probe_interval_ms <= 0:
            raise ValueError("probe interval must be positive")
        if not 0.0 < initial_rate <= 1.0:
            raise ValueError("initial rate outside (0, 1]")
        if not 0.0 < step < 1.0:
            raise ValueError("step outside (0, 1)")
        if not 0.0 < min_rate <= initial_rate:
            raise ValueError("min rate outside (0, initial]")
        self.env = env
        self.admit_rate = float(initial_rate)
        self.step = float(step)
        self.min_rate = float(min_rate)
        self._commits_this_period = 0
        self._last_goodput = 0.0
        self._direction = -1.0  # first move backs off from full admit
        self.probe_interval_ms = float(probe_interval_ms)
        #: (time, admit_rate) trail for observability/ablations.
        self.history = []
        env.process(self._probe_loop())

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        return rng.random() < self.admit_rate

    def observe_outcome(self, committed: bool) -> None:
        if committed:
            self._commits_this_period += 1

    def _probe_loop(self):
        while True:
            yield self.env.timeout(self.probe_interval_ms)
            goodput = self._commits_this_period / self.probe_interval_ms
            self._commits_this_period = 0
            if goodput < self._last_goodput:
                self._direction = -self._direction  # worse: turn around
            self._last_goodput = goodput
            self.admit_rate = min(
                1.0, max(self.min_rate,
                         self.admit_rate + self._direction * self.step))
            self.history.append((self.env.now, self.admit_rate))
            if self.env.metrics is not None:
                self.env.metrics.set_gauge("admission.admit_rate",
                                           self.admit_rate)

    def describe(self) -> str:
        return f"Adaptive({self.admit_rate:.2f})"


class DynamicPolicy(AdmissionPolicy):
    """``Dynamic(threshold)``: attempt rate follows the likelihood.

    Below the threshold, a transaction with likelihood ``L`` is
    attempted with probability ``L``.  ``Dynamic(0)`` is equivalent to
    no admission control; ``Dynamic(100)`` throttles everything in
    proportion to its likelihood — the paper's recommended default is
    Dynamic with a high threshold.
    """

    def __init__(self, threshold_pct: float):
        if not 0.0 <= threshold_pct <= 100.0:
            raise ValueError(f"threshold {threshold_pct} outside [0, 100]")
        self.threshold = threshold_pct / 100.0

    def decide(self, likelihood: float, rng: random.Random) -> bool:
        if likelihood >= self.threshold:
            return True
        return rng.random() < likelihood

    def describe(self) -> str:
        return f"Dyn({self.threshold * 100:.0f})"
