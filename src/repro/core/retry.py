"""Retrying PLANET transactions with exponential backoff (§4.2).

PLANET never retries rejected transactions on its own — "the developer
may choose to retry rejected transactions ... and implement retries
with exponential backoff to mitigate starvation".  This module is that
developer-side helper: it re-executes a transaction template when the
outcome was a rejection (or, optionally, an abort), with exponential
backoff plus jitter between attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.states import TxInfo, TxState
from repro.core.transaction import PlanetSession, PlanetTransaction, Tx
from repro.sim import Environment, Event
from repro.storage.record import WriteOp


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with decorrelating jitter."""

    initial_ms: float = 100.0
    multiplier: float = 2.0
    max_backoff_ms: float = 10_000.0
    jitter: float = 0.2  # +- fraction of the computed delay

    def __post_init__(self):
        if self.initial_ms <= 0 or self.multiplier < 1.0:
            raise ValueError("backoff must grow from a positive start")
        if self.max_backoff_ms < self.initial_ms:
            raise ValueError("max backoff below the initial delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter fraction outside [0, 1)")

    def delay_ms(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        base = min(self.initial_ms * self.multiplier ** (attempt - 1),
                   self.max_backoff_ms)
        if self.jitter:
            base *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return base


class RetryingTransaction:
    """Drives a transaction template through retries.

    ``configure`` is called for each attempt with a fresh :class:`Tx`
    so the application installs its stage blocks each time; retried
    attempts re-read the records, so their likelihoods reflect current
    statistics.  Retries happen when the attempt ends REJECTED (always)
    or ABORTED (with ``retry_aborts=True``); a commit, a speculative
    commit confirmed, or attempt exhaustion ends the loop.

    ``done_event`` fires with the final :class:`TxInfo`.
    """

    def __init__(self, session: PlanetSession, writes: List[WriteOp],
                 timeout_ms: float,
                 configure: Optional[Callable[[Tx], None]] = None,
                 backoff: Optional[BackoffPolicy] = None,
                 max_attempts: int = 5, retry_aborts: bool = False):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.session = session
        self.env: Environment = session.env
        self.writes = list(writes)
        self.timeout_ms = timeout_ms
        self.configure = configure
        self.backoff = backoff or BackoffPolicy()
        self.max_attempts = int(max_attempts)
        self.retry_aborts = retry_aborts
        self.attempts: List[PlanetTransaction] = []
        self.done_event: Event = self.env.event()
        self._rng = session.rng
        self.env.process(self._run())

    @property
    def final_info(self) -> Optional[TxInfo]:
        if not self.done_event.triggered:
            return None
        return self.done_event.value

    @property
    def committed(self) -> bool:
        info = self.final_info
        return info is not None and info.state is TxState.COMMITTED

    def _should_retry(self, info: TxInfo) -> bool:
        if info.state is TxState.REJECTED:
            return True
        return self.retry_aborts and info.state is TxState.ABORTED

    def _run(self):
        for attempt in range(1, self.max_attempts + 1):
            tx = self.session.transaction(self.writes,
                                          timeout_ms=self.timeout_ms)
            tx.on_failure(lambda info: None)
            tx.on_complete(lambda info: None)
            if self.configure is not None:
                self.configure(tx)
            if self.env.metrics is not None:
                self.env.metrics.inc("retry.attempts")
            planet_tx = tx.execute()
            self.attempts.append(planet_tx)
            info = yield planet_tx.final_event
            if not self._should_retry(info) or attempt == self.max_attempts:
                if (self.env.metrics is not None
                        and attempt == self.max_attempts
                        and self._should_retry(info)):
                    self.env.metrics.inc("retry.exhausted")
                if not self.done_event.triggered:
                    self.done_event.succeed(info)
                return
            delay = self.backoff.delay_ms(attempt, self._rng)
            if self.env.metrics is not None:
                self.env.metrics.observe("retry.backoff_ms", delay)
            yield self.env.timeout(delay)


def execute_with_retries(session: PlanetSession, writes: List[WriteOp],
                         timeout_ms: float,
                         **kwargs) -> RetryingTransaction:
    """Convenience wrapper: start a retrying transaction."""
    return RetryingTransaction(session, writes, timeout_ms, **kwargs)
