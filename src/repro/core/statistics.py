"""System statistics collection and dissemination (§5.2).

Three statistics feed the likelihood model:

* **message latencies** (§5.2.1): clients ping one storage node per
  data center at a fixed interval, measure the round trip (spikes and
  all), and record it in windowed histograms keyed by DC pair;
* **transaction sizes** (§5.2.2): every started transaction registers
  its write-set size;
* **record access rates** (§5.2.3): measured on the storage nodes
  (see :class:`repro.storage.AccessRateTracker`) and piggybacked on
  read replies.

The paper disseminates client histograms by piggybacking them on RPCs
to the storage nodes, which aggregate and echo the merged view back.
Here all agents publish into one shared :class:`StatisticsService` hub
per cluster — the state every party converges to — while the *probe
traffic itself* stays real: the RTT samples come from actual simulated
ping round trips, so measurement lag, spikes, and windowed aging all
behave as deployed.  An :class:`OracleLatencySource` bypasses
measurement entirely for model-accuracy ablations.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.histograms import Pmf, WindowedHistogram
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.net.topology import Topology
from repro.sim import Environment, RandomStreams


class OracleLatencySource:
    """Builds a :class:`LatencyMatrix` straight from the topology.

    Samples each link's latency model offline — the ground truth a
    perfectly converged statistics service would measure.  Used for
    fast experiment setup and for isolating likelihood-model error
    from measurement error.
    """

    def __init__(self, topology: Topology, streams: RandomStreams,
                 samples: int = 4000, bin_ms: float = 2.0,
                 n_bins: int = 1024):
        self.topology = topology
        self.samples = int(samples)
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self._rng = streams.get("oracle-latency")

    def latency_matrix(self) -> LatencyMatrix:
        n = len(self.topology)
        rtt_pmfs: Dict[Tuple[int, int], Pmf] = {}
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                forward = self.topology.latency(a, b)
                backward = self.topology.latency(b, a)
                samples = [
                    forward.sample(self._rng) + backward.sample(self._rng)
                    for _ in range(self.samples)
                ]
                rtt_pmfs[(a, b)] = Pmf.from_samples(
                    samples, self.bin_ms, self.n_bins)
        return LatencyMatrix(n, rtt_pmfs, self.bin_ms, self.n_bins)


class StatisticsService:
    """The cluster-wide statistics hub plus client-side probe agents."""

    def __init__(self, env: Environment, cluster, streams: RandomStreams,
                 bin_ms: float = 2.0, n_bins: int = 1024,
                 generations: int = 6, rotate_ms: float = 60_000.0):
        # Per-service so agent names (and the RNG streams derived from
        # them) are reproducible across runs within one host process.
        self._agent_ids = itertools.count(1)
        self.env = env
        self.cluster = cluster
        self.streams = streams
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self._rtt: Dict[Tuple[int, int], WindowedHistogram] = {}
        self._sizes: Counter = Counter()
        self._pings_sent = 0
        # Incremental-rebuild state: the model built last time plus a
        # snapshot of every directed pair's histogram version at that
        # build, so the next build knows exactly which pairs moved.
        self._model: Optional[CommitLikelihoodModel] = None
        self._model_signature: Dict[Tuple[int, int], int] = {}
        for nodes in cluster.nodes.values():
            for node in nodes:
                node.stats_provider = self._on_ping
        if rotate_ms > 0:
            env.process(self._rotator(rotate_ms))

        self._generations = generations

    # -- hub state -----------------------------------------------------------

    def _histogram(self, pair: Tuple[int, int]) -> WindowedHistogram:
        hist = self._rtt.get(pair)
        if hist is None:
            hist = WindowedHistogram(self.bin_ms, self.n_bins,
                                     self._generations)
            self._rtt[pair] = hist
        return hist

    def record_rtt(self, src_dc: int, dst_dc: int, rtt_ms: float) -> None:
        self._histogram((src_dc, dst_dc)).add(rtt_ms)

    def record_transaction_size(self, size: int) -> None:
        if size < 1:
            raise ValueError("transaction size must be >= 1")
        self._sizes[size] += 1

    def _on_ping(self, payload, src: str):
        """Storage-node side of a probe: acknowledge immediately."""
        return "pong"

    def _rotator(self, rotate_ms: float):
        while True:
            yield self.env.timeout(rotate_ms)
            for hist in self._rtt.values():
                hist.rotate()

    # -- probe agents ------------------------------------------------------------

    def start_agent(self, datacenter: int,
                    ping_interval_ms: float = 1000.0) -> None:
        """Launch a probing client in ``datacenter``.

        The agent pings one storage node in every data center each
        interval and records the measured round trips.  Intervals are
        jittered so the fleet does not probe in lockstep.
        """
        from repro.net.rpc import RpcEndpoint  # local import: avoid cycle

        name = f"stats/{next(self._agent_ids)}"
        endpoint = RpcEndpoint(self.env, self.cluster.transport, name,
                               datacenter)
        rng = self.streams.get(f"stats-agent-{name}")
        self.env.process(
            self._probe_loop(endpoint, datacenter, ping_interval_ms, rng))

    def _probe_loop(self, endpoint, datacenter: int, interval_ms: float,
                    rng):
        yield self.env.timeout(rng.uniform(0, interval_ms))
        n = len(self.cluster.topology)
        while True:
            for target_dc in range(n):
                target = self.cluster.node_address(target_dc, 0)
                sent = self.env.now
                self._pings_sent += 1
                self.env.process(
                    self._measure(endpoint, target, datacenter,
                                  target_dc, sent))
            yield self.env.timeout(interval_ms * rng.uniform(0.9, 1.1))

    def _measure(self, endpoint, target: str, src_dc: int, dst_dc: int,
                 sent: float):
        try:
            yield endpoint.call(target, "ping", None, timeout_ms=10_000.0)
        except Exception:
            return  # lost probe: no sample
        self.record_rtt(src_dc, dst_dc, self.env.now - sent)

    # -- model construction ---------------------------------------------------------

    def coverage(self) -> int:
        """Number of DC pairs with at least one RTT sample."""
        return sum(1 for hist in self._rtt.values()
                   if hist.total_count() > 0)

    def latency_matrix(self,
                       fallback: Optional[Topology] = None) -> LatencyMatrix:
        """The measured RTT matrix.

        Pairs without samples fall back to the topology's mean RTT as a
        point mass (when ``fallback`` is given) or raise.
        """
        n = len(self.cluster.topology)
        rtt_pmfs: Dict[Tuple[int, int], Pmf] = {}
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                rtt_pmfs[(a, b)] = self._pair_pmf(a, b, fallback)
        return LatencyMatrix(n, rtt_pmfs, self.bin_ms, self.n_bins)

    def size_distribution(self) -> Dict[int, float]:
        if not self._sizes:
            return {1: 1.0}
        total = sum(self._sizes.values())
        return {size: count / total
                for size, count in sorted(self._sizes.items())}

    # -- incremental-rebuild bookkeeping --------------------------------------

    def _pair_source(self, a: int, b: int) -> Optional[WindowedHistogram]:
        """The histogram backing directed pair (a, b), if any has samples."""
        hist = self._rtt.get((a, b)) or self._rtt.get((b, a))
        if hist is not None and hist.total_count() > 0:
            return hist
        return None

    def _signature(self) -> Dict[Tuple[int, int], int]:
        """Per-directed-pair version stamp of the current statistics.

        ``-1`` marks a pair still on the fallback point mass; a pair
        moves between builds iff its stamp moved (histogram versions
        are bumped only by aggregate-count changes).
        """
        n = len(self.cluster.topology)
        signature: Dict[Tuple[int, int], int] = {}
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                hist = self._pair_source(a, b)
                signature[(a, b)] = hist.version if hist is not None else -1
        return signature

    def _pair_pmf(self, a: int, b: int,
                  fallback: Optional[Topology]) -> Pmf:
        hist = self._pair_source(a, b)
        if hist is not None:
            return hist.pmf()
        if fallback is not None:
            return Pmf.point(fallback.mean_rtt(a, b), self.bin_ms,
                             self.n_bins)
        raise ValueError(f"no RTT samples for DC pair ({a}, {b}) "
                         "and no fallback topology")

    def build_model(self,
                    leader_distribution: Optional[List[float]] = None,
                    client_distribution: Optional[List[float]] = None,
                    fallback: Optional[Topology] = None,
                    quorum: Optional[int] = None,
                    incremental: bool = False) -> CommitLikelihoodModel:
        """Assemble and precompute a likelihood model from current stats.

        With ``incremental=True``, a model built by a previous call is
        patched in place via
        :meth:`~repro.core.likelihood.CommitLikelihoodModel.refresh`:
        the histogram version stamps recorded at the last build tell
        exactly which (src, dst) pairs changed, and only the matrix
        cells those pairs dirty are recomputed (likelihood-memo entries
        for the changed cells are invalidated, the rest survive).  The
        first call — or a call after a topology/quorum change — always
        takes the full reference rebuild.
        """
        if leader_distribution is None:
            leader_distribution = self.cluster.mastership.leader_distribution()
        signature = self._signature()
        model = self._model
        if (incremental and model is not None
                and model.latency.n == len(self.cluster.topology)
                and (quorum is None or quorum == model.quorum)):
            changed = {pair for pair, stamp in signature.items()
                       if self._model_signature.get(pair) != stamp}
            updates = {pair: self._pair_pmf(pair[0], pair[1], fallback)
                       for pair in sorted(changed)}
            model.refresh(rtt_updates=updates,
                          size_distribution=self.size_distribution(),
                          leader_distribution=leader_distribution,
                          client_distribution=client_distribution)
            self._model_signature = signature
            return model
        model = CommitLikelihoodModel(
            self.latency_matrix(fallback=fallback),
            leader_distribution,
            client_distribution=client_distribution,
            size_distribution=self.size_distribution(),
            quorum=quorum)
        model.precompute()
        self._model = model
        self._model_signature = signature
        return model
