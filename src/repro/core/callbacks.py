"""Delivery services for the finally callbacks (§3.3).

``finally_callback`` runs in the application (at-most-once: it is lost
if the client fails), while ``finally_callback_remote`` models a
web-service invocation executed from anywhere in the system with
at-least-once delivery — it survives client failure and may be invoked
more than once, which the application's handler must tolerate.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.sim import Environment, RandomStreams


class RemoteCallbackService:
    """At-least-once delivery of remote finally callbacks.

    The service lives on the cluster side, so submitted callbacks fire
    even after the submitting client crashed.  ``duplicate_prob``
    injects the duplicate deliveries an at-least-once channel is
    allowed to produce (useful to test handler idempotence).
    """

    def __init__(self, env: Environment, streams: RandomStreams,
                 delivery_delay_ms: float = 5.0,
                 duplicate_prob: float = 0.0):
        if delivery_delay_ms < 0:
            raise ValueError("negative delivery delay")
        if not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError("duplicate_prob outside [0, 1]")
        self.env = env
        self.delivery_delay_ms = float(delivery_delay_ms)
        self.duplicate_prob = float(duplicate_prob)
        self._rng = streams.get("remote-callbacks")
        #: (virtual time, callback) pairs actually delivered.
        self.delivered: List[Tuple[float, Callable]] = []

    def submit(self, callback: Callable[[Any], None], argument: Any) -> None:
        """Queue a remote invocation of ``callback(argument)``."""
        self.env.process(self._deliver(callback, argument))
        if self.duplicate_prob and self._rng.random() < self.duplicate_prob:
            self.env.process(self._deliver(callback, argument))

    def _deliver(self, callback: Callable[[Any], None], argument: Any):
        yield self.env.timeout(self.delivery_delay_ms)
        self.delivered.append((self.env.now, callback))
        callback(argument)
