"""Distributed statistics dissemination (the full §5.2.1 mechanism).

The paper's pipeline, implemented end to end:

1. every client keeps **windowed local histograms** of the round trips
   it measures to each data center;
2. on each probe RPC it **piggybacks its current counts** to the
   storage node it pings;
3. storage nodes **aggregate across clients** (latest counts per
   client, so cumulative re-pushes never double count) and return the
   merged matrix with the response;
4. the client **adopts the aggregate** as its view of the pairs it
   cannot measure itself, keeping freshness for its own vantage point.

Compared with :class:`repro.core.statistics.StatisticsService` (a
shared hub — the converged state), this module models the convergence
*process*: a freshly started client's matrix is empty, fills in from
aggregates within a few probe rounds, and ages with the windows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.histograms import Pmf, WindowedHistogram
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.net.rpc import RpcEndpoint
from repro.net.topology import Topology
from repro.sim import Environment, RandomStreams

Pair = Tuple[int, int]


class NodeStatsStore:
    """A storage node's aggregate of client-pushed statistics.

    Stores the latest cumulative (windowed) counts per client and
    aggregates by summation; clients push whole snapshots, so
    replacing the previous push keeps every sample counted exactly
    once.
    """

    def __init__(self, n_bins: int):
        self.n_bins = int(n_bins)
        self._by_client: Dict[str, Dict[Pair, np.ndarray]] = {}
        self._sizes_by_client: Dict[str, Dict[int, int]] = {}

    def absorb(self, client_id: str, rtt_counts: Dict[Pair, np.ndarray],
               size_counts: Optional[Dict[int, int]] = None) -> None:
        checked: Dict[Pair, np.ndarray] = {}
        for pair, counts in rtt_counts.items():
            counts = np.asarray(counts, dtype=float)
            if counts.shape != (self.n_bins,):
                raise ValueError(f"bad histogram shape for pair {pair}")
            checked[pair] = counts
        self._by_client[client_id] = checked
        if size_counts is not None:
            self._sizes_by_client[client_id] = dict(size_counts)

    def aggregate(self) -> Dict[Pair, np.ndarray]:
        total: Dict[Pair, np.ndarray] = {}
        for client_counts in self._by_client.values():
            for pair, counts in client_counts.items():
                if pair in total:
                    total[pair] = total[pair] + counts
                else:
                    total[pair] = counts.copy()
        return total

    def aggregate_sizes(self) -> Dict[int, int]:
        total: Dict[int, int] = {}
        for sizes in self._sizes_by_client.values():
            for size, count in sizes.items():
                total[size] = total.get(size, 0) + count
        return total

    @property
    def n_clients(self) -> int:
        return len(self._by_client)


class ClientStatsAgent:
    """One client's measuring, pushing, and merging loop.

    ``agent_id`` must be unique per transport; the service hands out
    sequential run-local ids so runs reproduce byte-identically (a
    process-global counter would leak across runs).
    """

    def __init__(self, env: Environment, cluster, datacenter: int,
                 streams: RandomStreams, bin_ms: float = 2.0,
                 n_bins: int = 1024, generations: int = 6,
                 ping_interval_ms: float = 1000.0,
                 rotate_ms: float = 60_000.0,
                 agent_id: Optional[str] = None):
        self.env = env
        self.cluster = cluster
        self.datacenter = datacenter
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self.client_id = (agent_id if agent_id is not None
                          else f"statsagent/dc{datacenter}")
        self.endpoint = RpcEndpoint(env, cluster.transport, self.client_id,
                                    datacenter)
        self._rng = streams.get(f"dissemination-{self.client_id}")
        self.ping_interval_ms = float(ping_interval_ms)
        self._generations = int(generations)
        #: This client's own measurements (windowed, aging).
        self.own: Dict[Pair, WindowedHistogram] = {}
        #: Latest aggregate received from a storage node.
        self.global_view: Dict[Pair, np.ndarray] = {}
        self.global_sizes: Dict[int, int] = {}
        #: Locally observed transaction sizes (cumulative).
        self.own_sizes: Dict[int, int] = {}
        self.pushes = 0
        self.env.process(self._probe_loop())
        if rotate_ms > 0:
            self.env.process(self._rotator(rotate_ms))

    # -- local measurement ---------------------------------------------------

    def _own_histogram(self, pair: Pair) -> WindowedHistogram:
        hist = self.own.get(pair)
        if hist is None:
            hist = WindowedHistogram(self.bin_ms, self.n_bins,
                                     self._generations)
            self.own[pair] = hist
        return hist

    def observe_rtt(self, dst_dc: int, rtt_ms: float) -> None:
        self._own_histogram((self.datacenter, dst_dc)).add(rtt_ms)

    def observe_transaction_size(self, size: int) -> None:
        if size < 1:
            raise ValueError("transaction size must be >= 1")
        self.own_sizes[size] = self.own_sizes.get(size, 0) + 1

    def _snapshot_counts(self) -> Dict[Pair, np.ndarray]:
        return {pair: hist.counts() for pair, hist in self.own.items()}

    # -- probe / push / merge loop -----------------------------------------------

    def _probe_loop(self):
        yield self.env.timeout(self._rng.uniform(0, self.ping_interval_ms))
        n = len(self.cluster.topology)
        while True:
            for target_dc in range(n):
                target = self.cluster.node_address(target_dc, 0)
                self.env.process(self._probe_once(target, target_dc))
            yield self.env.timeout(
                self.ping_interval_ms * self._rng.uniform(0.9, 1.1))

    def _probe_once(self, target: str, target_dc: int):
        payload = {
            "client": self.client_id,
            "rtt": self._snapshot_counts(),
            "sizes": dict(self.own_sizes),
        }
        sent = self.env.now
        self.pushes += 1
        try:
            reply = yield self.endpoint.call(target, "stats_push", payload,
                                             timeout_ms=10_000.0)
        except Exception:
            return  # lost probe: no sample, no merge
        self.observe_rtt(target_dc, self.env.now - sent)
        if reply:
            self.global_view = reply.get("rtt", {})
            self.global_sizes = reply.get("sizes", {})

    def _rotator(self, rotate_ms: float):
        while True:
            yield self.env.timeout(rotate_ms)
            for hist in self.own.values():
                hist.rotate()

    # -- view assembly ----------------------------------------------------------------

    def coverage(self) -> int:
        """DC pairs this client currently has data for (own or global)."""
        pairs = set(self.global_view)
        pairs.update(pair for pair, hist in self.own.items()
                     if hist.total_count() > 0)
        return len(pairs)

    def latency_matrix(self,
                       fallback: Optional[Topology] = None) -> LatencyMatrix:
        """This client's current RTT matrix.

        Own fresh measurements win over the global aggregate for the
        pairs this client can observe directly; everything else comes
        from the aggregate, then from the ``fallback`` topology means.
        """
        n = len(self.cluster.topology)
        pmfs: Dict[Pair, Pmf] = {}
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                pmf = self._pair_pmf((a, b)) or self._pair_pmf((b, a))
                if pmf is not None:
                    pmfs[(a, b)] = pmf
                elif fallback is not None:
                    pmfs[(a, b)] = Pmf.point(
                        fallback.mean_rtt(a, b), self.bin_ms, self.n_bins)
                else:
                    raise ValueError(
                        f"no statistics for DC pair ({a}, {b}) and no "
                        "fallback topology")
        return LatencyMatrix(n, pmfs, self.bin_ms, self.n_bins)

    def _pair_pmf(self, pair: Pair) -> Optional[Pmf]:
        own = self.own.get(pair)
        if own is not None and own.total_count() > 0:
            return own.pmf()
        counts = self.global_view.get(pair)
        if counts is not None and counts.sum() > 0:
            return Pmf.from_counts(counts, self.bin_ms)
        return None

    def size_distribution(self) -> Dict[int, float]:
        counts: Dict[int, int] = dict(self.global_sizes)
        for size, count in self.own_sizes.items():
            counts[size] = counts.get(size, 0) + count
        total = sum(counts.values())
        if total == 0:
            return {1: 1.0}
        return {size: count / total for size, count in sorted(counts.items())}

    def build_model(self, leader_distribution: Optional[List[float]] = None,
                    fallback: Optional[Topology] = None) -> CommitLikelihoodModel:
        if leader_distribution is None:
            leader_distribution = \
                self.cluster.mastership.leader_distribution()
        model = CommitLikelihoodModel(
            self.latency_matrix(fallback=fallback), leader_distribution,
            size_distribution=self.size_distribution())
        model.precompute()
        return model


class DisseminationService:
    """Wires the per-node stores and the client agents together."""

    def __init__(self, env: Environment, cluster, streams: RandomStreams,
                 bin_ms: float = 2.0, n_bins: int = 1024,
                 generations: int = 6):
        self.env = env
        self.cluster = cluster
        self.streams = streams
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self.generations = int(generations)
        self.stores: Dict[str, NodeStatsStore] = {}
        self.agents: List[ClientStatsAgent] = []
        for nodes in cluster.nodes.values():
            for node in nodes:
                store = NodeStatsStore(self.n_bins)
                self.stores[node.address] = store
                node.stats_provider = self._handler_for(store)

    def _handler_for(self, store: NodeStatsStore):
        def handler(payload, src: str):
            if not isinstance(payload, dict):
                return None  # a plain ping: ack without stats exchange
            store.absorb(payload["client"], payload.get("rtt", {}),
                         payload.get("sizes"))
            return {"rtt": store.aggregate(),
                    "sizes": store.aggregate_sizes()}
        return handler

    def start_agent(self, datacenter: int,
                    ping_interval_ms: float = 1000.0,
                    rotate_ms: float = 60_000.0) -> ClientStatsAgent:
        agent = ClientStatsAgent(
            self.env, self.cluster, datacenter, self.streams,
            bin_ms=self.bin_ms, n_bins=self.n_bins,
            generations=self.generations,
            ping_interval_ms=ping_interval_ms, rotate_ms=rotate_ms,
            agent_id=f"statsagent/{len(self.agents) + 1}")
        self.agents.append(agent)
        return agent
