"""PLANET: the predictive latency-aware transaction programming model.

This package is the paper's primary contribution:

* :class:`PlanetSession` / :class:`Tx` — the programming model of §3
  and §4 (stage blocks ``on_failure`` / ``on_accept`` /
  ``on_complete(P)``, finally callbacks, and the generalized
  ``on_progress`` with ``FINISH_TX``);
* :class:`CommitLikelihoodModel` — the Paxos commit-likelihood model
  of §5.1.2 (equations 1–9) over discrete delay PMFs;
* :class:`StatisticsService` — the windowed latency/size histograms
  and record access rates of §5.2;
* admission control (§4.2): :class:`FixedPolicy`, :class:`DynamicPolicy`.
"""

from repro.core.states import FINISH_TX, TxInfo, TxState
from repro.core.histograms import Pmf, WindowedHistogram
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.core.statistics import OracleLatencySource, StatisticsService
from repro.core.admission import (
    AdmissionPolicy,
    DynamicPolicy,
    FixedPolicy,
    NoAdmission,
)
from repro.core.callbacks import RemoteCallbackService
from repro.core.transaction import PlanetSession, PlanetTransaction, Tx
from repro.core.retry import (
    BackoffPolicy,
    RetryingTransaction,
    execute_with_retries,
)
from repro.core.protocol_models import (
    MegastoreModel,
    QuorumStoreModel,
    TwoPhaseCommitModel,
)
from repro.core.dissemination import (
    ClientStatsAgent,
    DisseminationService,
    NodeStatsStore,
)
from repro.core.admission import AdaptiveProbingPolicy

__all__ = [
    "AdaptiveProbingPolicy",
    "AdmissionPolicy",
    "BackoffPolicy",
    "ClientStatsAgent",
    "DisseminationService",
    "MegastoreModel",
    "NodeStatsStore",
    "QuorumStoreModel",
    "RetryingTransaction",
    "TwoPhaseCommitModel",
    "execute_with_retries",
    "CommitLikelihoodModel",
    "DynamicPolicy",
    "FINISH_TX",
    "FixedPolicy",
    "LatencyMatrix",
    "NoAdmission",
    "OracleLatencySource",
    "PlanetSession",
    "PlanetTransaction",
    "Pmf",
    "RemoteCallbackService",
    "StatisticsService",
    "Tx",
    "TxInfo",
    "TxState",
    "WindowedHistogram",
]
