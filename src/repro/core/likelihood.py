"""The commit-likelihood model for the MDCC classic protocol (§5.1.2).

The model estimates, at transaction start, the probability that every
option of the transaction will be learned as accepted.  Equations 1–9
of the paper are evaluated over discrete delay PMFs:

* eq. 1 — per-link round trip ``M^{l,b}``: taken directly from the
  measured RTT histograms (phase2a + phase2b are one round trip);
* eq. 2 — ``Q^l``: quorum order statistic over the N per-link RTTs;
* eq. 3 — ``Q^{l,cp} = Q^l + M_learned`` (one-way, RTT/2);
* eq. 4 — ``U``: maximum over the previous transaction's leaders plus
  the commit-visibility delay to the current client's data center;
* eq. 5/8a — ``Phi_W``: add the propose delay to the current leader
  (the processing time *w* is factored out, per the paper);
* eq. 6 — marginalization over the unknown previous client location,
  leader locations, and transaction size;
* eq. 7/8b — per-record commit likelihood: integrate the Poisson
  no-arrival probability against the conflict-window distribution;
* eq. 9 — transaction likelihood: product over written records.

All marginalizations are transaction-independent, so the whole model
collapses to an ``N x N`` matrix of PMFs (one per (client DC, leader
DC) pair) computed by :meth:`CommitLikelihoodModel.precompute` — the
compact matrix of §5.2.4.  Per-transaction evaluation is then a lookup
plus one dot product per record.

Fast paths
----------
Model maintenance and evaluation each carry an accelerated layer on
top of the exact defaults:

* :meth:`CommitLikelihoodModel.precompute` is the exact **reference
  rebuild** — unchanged numerics, always available as the fallback —
  but it now also retains every intermediate node of the dependency
  chain ``rtt → q_leader → q_to_client → mixed → u_by_client →
  visible_at → phi``.
* :meth:`CommitLikelihoodModel.refresh` is the **incremental
  rebuild**: given the set of (src, dst) RTT pairs that actually
  changed since the last build, it propagates dirtiness through that
  chain and recomputes only the affected nodes, using the FFT
  convolution path with per-PMF cached spectra and the
  ``renormalize=False`` CDF-domain operations (pinned to the exact
  reference within 1e-12 by the property suite).  It returns the set
  of changed ``(client_dc, leader_dc)`` matrix cells.
* :meth:`CommitLikelihoodModel.record_likelihood` consults a
  :class:`~repro.core.admission.LikelihoodMemo` keyed on
  ``(client_dc, leader_dc, rate, w)``.  With the default exact keys a
  hit is bit-identical to a fresh evaluation; ``rate_quantum`` /
  ``w_quantum`` trade exactness for hit rate.  The memo is cleared on
  :meth:`precompute` and invalidated per cell on :meth:`refresh`.
* :meth:`CommitLikelihoodModel.transaction_likelihood` batches the
  eq. 8b integrals of all memo-missing records into one ``np.exp``
  call (element-wise, so still bit-identical to the scalar loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.admission import LikelihoodMemo
from repro.core.histograms import Pmf

#: A (client_dc, leader_dc) cell of the precomputed matrix.
Cell = Tuple[int, int]


class LatencyMatrix:
    """Round-trip delay PMFs for every ordered data-center pair.

    One-way delays are modelled as RTT/2 (the paper measures only round
    trips and assumes message types behave alike, §5.2.1).  Local
    (intra-DC) delays are a small constant.

    Derived one-way PMFs are cached per pair so a model rebuild does
    not re-bin them; :meth:`update_rtt` replaces one directed pair and
    drops its cached derivation, which is how the incremental model
    refresh feeds changed statistics in.
    """

    def __init__(self, n_datacenters: int,
                 rtt_pmfs: Dict[Tuple[int, int], Pmf],
                 bin_ms: float, n_bins: int,
                 local_rtt_ms: float = 0.5):
        if n_datacenters < 1:
            raise ValueError("need at least one data center")
        self.n = n_datacenters
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self._local = Pmf.point(local_rtt_ms, self.bin_ms, self.n_bins)
        self._local_one_way = self._local.scale(0.5)
        self._rtt: Dict[Tuple[int, int], Pmf] = {}
        self._one_way: Dict[Tuple[int, int], Pmf] = {}
        for a in range(n_datacenters):
            for b in range(n_datacenters):
                if a == b:
                    continue
                pmf = rtt_pmfs.get((a, b)) or rtt_pmfs.get((b, a))
                if pmf is None:
                    raise ValueError(f"no RTT histogram for pair ({a}, {b})")
                self._rtt[(a, b)] = pmf

    def rtt(self, a: int, b: int) -> Pmf:
        if a == b:
            return self._local
        return self._rtt[(a, b)]

    def one_way(self, a: int, b: int) -> Pmf:
        if a == b:
            return self._local_one_way
        cached = self._one_way.get((a, b))
        if cached is None:
            cached = self._rtt[(a, b)].scale(0.5)
            self._one_way[(a, b)] = cached
        return cached

    def update_rtt(self, a: int, b: int, pmf: Pmf) -> None:
        """Replace one directed pair's RTT PMF (incremental refresh)."""
        if a == b:
            raise ValueError("cannot update the local-delay pair")
        if (a, b) not in self._rtt:
            raise ValueError(f"unknown pair ({a}, {b})")
        self._rtt[(a, b)] = pmf
        self._one_way.pop((a, b), None)


class CommitLikelihoodModel:
    """Predicts commit likelihoods for the MDCC classic protocol.

    Parameters
    ----------
    latency:
        The measured (or oracle) RTT matrix.
    leader_distribution:
        ``P(L = l)`` — where record masters live (uniform under hash
        mastership).
    client_distribution:
        ``P(C = c)`` — where the *previous*, potentially conflicting
        transaction's client may run; defaults to uniform.
    size_distribution:
        ``P(R = tau)`` — transaction size histogram; defaults to
        single-record transactions.
    quorum:
        Responses the leader waits for; defaults to a majority of N.
    max_size:
        Truncation for the size marginalization (sizes above it are
        folded into the largest bucket).
    memo_capacity:
        Entries of the admission-time likelihood LRU; ``0`` disables
        memoization entirely.
    rate_quantum / w_quantum:
        Optional memo-key quantization steps (see
        :class:`~repro.core.admission.LikelihoodMemo`).  ``None`` — the
        default — keys on the exact inputs, so memoized results are
        bit-identical to unmemoized ones.
    truncate_epsilon:
        Tail mass the *incremental* refresh may fold into the last
        kept bin of each intermediate PMF.  ``0.0`` (default) is
        exact; the reference :meth:`precompute` never truncates.
    mode:
        ``"classic"`` (default) evaluates the paper's chain verbatim.
        ``"fast"`` models MDCC fast ballots: the phase-2 order
        statistic runs at the ⌈3N/4⌉ fast-quorum size and — when
        ``collision_probability`` is positive — every conflict-window
        cell becomes a mixture of the direct fast round and the
        collision branch that additionally pays a classic recovery
        (propose to the record master plus a classic-majority round).
    fast_quorum:
        Override for the fast phase-2 quorum; defaults to ⌈3N/4⌉.
        Ignored under classic mode.
    collision_probability:
        P(the fast round collides and recovers classically), mixed
        into the conflict window under fast mode.  ``0.0`` drops the
        recovery branch entirely.
    """

    def __init__(self, latency: LatencyMatrix,
                 leader_distribution: Sequence[float],
                 client_distribution: Optional[Sequence[float]] = None,
                 size_distribution: Optional[Dict[int, float]] = None,
                 quorum: Optional[int] = None, max_size: int = 8,
                 memo_capacity: int = 4096,
                 rate_quantum: Optional[float] = None,
                 w_quantum: Optional[float] = None,
                 truncate_epsilon: float = 0.0,
                 mode: str = "classic",
                 fast_quorum: Optional[int] = None,
                 collision_probability: float = 0.0):
        if mode not in ("classic", "fast"):
            raise ValueError(f"unknown protocol mode {mode!r}")
        if not 0.0 <= collision_probability <= 1.0:
            raise ValueError("collision probability must be in [0, 1]")
        self.latency = latency
        n = latency.n
        self.mode = mode
        self.collision_probability = float(collision_probability)
        self.leader_dist = self._normalize_weights(
            leader_distribution, n, "leader")
        if client_distribution is None:
            self.client_dist = [1.0 / n] * n
        else:
            self.client_dist = self._normalize_weights(
                client_distribution, n, "client")
        self.max_size = int(max_size)
        self.size_dist = self._normalize_sizes(size_distribution,
                                               self.max_size)
        self.quorum = quorum if quorum is not None else n // 2 + 1
        if not 1 <= self.quorum <= n:
            raise ValueError(f"quorum {self.quorum} impossible with {n} DCs")
        if mode == "fast":
            self.fast_quorum = (fast_quorum if fast_quorum is not None
                                else -(-3 * n // 4))
            if not 1 <= self.fast_quorum <= n:
                raise ValueError(
                    f"fast quorum {self.fast_quorum} impossible with {n} DCs")
        else:
            if fast_quorum is not None:
                raise ValueError(
                    "fast_quorum is only meaningful with mode='fast'")
            self.fast_quorum = None
        #: Responses the phase-2 order statistic (eq. 2) waits for —
        #: the fast-quorum size under fast mode, the classic majority
        #: otherwise.  Classic numerics are untouched.
        self._phase2_quorum = (self.fast_quorum if mode == "fast"
                               else self.quorum)
        if truncate_epsilon < 0:
            raise ValueError("truncate_epsilon must be >= 0")
        self.truncate_epsilon = float(truncate_epsilon)
        self.memo: Optional[LikelihoodMemo] = (
            LikelihoodMemo(memo_capacity, rate_quantum=rate_quantum,
                           w_quantum=w_quantum)
            if memo_capacity > 0 else None)
        # Every intermediate node of the §5.2.4 precompute chain is
        # retained so refresh() can rebuild only what a statistics
        # rotation actually dirtied.
        self._q_leader: Dict[int, Pmf] = {}
        self._q_to_client: Dict[Tuple[int, int], Pmf] = {}
        self._mixed: Dict[int, Pmf] = {}
        self._u: Dict[int, Pmf] = {}
        self._visible: Dict[int, Pmf] = {}
        self._phi: Optional[Dict[Cell, Pmf]] = None

    @staticmethod
    def _normalize_weights(weights: Sequence[float], n: int,
                           label: str) -> List[float]:
        if len(weights) != n:
            raise ValueError(f"{label} distribution length mismatch")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError(f"{label} distribution sums to zero")
        return [p / total for p in weights]

    @staticmethod
    def _normalize_sizes(size_distribution: Optional[Dict[int, float]],
                         max_size: int) -> Dict[int, float]:
        if not size_distribution:
            return {1: 1.0}
        folded: Dict[int, float] = {}
        for size, weight in size_distribution.items():
            if size < 1 or weight < 0:
                raise ValueError("bad size distribution entry")
            folded[min(size, max_size)] = (
                folded.get(min(size, max_size), 0.0) + weight)
        total = sum(folded.values())
        if total <= 0:
            raise ValueError("size distribution sums to zero")
        return {size: weight / total for size, weight in folded.items()}

    # -- precomputation (§5.2.4) ------------------------------------------------

    def precompute(self) -> None:
        """Build the N x N matrix of conflict-window PMFs (eq. 8a).

        The exact reference rebuild: every node recomputed with the
        default (exact) PMF operations.  Clears the likelihood memo —
        every cell may have moved.
        """
        n = self.latency.n
        # eq. 2: quorum wait at each possible leader location (the
        # ⌈3N/4⌉ fast quorum under fast ballots).
        self._q_leader = {
            l: Pmf.quorum_of([self.latency.rtt(l, b) for b in range(n)],
                             self._phase2_quorum)
            for l in range(n)
        }
        # eq. 3: + learned message back to the previous client.
        self._q_to_client = {
            (l, cp): self._q_leader[l].convolve(self.latency.one_way(l, cp))
            for l in range(n) for cp in range(n)
        }
        # eq. 4 marginalized over leader locations and sizes: for a
        # previous transaction of size tau with i.i.d. leaders, the max
        # of tau draws from the leader-mixture distribution.
        for cp in range(n):
            mixed = Pmf.mixture(
                [self._q_to_client[(l, cp)] for l in range(n)],
                self.leader_dist)
            self._mixed[cp] = mixed
            self._u[cp] = Pmf.mixture(
                [mixed.iid_max(tau) for tau in self.size_dist],
                list(self.size_dist.values()))
        # eq. 4 tail + eq. 6 marginalization over cp: add the commit-
        # visibility delay cp -> cc and mix over the client prior.
        for cc in range(n):
            self._visible[cc] = Pmf.mixture(
                [self._u[cp].convolve(self.latency.one_way(cp, cc))
                 for cp in range(n)],
                self.client_dist)
        # eq. 8a: + propose delay from the current client to the leader.
        self._phi = {
            (cc, l): self._visible[cc].convolve(self.latency.one_way(cc, l))
            for cc in range(n) for l in range(n)
        }
        # Fast-ballot extension: with probability p the round collides
        # and additionally pays the classic recovery — a fallback
        # propose to the record master plus a classic-majority round
        # there — so each cell's window becomes the (1-p, p) mixture
        # of the direct chain and the recovery-extended chain.
        if self.mode == "fast" and self.collision_probability > 0.0:
            p = self.collision_probability
            q_classic = {
                l: Pmf.quorum_of(
                    [self.latency.rtt(l, b) for b in range(n)], self.quorum)
                for l in range(n)
            }
            for (cc, l), phi in list(self._phi.items()):
                recovery = self.latency.one_way(cc, l).convolve(q_classic[l])
                self._phi[(cc, l)] = Pmf.mixture(
                    [phi, phi.convolve(recovery)], [1.0 - p, p])
        if self.memo is not None:
            self.memo.clear()

    def refresh(self, rtt_updates: Optional[Dict[Tuple[int, int],
                                                 Pmf]] = None,
                size_distribution: Optional[Dict[int, float]] = None,
                leader_distribution: Optional[Sequence[float]] = None,
                client_distribution: Optional[Sequence[float]] = None,
                ) -> Set[Cell]:
        """Incrementally rebuild the cells dirtied by changed inputs.

        ``rtt_updates`` maps directed (src, dst) pairs to their new RTT
        PMFs; the distribution arguments replace the respective priors
        when given (``None`` means unchanged).  Dirtiness propagates
        through the dependency chain and only dirty nodes are
        recomputed — on the accelerated path (FFT convolution with
        cached spectra, CDF-domain operations without the final
        re-normalizing division, optional tail truncation).  Property
        tests pin the result to a fresh :meth:`precompute` within
        1e-12.

        Returns the set of changed ``(client_dc, leader_dc)`` cells and
        invalidates exactly those cells in the likelihood memo.  Falls
        back to the full reference rebuild when no matrix exists yet.
        """
        n = self.latency.n
        dirty_pairs: Set[Tuple[int, int]] = set()
        if rtt_updates:
            for (a, b), pmf in rtt_updates.items():
                self.latency.update_rtt(a, b, pmf)
                dirty_pairs.add((a, b))
        leaders_changed = False
        if leader_distribution is not None:
            new_leaders = self._normalize_weights(
                leader_distribution, n, "leader")
            if new_leaders != self.leader_dist:
                self.leader_dist = new_leaders
                leaders_changed = True
        clients_changed = False
        if client_distribution is not None:
            new_clients = self._normalize_weights(
                client_distribution, n, "client")
            if new_clients != self.client_dist:
                self.client_dist = new_clients
                clients_changed = True
        sizes_changed = False
        if size_distribution is not None:
            new_sizes = self._normalize_sizes(size_distribution,
                                              self.max_size)
            if new_sizes != self.size_dist:
                self.size_dist = new_sizes
                sizes_changed = True

        if self._phi is None:
            # Nothing to patch: the exact rebuild is the baseline.
            self.precompute()
            return set(self._phi)
        if (not dirty_pairs and not leaders_changed and not clients_changed
                and not sizes_changed):
            return set()
        if self.mode == "fast" and self.collision_probability > 0.0:
            # The collision-recovery mixture couples every cell to the
            # classic quorum chain, so an incremental patch would touch
            # nearly the whole matrix anyway — take the exact rebuild.
            self.precompute()
            return set(self._phi)

        eps = self.truncate_epsilon
        latency = self.latency

        # eq. 2: only leaders with a changed incident RTT.
        dirty_leaders = {a for (a, b) in dirty_pairs}
        for l in sorted(dirty_leaders):
            self._q_leader[l] = Pmf.quorum_of(
                [latency.rtt(l, b) for b in range(n)], self._phase2_quorum,
                renormalize=False).truncate(eps)
        # eq. 3: a (l, cp) node moves with its quorum wait or its link.
        dirty_qtc: Set[Tuple[int, int]] = set()
        for l in range(n):
            for cp in range(n):
                if l in dirty_leaders or (l, cp) in dirty_pairs:
                    self._q_to_client[(l, cp)] = self._q_leader[l].convolve(
                        latency.one_way(l, cp),
                        method="fft").truncate(eps)
                    dirty_qtc.add((l, cp))
        # eq. 4 + size marginalization.
        dirty_u: Set[int] = set()
        for cp in range(n):
            mixed_dirty = (leaders_changed
                           or any((l, cp) in dirty_qtc for l in range(n)))
            if mixed_dirty:
                self._mixed[cp] = Pmf.mixture(
                    [self._q_to_client[(l, cp)] for l in range(n)],
                    self.leader_dist, renormalize=False)
            if mixed_dirty or sizes_changed:
                mixed = self._mixed[cp]
                self._u[cp] = Pmf.mixture(
                    [mixed.iid_max(tau, renormalize=False)
                     for tau in self.size_dist],
                    list(self.size_dist.values()),
                    renormalize=False).truncate(eps)
                dirty_u.add(cp)
        # eq. 6: convolve each visibility term with the cp -> cc delay
        # and mix over the client prior — commuting operations, fused
        # into one spectral pass per client data center.
        dirty_visible: Set[int] = set()
        for cc in range(n):
            terms_changed = bool(dirty_u) or any(
                (cp, cc) in dirty_pairs for cp in range(n))
            if terms_changed or clients_changed:
                self._visible[cc] = Pmf.convolution_mixture(
                    [(self._u[cp], latency.one_way(cp, cc))
                     for cp in range(n)],
                    self.client_dist).truncate(eps)
                dirty_visible.add(cc)
        # eq. 8a: final propose-delay convolution per dirty cell.
        changed: Set[Cell] = set()
        for cc in range(n):
            for l in range(n):
                if cc in dirty_visible or (cc, l) in dirty_pairs:
                    self._phi[(cc, l)] = self._visible[cc].convolve(
                        latency.one_way(cc, l),
                        method="fft").truncate(eps)
                    changed.add((cc, l))
        if self.memo is not None:
            self.memo.invalidate_cells(changed)
        return changed

    @property
    def ready(self) -> bool:
        return self._phi is not None

    def conflict_window_pmf(self, client_dc: int, leader_dc: int) -> Pmf:
        """The precomputed ``Phi_W`` distribution for one matrix cell."""
        if self._phi is None:
            raise RuntimeError("call precompute() first")
        return self._phi[(client_dc, leader_dc)]

    # -- per-transaction evaluation ------------------------------------------------

    def record_likelihood(self, client_dc: int, leader_dc: int,
                          arrival_rate_per_ms: float,
                          w_ms: float = 0.0) -> float:
        """Eq. 8b: P(no conflicting update during the window).

        Memoized through :attr:`memo` when enabled; with the default
        exact keys, a hit returns the bit-identical value a fresh
        integral would have produced.
        """
        memo = self.memo
        if memo is None:
            phi = self.conflict_window_pmf(client_dc, leader_dc)
            return phi.no_arrival_probability(arrival_rate_per_ms,
                                              extra_ms=max(w_ms, 0.0))
        key, cached = memo.lookup(client_dc, leader_dc,
                                  arrival_rate_per_ms, w_ms)
        if cached is not None:
            return cached
        phi = self.conflict_window_pmf(client_dc, leader_dc)
        value = phi.no_arrival_probability(key[2], extra_ms=max(key[3], 0.0))
        memo.store(key, value)
        return value

    def transaction_likelihood(
            self, client_dc: int,
            records: Sequence[Tuple[int, float]],
            w_ms: float = 0.0) -> float:
        """Eq. 9: product of per-record likelihoods.

        ``records`` is a list of ``(leader_dc, arrival_rate_per_ms)``
        pairs, one per written record.  Memo hits resolve without any
        array work; the remaining integrals are batched through one
        ``np.exp`` over stacked exponent rows — element-wise, so the
        result is bit-identical to the scalar per-record loop.
        """
        if not records:
            return 1.0
        memo = self.memo
        values: List[Optional[float]] = [None] * len(records)
        pending: List[Tuple[int, Optional[tuple], Pmf, float, float]] = []
        for index, (leader_dc, rate) in enumerate(records):
            if memo is not None:
                key, cached = memo.lookup(client_dc, leader_dc, rate, w_ms)
                if cached is not None:
                    values[index] = cached
                    continue
                eval_rate, eval_w = key[2], key[3]
            else:
                key = None
                eval_rate, eval_w = rate, w_ms
            if eval_rate < 0:
                raise ValueError("negative arrival rate")
            if eval_rate == 0:
                values[index] = 1.0
                if memo is not None:
                    memo.store(key, 1.0)
                continue
            phi = self.conflict_window_pmf(client_dc, leader_dc)
            pending.append((index, key, phi, eval_rate, eval_w))
        if pending:
            width = max(item[2].n_bins for item in pending)
            exponents = np.zeros((len(pending), width))
            for row, (_, _, phi, rate, w) in enumerate(pending):
                times = phi.bin_centers() + max(w, 0.0)
                exponents[row, :phi.n_bins] = -rate * times
            decay = np.exp(exponents)
            for row, (index, key, phi, _, _) in enumerate(pending):
                value = float(np.dot(phi.probs, decay[row, :phi.n_bins]))
                value = min(max(value, 0.0), 1.0)
                values[index] = value
                if memo is not None:
                    memo.store(key, value)
        likelihood = 1.0
        for value in values:
            likelihood *= value
        return likelihood

    # -- auxiliary estimates --------------------------------------------------------

    def commit_time_pmf(self, client_dc: int,
                        leader_dcs: Sequence[int]) -> Pmf:
        """Estimated commit-latency distribution for a transaction.

        Propose to each leader, quorum round there, learned back — the
        transaction decides at the max over its leaders.  Useful for
        duration estimates exposed through ``onProgress``.
        """
        if self._phi is None:
            raise RuntimeError("call precompute() first")
        per_leader = [
            self.latency.one_way(client_dc, l)
            .convolve(self._q_leader[l])
            .convolve(self.latency.one_way(l, client_dc))
            for l in leader_dcs
        ]
        return Pmf.max_of(per_leader)
