"""The commit-likelihood model for the MDCC classic protocol (§5.1.2).

The model estimates, at transaction start, the probability that every
option of the transaction will be learned as accepted.  Equations 1–9
of the paper are evaluated over discrete delay PMFs:

* eq. 1 — per-link round trip ``M^{l,b}``: taken directly from the
  measured RTT histograms (phase2a + phase2b are one round trip);
* eq. 2 — ``Q^l``: quorum order statistic over the N per-link RTTs;
* eq. 3 — ``Q^{l,cp} = Q^l + M_learned`` (one-way, RTT/2);
* eq. 4 — ``U``: maximum over the previous transaction's leaders plus
  the commit-visibility delay to the current client's data center;
* eq. 5/8a — ``Phi_W``: add the propose delay to the current leader
  (the processing time *w* is factored out, per the paper);
* eq. 6 — marginalization over the unknown previous client location,
  leader locations, and transaction size;
* eq. 7/8b — per-record commit likelihood: integrate the Poisson
  no-arrival probability against the conflict-window distribution;
* eq. 9 — transaction likelihood: product over written records.

All marginalizations are transaction-independent, so the whole model
collapses to an ``N x N`` matrix of PMFs (one per (client DC, leader
DC) pair) computed by :meth:`CommitLikelihoodModel.precompute` — the
compact matrix of §5.2.4.  Per-transaction evaluation is then a lookup
plus one dot product per record.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.histograms import Pmf


class LatencyMatrix:
    """Round-trip delay PMFs for every ordered data-center pair.

    One-way delays are modelled as RTT/2 (the paper measures only round
    trips and assumes message types behave alike, §5.2.1).  Local
    (intra-DC) delays are a small constant.
    """

    def __init__(self, n_datacenters: int,
                 rtt_pmfs: Dict[Tuple[int, int], Pmf],
                 bin_ms: float, n_bins: int,
                 local_rtt_ms: float = 0.5):
        if n_datacenters < 1:
            raise ValueError("need at least one data center")
        self.n = n_datacenters
        self.bin_ms = float(bin_ms)
        self.n_bins = int(n_bins)
        self._local = Pmf.point(local_rtt_ms, self.bin_ms, self.n_bins)
        self._rtt: Dict[Tuple[int, int], Pmf] = {}
        for a in range(n_datacenters):
            for b in range(n_datacenters):
                if a == b:
                    continue
                pmf = rtt_pmfs.get((a, b)) or rtt_pmfs.get((b, a))
                if pmf is None:
                    raise ValueError(f"no RTT histogram for pair ({a}, {b})")
                self._rtt[(a, b)] = pmf

    def rtt(self, a: int, b: int) -> Pmf:
        if a == b:
            return self._local
        return self._rtt[(a, b)]

    def one_way(self, a: int, b: int) -> Pmf:
        return self.rtt(a, b).scale(0.5)


class CommitLikelihoodModel:
    """Predicts commit likelihoods for the MDCC classic protocol.

    Parameters
    ----------
    latency:
        The measured (or oracle) RTT matrix.
    leader_distribution:
        ``P(L = l)`` — where record masters live (uniform under hash
        mastership).
    client_distribution:
        ``P(C = c)`` — where the *previous*, potentially conflicting
        transaction's client may run; defaults to uniform.
    size_distribution:
        ``P(R = tau)`` — transaction size histogram; defaults to
        single-record transactions.
    quorum:
        Responses the leader waits for; defaults to a majority of N.
    max_size:
        Truncation for the size marginalization (sizes above it are
        folded into the largest bucket).
    """

    def __init__(self, latency: LatencyMatrix,
                 leader_distribution: Sequence[float],
                 client_distribution: Optional[Sequence[float]] = None,
                 size_distribution: Optional[Dict[int, float]] = None,
                 quorum: Optional[int] = None, max_size: int = 8):
        self.latency = latency
        n = latency.n
        if len(leader_distribution) != n:
            raise ValueError("leader distribution length mismatch")
        total = float(sum(leader_distribution))
        if total <= 0:
            raise ValueError("leader distribution sums to zero")
        self.leader_dist = [p / total for p in leader_distribution]
        if client_distribution is None:
            self.client_dist = [1.0 / n] * n
        else:
            if len(client_distribution) != n:
                raise ValueError("client distribution length mismatch")
            ctotal = float(sum(client_distribution))
            if ctotal <= 0:
                raise ValueError("client distribution sums to zero")
            self.client_dist = [p / ctotal for p in client_distribution]
        self.size_dist = self._normalize_sizes(size_distribution, max_size)
        self.quorum = quorum if quorum is not None else n // 2 + 1
        if not 1 <= self.quorum <= n:
            raise ValueError(f"quorum {self.quorum} impossible with {n} DCs")
        self._phi: Optional[Dict[Tuple[int, int], Pmf]] = None
        self._q_leader: Dict[int, Pmf] = {}

    @staticmethod
    def _normalize_sizes(size_distribution: Optional[Dict[int, float]],
                         max_size: int) -> Dict[int, float]:
        if not size_distribution:
            return {1: 1.0}
        folded: Dict[int, float] = {}
        for size, weight in size_distribution.items():
            if size < 1 or weight < 0:
                raise ValueError("bad size distribution entry")
            folded[min(size, max_size)] = (
                folded.get(min(size, max_size), 0.0) + weight)
        total = sum(folded.values())
        if total <= 0:
            raise ValueError("size distribution sums to zero")
        return {size: weight / total for size, weight in folded.items()}

    # -- precomputation (§5.2.4) ------------------------------------------------

    def precompute(self) -> None:
        """Build the N x N matrix of conflict-window PMFs (eq. 8a)."""
        n = self.latency.n
        # eq. 2: quorum wait at each possible leader location.
        self._q_leader = {
            l: Pmf.quorum_of([self.latency.rtt(l, b) for b in range(n)],
                             self.quorum)
            for l in range(n)
        }
        # eq. 3: + learned message back to the previous client.
        q_to_client: Dict[Tuple[int, int], Pmf] = {
            (l, cp): self._q_leader[l].convolve(self.latency.one_way(l, cp))
            for l in range(n) for cp in range(n)
        }
        # eq. 4 marginalized over leader locations and sizes: for a
        # previous transaction of size tau with i.i.d. leaders, the max
        # of tau draws from the leader-mixture distribution.
        u_by_client: Dict[int, Pmf] = {}
        for cp in range(n):
            mixed = Pmf.mixture([q_to_client[(l, cp)] for l in range(n)],
                                self.leader_dist)
            u_by_client[cp] = Pmf.mixture(
                [mixed.iid_max(tau) for tau in self.size_dist],
                list(self.size_dist.values()))
        # eq. 4 tail + eq. 6 marginalization over cp: add the commit-
        # visibility delay cp -> cc and mix over the client prior.
        visible_at: Dict[int, Pmf] = {}
        for cc in range(n):
            visible_at[cc] = Pmf.mixture(
                [u_by_client[cp].convolve(self.latency.one_way(cp, cc))
                 for cp in range(n)],
                self.client_dist)
        # eq. 8a: + propose delay from the current client to the leader.
        self._phi = {
            (cc, l): visible_at[cc].convolve(self.latency.one_way(cc, l))
            for cc in range(n) for l in range(n)
        }

    @property
    def ready(self) -> bool:
        return self._phi is not None

    def conflict_window_pmf(self, client_dc: int, leader_dc: int) -> Pmf:
        """The precomputed ``Phi_W`` distribution for one matrix cell."""
        if self._phi is None:
            raise RuntimeError("call precompute() first")
        return self._phi[(client_dc, leader_dc)]

    # -- per-transaction evaluation ------------------------------------------------

    def record_likelihood(self, client_dc: int, leader_dc: int,
                          arrival_rate_per_ms: float,
                          w_ms: float = 0.0) -> float:
        """Eq. 8b: P(no conflicting update during the window)."""
        phi = self.conflict_window_pmf(client_dc, leader_dc)
        return phi.no_arrival_probability(arrival_rate_per_ms,
                                          extra_ms=max(w_ms, 0.0))

    def transaction_likelihood(
            self, client_dc: int,
            records: Sequence[Tuple[int, float]],
            w_ms: float = 0.0) -> float:
        """Eq. 9: product of per-record likelihoods.

        ``records`` is a list of ``(leader_dc, arrival_rate_per_ms)``
        pairs, one per written record.
        """
        likelihood = 1.0
        for leader_dc, rate in records:
            likelihood *= self.record_likelihood(
                client_dc, leader_dc, rate, w_ms)
        return likelihood

    # -- auxiliary estimates --------------------------------------------------------

    def commit_time_pmf(self, client_dc: int,
                        leader_dcs: Sequence[int]) -> Pmf:
        """Estimated commit-latency distribution for a transaction.

        Propose to each leader, quorum round there, learned back — the
        transaction decides at the max over its leaders.  Useful for
        duration estimates exposed through ``onProgress``.
        """
        if self._phi is None:
            raise RuntimeError("call precompute() first")
        per_leader = [
            self.latency.one_way(client_dc, l)
            .convolve(self._q_leader[l])
            .convolve(self.latency.one_way(l, client_dc))
            for l in leader_dcs
        ]
        return Pmf.max_of(per_leader)
