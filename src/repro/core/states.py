"""Transaction states and the summaries passed to stage blocks.

The states are exactly the six of §3.1; :class:`TxInfo` is the
``txInfo`` summary every stage block and finally callback receives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TxState(enum.Enum):
    """Externally visible transaction state (paper §3.1)."""

    UNKNOWN = "unknown"
    REJECTED = "rejected"          # turned away by admission control
    ACCEPTED = "accepted"          # commit process started, will not be lost
    COMMITTED = "committed"
    SPEC_COMMITTED = "spec_committed"  # reported committed on likelihood >= P
    ABORTED = "aborted"

    @property
    def is_final(self) -> bool:
        return self in (TxState.COMMITTED, TxState.ABORTED,
                        TxState.REJECTED)


class _FinishTx:
    """Singleton sentinel an ``on_progress`` block returns to regain
    the thread of control (§4.1.1)."""

    _instance: Optional["_FinishTx"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FINISH_TX"


#: Return this from an ``on_progress`` block to stop waiting.
FINISH_TX = _FinishTx()


@dataclass(frozen=True)
class TxInfo:
    """The transaction summary handed to every callback.

    ``commit_likelihood`` is the latest estimate (1.0 once committed,
    0.0 once aborted); ``timed_out`` says whether the application
    timeout has already expired; ``success`` is True for COMMITTED and
    SPEC_COMMITTED states (the ``txInfo.success`` of Listing 3).
    """

    txid: str
    state: TxState
    commit_likelihood: float
    timed_out: bool
    elapsed_ms: float
    stage: str
    rejected_keys: tuple = ()

    @property
    def success(self) -> bool:
        return self.state in (TxState.COMMITTED, TxState.SPEC_COMMITTED)

    @property
    def is_final(self) -> bool:
        return self.state.is_final
