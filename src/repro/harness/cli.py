"""Command-line experiment runner.

Run a single configured experiment and print its summary table::

    python -m repro --system planet --rate 200 --items 20000 \\
        --hotspot 800 --spec 0.95 --admission dyn:50 --duration 30

Or compare PLANET against the traditional baseline in one go::

    python -m repro --compare --rate 300 --hotspot 100 --items 50000

The CLI drives the same :class:`~repro.harness.experiment.Experiment`
the figure benchmarks use; it exists for quick interactive exploration
of operating points the figures do not cover.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.core.admission import (
    AdmissionPolicy,
    DynamicPolicy,
    FixedPolicy,
)
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.report import format_table


def parse_admission(spec: Optional[str]) -> Optional[AdmissionPolicy]:
    """Parse ``dyn:50`` or ``fixed:40:20`` into a policy."""
    if spec is None or spec == "none":
        return None
    parts = spec.lower().split(":")
    try:
        if parts[0] == "dyn" and len(parts) == 2:
            return DynamicPolicy(float(parts[1]))
        if parts[0] == "fixed" and len(parts) == 3:
            return FixedPolicy(float(parts[1]), float(parts[2]))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    raise argparse.ArgumentTypeError(
        f"bad admission spec {spec!r}; use dyn:<threshold> or "
        "fixed:<threshold>:<rate>")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a PLANET experiment on the simulated "
                    "geo-replicated MDCC database.")
    parser.add_argument("--system", choices=["planet", "traditional"],
                        default="planet")
    parser.add_argument("--compare", action="store_true",
                        help="run both systems and print them side by side")
    parser.add_argument("--topology", choices=["ec2", "uniform"],
                        default="ec2")
    parser.add_argument("--items", type=int, default=20_000,
                        help="size of the Items table")
    parser.add_argument("--hotspot", type=int, default=None,
                        help="hotspot size (omit for uniform access)")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="aggregate client request rate (TPS)")
    parser.add_argument("--timeout", type=float, default=5_000.0,
                        help="transaction timeout in ms")
    parser.add_argument("--spec", type=float, default=None,
                        help="speculative-commit threshold, e.g. 0.95")
    parser.add_argument("--admission", type=parse_admission, default=None,
                        metavar="POLICY",
                        help="dyn:<threshold> or fixed:<threshold>:<rate>")
    parser.add_argument("--service-ms", type=float, default=0.8,
                        help="per-message storage service time")
    parser.add_argument("--warmup", type=float, default=10.0,
                        help="warmup window, seconds of virtual time")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="measurement window, seconds of virtual time")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def run_one(args, system: str):
    config = ExperimentConfig(
        name=f"cli-{system}", seed=args.seed, system=system,
        topology=args.topology, n_items=args.items,
        hotspot_size=args.hotspot, rate_tps=args.rate,
        timeout_ms=args.timeout,
        spec_threshold=args.spec if system == "planet" else None,
        admission=args.admission if system == "planet" else None,
        storage_service_ms=args.service_ms,
        warmup_ms=args.warmup * 1000.0,
        duration_ms=args.duration * 1000.0,
        drain_ms=max(10_000.0, args.timeout * 2))
    return Experiment(config).run()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    systems = (["traditional", "planet"] if args.compare
               else [args.system])
    results = {system: run_one(args, system) for system in systems}

    metric_names = [
        "issued", "committed", "aborted", "rejected", "commit_tps",
        "abort_rate", "hot_commit_tps", "cold_commit_tps",
        "mean_response_ms", "p50_response_ms", "p95_response_ms",
        "spec_fraction", "spec_incorrect_fraction",
    ]
    rows = []
    for name in metric_names:
        row = [name]
        for system in systems:
            value = results[system].summary()[name]
            row.append(round(value, 3) if isinstance(value, float)
                       else value)
        rows.append(row)
    print(format_table(["metric"] + systems, rows,
                       title=(f"{args.rate:.0f} TPS, {args.items} items, "
                              f"hotspot={args.hotspot or 'none'}, "
                              f"{args.duration:.0f}s window")))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
