"""Experiment harness: configuration, execution, metrics, and reports.

One :class:`Experiment` reproduces one experimental run of the paper's
§6: it assembles the cluster, statistics, likelihood model, and load
generator from an :class:`ExperimentConfig`, runs warmup + measurement
windows in virtual time, and returns an :class:`ExperimentResult`
whose :class:`MetricsCollector` exposes the series each figure plots.
"""

from repro.harness.metrics import MetricsCollector, TxRecord
from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    TenantSpec,
)
from repro.harness.report import (
    format_table,
    print_table,
    render_bars,
    render_curves,
)
from repro.harness.monitoring import ClusterSnapshot, HealthMonitor, snapshot
from repro.harness.parallel import (
    default_pool_size,
    parallel_map,
    run_experiments,
)
from repro.harness.sharding import (
    merge_results,
    run_sharded,
    shard_configs,
)
from repro.harness.tracing import TransactionTrace, TransactionTracer

__all__ = [
    "ClusterSnapshot",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "HealthMonitor",
    "MetricsCollector",
    "TenantSpec",
    "TransactionTrace",
    "TransactionTracer",
    "TxRecord",
    "default_pool_size",
    "format_table",
    "merge_results",
    "parallel_map",
    "print_table",
    "render_bars",
    "render_curves",
    "run_experiments",
    "run_sharded",
    "shard_configs",
    "snapshot",
]
