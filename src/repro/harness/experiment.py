"""The experiment runner reproducing the paper's §6 setups."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baseline import TraditionalClient
from repro.check.faults import FaultSchedule
from repro.core import (
    AdmissionPolicy,
    CommitLikelihoodModel,
    OracleLatencySource,
    PlanetSession,
    StatisticsService,
)
from repro.harness.metrics import MetricsCollector, TxRecord
from repro.mdcc import Cluster
from repro.net import Topology, ec2_five_dc, uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage.record import WriteOp
from repro.workload import (
    AggregateLoad,
    BuyTransactionFactory,
    HotspotAccess,
    ModulatedArrivals,
    OpenSystemLoad,
    PoissonArrivals,
    RateModulation,
    UniformAccess,
    ZipfianAccess,
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a mixed workload: its own rate, mix, and shape.

    Each tenant gets its own open-system load generator on a dedicated
    random stream (``load-<experiment>-<tenant>``), so adding or
    re-rating one tenant never perturbs another's draw sequence.
    """

    name: str
    rate_tps: float
    read_fraction: float = 0.0
    modulation: Optional[RateModulation] = None

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ValueError(f"tenant {self.name!r} rate must be positive")


class _MultiLoad:
    """Fans one load lifecycle out to per-tenant generators."""

    def __init__(self, loads: Sequence[OpenSystemLoad]):
        self.loads = list(loads)

    def start(self, duration_ms: Optional[float] = None) -> None:
        for load in self.loads:
            load.start(duration_ms=duration_ms)

    def stop(self) -> None:
        for load in self.loads:
            load.stop()

    @property
    def issued(self) -> int:
        return sum(load.issued for load in self.loads)

    @property
    def reads_issued(self) -> int:
        return sum(load.reads_issued for load in self.loads)


@dataclass
class ExperimentConfig:
    """One experimental setup (defaults mirror §6.1/§6.2).

    ``system`` selects the programming model: ``"planet"`` or
    ``"traditional"``.  ``spec_threshold`` enables speculative commits,
    ``admission`` installs an admission-control policy, and
    ``use_on_accept`` defines the onAccept stage (§6.3 enables it,
    §6.4+ does not).
    """

    name: str = "experiment"
    seed: int = 0
    system: str = "planet"
    #: Protocol mode for the whole cluster: ``"classic"`` (default) or
    #: ``"fast"`` (MDCC fast ballots — clients propose straight to the
    #: acceptors under ⌈3N/4⌉ quorums, collisions recover classically).
    mode: str = "classic"
    #: Collision probability fed to the fast-mode likelihood model's
    #: recovery branch (ignored under classic mode).
    fast_collision_probability: float = 0.0
    #: Bound on one fast round before it falls back to classic; also
    #: the storage nodes' classic round timeout when set.
    round_timeout_ms: Optional[float] = None
    # topology
    topology: str = "ec2"          # "ec2" | "uniform"
    n_datacenters: int = 5         # for the uniform topology
    uniform_one_way_ms: float = 40.0
    sigma: float = 0.12
    spike_prob: float = 0.0005
    partitions_per_dc: int = 2
    mastership: object = "hash"
    #: Per-message processing time at storage nodes.  Positive values
    #: model finite server capacity (the paper's m1.large machines):
    #: overload then shows up as queueing delay and thrashing, which
    #: admission control exists to prevent.
    storage_service_ms: float = 0.0
    #: Per-message-kind costs, e.g. {"phase2a": 4.0} for the disk-bound
    #: option logging of the paper's m1.large servers.
    storage_service_overrides: Optional[Dict[str, float]] = None
    # data & workload
    n_items: int = 20_000
    initial_stock: int = 1_000_000
    hotspot_size: Optional[int] = None
    hot_prob: float = 0.9
    #: Zipf exponent: set for power-law access instead of hotspot/uniform.
    zipf_s: Optional[float] = None
    rate_tps: float = 200.0
    min_items: int = 1
    max_items: int = 4
    think_time_ms: float = 0.0
    #: Fraction of arrivals that are read-only browse transactions.
    read_fraction: float = 0.0
    #: Load engine: ``"per-client"`` (the default per-arrival generator
    #: process), ``"aggregate"`` (batch-scheduled, exact replay of the
    #: per-client draw sequence — byte-identical histories), or
    #: ``"aggregate-vectorized"`` (batch-scheduled with vectorized
    #: numpy draws — same distributions, the million-client scale path).
    load_engine: str = "per-client"
    #: Arrivals drawn and scheduled per batch by the aggregate engines.
    load_batch_size: int = 1024
    #: Schedule aggregate batches on an array-backed kernel timer lane
    #: instead of per-arrival heap events.
    load_timer_lane: bool = True
    #: Simulated user population for client attribution in the
    #: aggregate engines (0 = untracked).
    load_population: int = 0
    #: Time-varying rate shape applied to the arrival process (see
    #: :mod:`repro.workload.modulation`); None keeps the constant-rate
    #: paper workload bit-for-bit.
    modulation: Optional[RateModulation] = None
    #: Mixed-tenant workload: one open-system generator per tenant on
    #: its own stream, replacing the single ``rate_tps`` load.
    #: Requires the per-client engine.
    tenants: Optional[Sequence[TenantSpec]] = None
    # environment script
    #: Declarative fault schedule (:class:`repro.check.FaultSchedule`)
    #: applied to the cluster when the run starts — the scenario
    #: catalogue's degraded-environment arm.
    faults: Optional[FaultSchedule] = None
    # programming model
    timeout_ms: float = 5_000.0
    use_on_accept: bool = False
    spec_threshold: Optional[float] = None
    admission: Optional[AdmissionPolicy] = None
    # statistics & model
    stats_mode: str = "oracle"   # "oracle" | "measured" | "distributed"
    oracle_samples: int = 2000
    ping_interval_ms: float = 1000.0
    bin_ms: float = 2.0
    n_bins: int = 1024
    need_model: Optional[bool] = None  # default: infer from spec/admission
    #: Rebuild measured/distributed models every interval (the paper
    #: recomputes as the statistics windows age); None = build once.
    model_refresh_ms: Optional[float] = None
    #: Patch the measured model in place on refresh (dirty-pair
    #: propagation + accelerated PMF algebra) instead of rebuilding
    #: from scratch.  Pinned to the reference rebuild within 1e-12 by
    #: the property suite; set False to force full rebuilds.
    model_refresh_incremental: bool = True
    # windows (virtual time)
    warmup_ms: float = 30_000.0
    duration_ms: float = 60_000.0
    drain_ms: float = 15_000.0
    #: Install a :class:`repro.obs.ObsSession` on the kernel: metric
    #: registry + span tracing, dumped into ``ExperimentResult.obs``.
    observe: bool = False

    def wants_model(self) -> bool:
        if self.need_model is not None:
            return self.need_model
        return self.spec_threshold is not None or self.admission is not None


@dataclass
class ExperimentResult:
    """Config + collected metrics + a flat summary dict for reports."""

    config: ExperimentConfig
    metrics: MetricsCollector
    initial_likelihoods: List[float] = field(default_factory=list)
    read_latencies_ms: List[float] = field(default_factory=list)
    #: Observability artifacts (``{"version", "meta", "metrics",
    #: "spans"}``) when the config set ``observe=True``; else None.
    obs: Optional[Dict[str, object]] = None

    def summary(self) -> Dict[str, float]:
        metrics = self.metrics
        return {
            "issued": metrics.n_issued,
            "committed": metrics.n_committed,
            "aborted": metrics.n_aborted,
            "rejected": metrics.n_rejected,
            "commit_tps": metrics.commit_tps(),
            "abort_tps": metrics.abort_tps(),
            "abort_rate": metrics.abort_rate(),
            "hot_commit_tps": metrics.commit_tps(hot=True),
            "cold_commit_tps": metrics.commit_tps(hot=False),
            "mean_response_ms": metrics.mean_response_ms(),
            "p50_response_ms": metrics.percentile_response_ms(0.50),
            "p95_response_ms": metrics.percentile_response_ms(0.95),
            "spec_fraction": metrics.spec_fraction(),
            "spec_incorrect_fraction": metrics.spec_incorrect_fraction(),
        }


class _PlanetIssuer:
    """Issues PLANET buy transactions round-robin across DC sessions."""

    def __init__(self, experiment: "Experiment",
                 sessions: Sequence[PlanetSession]):
        self.experiment = experiment
        self.sessions = list(sessions)
        self._next = 0
        self.pending: List[tuple] = []  # (record, planet_tx)
        self.read_latencies_ms: List[float] = []

    def issue_read(self, keys: Sequence[str]) -> None:
        session = self.sessions[self._next % len(self.sessions)]
        self._next += 1
        start = session.env.now
        event = session.read(keys)
        event.callbacks.append(
            lambda _event: self.read_latencies_ms.append(
                session.env.now - start))

    def issue(self, writes: Sequence[WriteOp], touches_hotspot: bool) -> None:
        session = self.sessions[self._next % len(self.sessions)]
        self._next += 1
        config = self.experiment.config
        tx = session.transaction(writes, timeout_ms=config.timeout_ms,
                                 think_time_ms=config.think_time_ms)
        tx.on_failure(_noop)
        if config.use_on_accept:
            tx.on_accept(_noop)
        tx.on_complete(_noop, threshold=config.spec_threshold)
        tx.finally_callback(_noop)
        planet_tx = tx.execute()
        record = TxRecord(system="planet", issued_ms=planet_tx.start_ms,
                          timeout_ms=config.timeout_ms, hot=touches_hotspot,
                          size=len(writes))
        self.pending.append((record, planet_tx))

    def finalize(self, collector: MetricsCollector,
                 likelihoods: List[float]) -> None:
        for record, planet_tx in self.pending:
            record.admitted = planet_tx.admitted is not False
            record.accepted_ms = (
                planet_tx.handle.accepted_ms
                if planet_tx.handle is not None else None)
            record.decided_ms = planet_tx.decided_ms
            record.committed = planet_tx.committed
            record.spec_ms = planet_tx.spec_fired_ms
            record.spec_incorrect = planet_tx.spec_incorrect
            record.stage_fired = planet_tx.stage_fired
            record.stage_fired_ms = planet_tx.stage_fired_ms
            collector.add(record)
            if planet_tx.initial_likelihood is not None:
                likelihoods.append(planet_tx.initial_likelihood)


class _TraditionalIssuer:
    """Issues fire-and-hope transactions round-robin across DC clients."""

    def __init__(self, experiment: "Experiment",
                 clients: Sequence[TraditionalClient]):
        self.experiment = experiment
        self.clients = list(clients)
        self._next = 0
        self.pending: List[tuple] = []
        self.read_latencies_ms: List[float] = []

    def issue_read(self, keys: Sequence[str]) -> None:
        client = self.clients[self._next % len(self.clients)]
        self._next += 1
        start = client.env.now
        event = client.tm.read_only(keys)
        event.callbacks.append(
            lambda _event: self.read_latencies_ms.append(
                client.env.now - start))

    def issue(self, writes: Sequence[WriteOp], touches_hotspot: bool) -> None:
        client = self.clients[self._next % len(self.clients)]
        self._next += 1
        config = self.experiment.config
        txn = client.execute(writes, timeout_ms=config.timeout_ms,
                             think_time_ms=config.think_time_ms)
        record = TxRecord(system="traditional", issued_ms=txn.start_ms,
                          timeout_ms=config.timeout_ms, hot=touches_hotspot,
                          size=len(writes))
        self.pending.append((record, txn))

    def finalize(self, collector: MetricsCollector,
                 likelihoods: List[float]) -> None:
        for record, txn in self.pending:
            record.accepted_ms = txn.handle.accepted_ms
            record.decided_ms = txn.true_decided_ms
            record.committed = txn.true_committed
            if txn.app_outcome is not None:
                record.app_outcome = txn.app_outcome.value
            collector.add(record)


def _noop(info) -> None:
    """Stage blocks of the benchmark transactions do no app work."""


class Experiment:
    """Builds and runs one configured experiment in virtual time."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.env = Environment()
        self.obs_session = None
        if config.observe:
            from repro.obs import ObsSession
            self.obs_session = ObsSession()
            self.obs_session.install(self.env)
        self.streams = RandomStreams(seed=config.seed)
        self.topology = self._build_topology()
        self.cluster = Cluster(
            self.env, self.topology, self.streams,
            partitions_per_dc=config.partitions_per_dc,
            mastership=config.mastership,
            storage_service_ms=config.storage_service_ms,
            storage_service_overrides=config.storage_service_overrides,
            round_timeout_ms=config.round_timeout_ms,
            mode=config.mode)
        # The Items table is uniform, so rows materialize lazily on
        # first touch — 200 000-item tables cost nothing up front.
        self.cluster.set_default_stock(config.initial_stock)
        self.pattern = self._build_pattern()
        self.factory = BuyTransactionFactory(
            self.pattern, min_items=config.min_items,
            max_items=config.max_items)
        self.statistics = StatisticsService(
            self.env, self.cluster, self.streams,
            bin_ms=config.bin_ms, n_bins=config.n_bins)
        self.model: Optional[CommitLikelihoodModel] = None
        self.model_refreshes = 0
        self.sessions: List[PlanetSession] = []
        self._issuer = self._build_issuer()

    # -- assembly ------------------------------------------------------------

    def _build_topology(self) -> Topology:
        config = self.config
        if config.topology == "ec2":
            return ec2_five_dc(sigma=config.sigma,
                               spike_prob=config.spike_prob)
        if config.topology == "uniform":
            return uniform_topology(
                config.n_datacenters, one_way_ms=config.uniform_one_way_ms,
                sigma=config.sigma, spike_prob=config.spike_prob)
        raise ValueError(f"unknown topology {config.topology!r}")

    def _build_pattern(self):
        config = self.config
        if config.zipf_s is not None:
            if config.hotspot_size is not None:
                raise ValueError("choose either zipf_s or hotspot_size")
            return ZipfianAccess(config.n_items, s=config.zipf_s)
        if config.hotspot_size is None:
            return UniformAccess(config.n_items)
        return HotspotAccess(config.n_items, config.hotspot_size,
                             hot_prob=config.hot_prob)

    def _build_issuer(self):
        config = self.config
        n_dc = len(self.topology)
        if config.system == "planet":
            self.sessions = [
                PlanetSession(self.cluster, f"planet-{dc}", dc,
                              admission=config.admission,
                              statistics=self.statistics)
                for dc in range(n_dc)
            ]
            return _PlanetIssuer(self, self.sessions)
        if config.system == "traditional":
            clients = [
                TraditionalClient(self.cluster, f"trad-{dc}", dc)
                for dc in range(n_dc)
            ]
            return _TraditionalIssuer(self, clients)
        raise ValueError(f"unknown system {config.system!r}")

    def _prepare_oracle_model(self) -> None:
        """Build the oracle model before the run starts.

        The latency matrix comes straight from the topology and the
        size distribution from the configured workload (uniform over
        [min_items, max_items]), so the model is valid from t=0 —
        matching a deployed system whose statistics have converged
        before the measured window, and avoiding a warmup period in
        which admission control is blind and floods the hotspot.
        """
        config = self.config
        matrix = OracleLatencySource(
            self.topology, self.streams, samples=config.oracle_samples,
            bin_ms=config.bin_ms, n_bins=config.n_bins).latency_matrix()
        sizes = range(config.min_items, config.max_items + 1)
        self.model = CommitLikelihoodModel(
            matrix, self.cluster.mastership.leader_distribution(),
            size_distribution={size: 1.0 for size in sizes},
            mode=config.mode,
            collision_probability=(config.fast_collision_probability
                                   if config.mode == "fast" else 0.0))
        self.model.precompute()
        for session in self.sessions:
            session.model = self.model

    def _prepare_measured_model(self) -> None:
        """Build the model from the statistics gathered during warmup.

        The first call is always a full reference build; refresh-loop
        calls reuse it incrementally unless the config opts out.
        """
        self.model = self.statistics.build_model(
            fallback=self.topology,
            incremental=self.config.model_refresh_incremental)
        for session in self.sessions:
            session.model = self.model

    def _prepare_distributed_models(self) -> None:
        """Per-DC models from each data center's dissemination agent."""
        for session in self.sessions:
            agent = self._agents[session.datacenter]
            session.model = agent.build_model(fallback=self.topology)
        self.model = self.sessions[0].model if self.sessions else None

    def _refresh_loop(self, rebuild, interval_ms: float):
        """Periodically rebuild models from the aging statistics."""
        while True:
            yield self.env.timeout(interval_ms)
            rebuild()
            self.model_refreshes += 1

    def _arrivals(self, rate_tps: float,
                  modulation: Optional[RateModulation]):
        """Poisson arrivals, wrapped when a rate shape is configured."""
        arrivals = PoissonArrivals(rate_tps)
        if modulation is None:
            return arrivals
        return ModulatedArrivals(arrivals, modulation)

    def _build_load(self):
        """The configured load engine (see ``load_engine``)."""
        config = self.config
        if config.tenants is not None:
            if config.load_engine != "per-client":
                raise ValueError(
                    "tenant workloads require the per-client engine")
            names = [tenant.name for tenant in config.tenants]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate tenant names in {names}")
            return _MultiLoad([
                OpenSystemLoad(
                    self.env, self.factory, self._issuer,
                    tenant.rate_tps, self.streams,
                    name=f"{config.name}-{tenant.name}",
                    arrivals=self._arrivals(tenant.rate_tps,
                                            tenant.modulation),
                    read_fraction=tenant.read_fraction)
                for tenant in config.tenants
            ])
        arrivals = self._arrivals(config.rate_tps, config.modulation)
        if config.load_engine == "per-client":
            return OpenSystemLoad(self.env, self.factory, self._issuer,
                                  config.rate_tps, self.streams,
                                  name=config.name,
                                  arrivals=arrivals,
                                  read_fraction=config.read_fraction)
        if config.load_engine in ("aggregate", "aggregate-vectorized"):
            mode = ("exact" if config.load_engine == "aggregate"
                    else "vectorized")
            return AggregateLoad(self.env, self.factory, self._issuer,
                                 config.rate_tps, self.streams,
                                 name=config.name,
                                 arrivals=arrivals,
                                 read_fraction=config.read_fraction,
                                 mode=mode,
                                 batch_size=config.load_batch_size,
                                 use_timer_lane=config.load_timer_lane,
                                 population=config.load_population)
        raise ValueError(f"unknown load engine {config.load_engine!r}")

    # -- execution -----------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Warmup, measure, drain; returns the collected metrics."""
        config = self.config
        wants_model = config.wants_model() and config.system == "planet"
        if wants_model and config.stats_mode == "measured":
            for dc in range(len(self.topology)):
                self.statistics.start_agent(
                    dc, ping_interval_ms=config.ping_interval_ms)
        elif wants_model and config.stats_mode == "distributed":
            from repro.core.dissemination import DisseminationService
            self.dissemination = DisseminationService(
                self.env, self.cluster, self.streams,
                bin_ms=config.bin_ms, n_bins=config.n_bins)
            self._agents = {
                dc: self.dissemination.start_agent(
                    dc, ping_interval_ms=config.ping_interval_ms)
                for dc in range(len(self.topology))
            }
        elif wants_model and config.stats_mode == "oracle":
            # Converged statistics from the start: admission control
            # and speculation are active during warmup too.
            self._prepare_oracle_model()
        elif wants_model:
            raise ValueError(f"unknown stats_mode {config.stats_mode!r}")

        if config.faults is not None:
            # Environment script: injection processes ride the same
            # kernel, firing at their scheduled virtual times.
            config.faults.apply(self.cluster)
        load = self._build_load()
        total = config.warmup_ms + config.duration_ms
        load.start(duration_ms=total)

        # Warmup heats the access-rate buckets and the contention
        # equilibrium; in measured mode the model is built from the
        # statistics at the end of warmup.
        self.env.run(until=config.warmup_ms)
        if wants_model and config.stats_mode == "measured":
            self._prepare_measured_model()
            if config.model_refresh_ms:
                self.env.process(self._refresh_loop(
                    self._prepare_measured_model, config.model_refresh_ms))
        elif wants_model and config.stats_mode == "distributed":
            self._prepare_distributed_models()
            if config.model_refresh_ms:
                self.env.process(self._refresh_loop(
                    self._prepare_distributed_models,
                    config.model_refresh_ms))
        self.env.run(until=total)
        load.stop()
        # Drain: let in-flight transactions decide so records are final.
        self.env.run(until=total + config.drain_ms)

        collector = MetricsCollector(config.warmup_ms, total)
        likelihoods: List[float] = []
        self._issuer.finalize(collector, likelihoods)
        obs_artifacts = None
        if self.obs_session is not None:
            self.obs_session.detach(self.env)
            obs_artifacts = self.obs_session.artifacts(meta={
                "source": "experiment", "name": config.name,
                "seed": config.seed, "system": config.system})
        return ExperimentResult(
            config=config, metrics=collector,
            initial_likelihoods=likelihoods,
            read_latencies_ms=list(self._issuer.read_latencies_ms),
            obs=obs_artifacts)
