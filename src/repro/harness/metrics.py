"""Deprecated location: moved to :mod:`repro.obs.txmetrics`.

The per-transaction records and figure series now live in the unified
observability layer; this module remains as an import-compatibility
shim.  New code should import from ``repro.obs`` directly.
"""

from repro.obs.txmetrics import MetricsCollector, TxRecord

__all__ = ["MetricsCollector", "TxRecord"]
