"""Sharded experiment execution: split clients, run kernels, merge.

The million-user configs are *open systems*: every arrival is an
independent client, so an experiment at rate R with population P is
statistically the union of S experiments at rate R/S with population
P/S each — and those S shards can run as separate kernels in separate
processes on the persistent :class:`~repro.harness.parallel.
WorkerPool`.  This module owns the three pieces that make that safe:

``shard_configs``
    Deterministically partitions one :class:`ExperimentConfig` into
    per-shard configs — rate and ``load_population`` split evenly,
    each shard on a seed derived from ``(seed, shard, shards)`` so no
    two shards share a random stream.  One shard passes the config
    through verbatim: ``run_sharded(config, 1)`` is exactly
    ``Experiment(config).run()``.

``merge_results``
    Order-preserving deterministic merge of the per-shard results:
    transaction records interleave by issue time (stable in shard
    order on exact ties), scalar series concatenate in shard order,
    and obs metric dumps combine (counters and histogram buckets sum,
    gauges take the max).  Merging is pure data-plumbing — no RNG, no
    floating-point reassociation on records — so the merged result is
    byte-identical no matter where or in what order the shards ran.
    The serial-vs-pooled equivalence tests pin that.

``run_sharded``
    The driver: shard, fan out via :func:`~repro.harness.parallel.
    run_experiments` (per-shard results cross process boundaries in
    the columnar codec), merge.

Note what sharding deliberately does **not** promise: a 4-shard run
is not sample-for-sample identical to the 1-shard run — the shards
draw from different streams by construction.  The determinism
guarantee is that any given shard decomposition produces one exact
answer, serial or pooled, on any worker count.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
)
from repro.harness.parallel import WorkerPool, run_experiments
from repro.obs.txmetrics import MetricsCollector, TxRecord


def split_evenly(total: int, parts: int) -> List[int]:
    """Partition ``total`` into ``parts`` near-equal integers (first
    ``total % parts`` parts get the extra unit)."""
    if parts < 1:
        raise ValueError(f"parts {parts} must be >= 1")
    base, extra = divmod(total, parts)
    return [base + 1 if index < extra else base for index in range(parts)]


def derive_shard_seed(seed: int, shard: int, shards: int) -> int:
    """Deterministic seed for one shard of a sharded run.

    Mixes the parent seed with the shard coordinates so (a) no two
    shards of one run share a stream, and (b) the same decomposition
    always lands on the same seeds — re-running shard 2 of 4
    reproduces it exactly.
    """
    mixed = (seed * 1_000_003 + shards * 10_007 + shard * 7_919 + 12_289)
    return mixed & 0x7FFFFFFF


def shard_configs(config: ExperimentConfig,
                  shards: int) -> List[ExperimentConfig]:
    """Split one experiment config into ``shards`` independent slices.

    With ``shards == 1`` the config passes through verbatim (same
    object), pinning ``run_sharded(config, 1)`` to the plain run.
    """
    if shards < 1:
        raise ValueError(f"shards {shards} must be >= 1")
    if shards == 1:
        return [config]
    populations = split_evenly(config.load_population, shards)
    rate = config.rate_tps / shards
    return [
        replace(
            config,
            name=f"{config.name}#s{index}of{shards}",
            seed=derive_shard_seed(config.seed, index, shards),
            rate_tps=rate,
            load_population=populations[index],
            # Tenants are open systems too: each shard carries every
            # tenant at 1/shards of its rate (mix and shape intact).
            tenants=(None if config.tenants is None else tuple(
                replace(tenant, rate_tps=tenant.rate_tps / shards)
                for tenant in config.tenants)),
        )
        for index in range(shards)
    ]


def _merge_metric_dumps(dumps: Sequence[Dict[str, object]],
                        ) -> Dict[str, object]:
    """Combine per-shard MetricsRegistry dumps into one.

    Counters and histogram bucket vectors sum; gauges (point-in-time,
    last-write-wins within a shard) take the max across shards, which
    is the honest aggregate for the high-water marks they track.
    """
    counters: Dict[str, Dict[str, float]] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for dump in dumps:
        for name, series in dump["counters"].items():  # type: ignore[union-attr]
            out = counters.setdefault(name, {})
            for label, value in series.items():
                out[label] = out.get(label, 0.0) + value
        for name, series in dump["gauges"].items():  # type: ignore[union-attr]
            out = gauges.setdefault(name, {})
            for label, value in series.items():
                out[label] = max(out.get(label, value), value)
        for name, histogram in dump["histograms"].items():  # type: ignore[union-attr]
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(histogram["bounds"]),
                    "series": {label: dict(data, buckets=list(
                        data["buckets"]))
                        for label, data in histogram["series"].items()},
                }
                continue
            if merged["bounds"] != list(histogram["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bounds differ across shards")
            out_series = merged["series"]
            for label, data in histogram["series"].items():
                target = out_series.get(label)
                if target is None:
                    out_series[label] = dict(
                        data, buckets=list(data["buckets"]))
                    continue
                both = target["count"] and data["count"]
                target["min"] = (min(target["min"], data["min"]) if both
                                 else target["min"] or data["min"])
                target["max"] = (max(target["max"], data["max"]) if both
                                 else target["max"] or data["max"])
                target["count"] += data["count"]
                target["sum"] += data["sum"]
                target["buckets"] = [a + b for a, b in zip(
                    target["buckets"], data["buckets"])]
    return {
        "counters": {name: dict(sorted(series.items()))
                     for name, series in sorted(counters.items())},
        "gauges": {name: dict(sorted(series.items()))
                   for name, series in sorted(gauges.items())},
        "histograms": dict(sorted(histograms.items())),
    }


def merge_results(config: ExperimentConfig,
                  results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Deterministic order-preserving merge of per-shard results.

    Records interleave by ``issued_ms`` (each shard's records are
    already issue-ordered; ``heapq.merge`` is stable, so exact ties
    resolve in shard order).  Scalar series concatenate in shard
    order.  Obs artifacts merge when every shard carried them:
    metric dumps combine via :func:`_merge_metric_dumps`, spans
    concatenate in shard order.
    """
    if not results:
        raise ValueError("no shard results to merge")
    if len(results) == 1:
        return results[0]
    first = results[0].metrics
    for result in results:
        window = (result.metrics.window_start_ms,
                  result.metrics.window_end_ms)
        if window != (first.window_start_ms, first.window_end_ms):
            raise ValueError(
                f"shard windows disagree: {window} vs "
                f"{(first.window_start_ms, first.window_end_ms)}")
    collector = MetricsCollector(first.window_start_ms,
                                 first.window_end_ms)
    merged: List[TxRecord] = list(heapq.merge(
        *(result.metrics.all_records for result in results),
        key=lambda record: record.issued_ms))
    collector.all_records = merged
    obs: Optional[Dict[str, object]] = None
    if all(result.obs is not None for result in results):
        meta = dict(results[0].obs["meta"])  # type: ignore[index, arg-type]
        meta["name"] = config.name
        meta["seed"] = config.seed
        meta["shards"] = len(results)
        spans: List[object] = []
        for result in results:
            spans.extend(result.obs["spans"])  # type: ignore[index, arg-type]
        obs = {
            "version": results[0].obs["version"],  # type: ignore[index]
            "meta": meta,
            "metrics": _merge_metric_dumps(
                [result.obs["metrics"]  # type: ignore[index, misc]
                 for result in results]),
            "spans": spans,
        }
    return ExperimentResult(
        config=config,
        metrics=collector,
        initial_likelihoods=[value for result in results
                             for value in result.initial_likelihoods],
        read_latencies_ms=[value for result in results
                           for value in result.read_latencies_ms],
        obs=obs)


def run_sharded(config: ExperimentConfig, shards: int,
                pool: Optional[WorkerPool] = None,
                processes: Optional[int] = None) -> ExperimentResult:
    """Run ``config`` as ``shards`` independent slices and merge.

    ``pool``/``processes`` select the execution vehicle exactly as in
    :func:`run_experiments`; ``processes=1`` (or a pool with one
    effective worker) runs the shards serially in-process, producing
    a byte-identical result — the equivalence tests pin that.
    """
    configs = shard_configs(config, shards)
    if len(configs) == 1 and pool is None and processes is None:
        return Experiment(config).run()
    results = run_experiments(configs, processes=processes, pool=pool)
    if len(results) == 1:
        return results[0]
    return merge_results(config, results)
