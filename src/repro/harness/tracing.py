"""Deprecated location: moved to :mod:`repro.obs.txtrace`.

The per-transaction timeline tracer now lives in the unified
observability layer; this module remains as an import-compatibility
shim.  New code should import from ``repro.obs.txtrace`` directly.
"""

from repro.obs.txtrace import TraceEvent, TransactionTrace, TransactionTracer

__all__ = ["TraceEvent", "TransactionTrace", "TransactionTracer"]
