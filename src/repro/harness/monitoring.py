"""Deprecated location: moved to :mod:`repro.obs.monitor`.

The cluster-health snapshot/monitor now lives in the unified
observability layer; this module remains as an import-compatibility
shim.  New code should import from ``repro.obs.monitor`` directly.
"""

from repro.obs.monitor import ClusterSnapshot, HealthMonitor, snapshot

__all__ = ["ClusterSnapshot", "HealthMonitor", "snapshot"]
