"""Plain-text tables for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: Optional[str] = None) -> None:
    print()
    print(format_table(headers, rows, title=title))
    print()


def render_bars(labels: Sequence[str], values: Sequence[float],
                width: int = 50, title: Optional[str] = None,
                unit: str = "") -> str:
    """A horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{str(label).rjust(label_width)} | "
                     f"{bar} {_format_cell(float(value))}{unit}")
    return "\n".join(lines)


def render_curves(points: Sequence[float],
                  curves: "dict[str, Sequence[float]]",
                  width: int = 60, height: int = 16,
                  title: Optional[str] = None) -> str:
    """Plot y(x) curves (e.g. CDFs) as an ASCII grid.

    Each curve gets a distinct glyph; curves share the y-range
    [0, max], x positions follow the order of ``points``.
    """
    if not points or not curves:
        raise ValueError("nothing to plot")
    glyphs = "*o+x@%&$"
    peak = max(max(values) for values in curves.values()) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(sorted(curves.items())):
        if len(values) != len(points):
            raise ValueError(f"curve {name!r} length mismatch")
        glyph = glyphs[index % len(glyphs)]
        for i, value in enumerate(values):
            x = int(i * (width - 1) / max(len(points) - 1, 1))
            y = height - 1 - int(round((height - 1) * value / peak))
            grid[y][x] = glyph
    lines = [title] if title else []
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: {points[0]} .. {points[-1]}   y: 0 .. "
                 f"{_format_cell(float(peak))}")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}"
                        for i, name in enumerate(sorted(curves)))
    lines.append(f" {legend}")
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
