"""Deterministic parallel fan-out for independent simulation runs.

Every paper figure is a sweep of independent ``(config, seed)`` runs,
and the fuzzer's seed sweeps are hundreds of them — embarrassingly
parallel work.  This module shards such runs across a persistent
``multiprocessing`` pool while keeping the one property everything
downstream depends on: **the result list is exactly what the serial
loop would have produced**, in the same order, byte for byte.

That guarantee is cheap to give because each run builds its own
:class:`~repro.sim.Environment` and :class:`~repro.sim.RandomStreams`
from its config — no state crosses run boundaries, so neither worker
scheduling nor completion order can perturb a result.  The merge is
order-*independent* by construction: results are reassembled by input
position, never by arrival time.

Three lessons from the committed baseline (which showed parallel at
0.94× serial) shaped the architecture:

* **Pool sizing respects the cgroup, not the box.**  The baseline ran
  ``pool=4`` on a container with 1 visible CPU — four workers taking
  turns on one core, paying fork and pickle for nothing.
  :func:`default_pool_size` now asks ``os.sched_getaffinity`` (the
  CPUs this process may actually run on) and
  :func:`parallel_map` caps at that; an effective pool of 1 degrades
  to the plain serial loop with zero multiprocessing overhead.
* **The pool persists across sweep points.**  :class:`WorkerPool`
  forks once and is reused for every ``map`` call of a sweep, so
  worker startup (interpreter fork, module imports, any broadcast
  context) is paid once per sweep instead of once per point.
* **Results cross the process boundary as columns.**  A figure run
  carries thousands of per-transaction records; re-pickling them as
  dataclass object graphs dominates transfer time.  The codec below
  flattens records into homogeneous numpy columns (one array per
  field, masks for the optionals) and rebuilds byte-identical
  dataclasses on the parent side.

Work distribution is self-balancing: tasks are dispatched one at a
time (``imap_unordered``), so an idle worker always steals the next
pending task instead of being stuck behind a static shard, and an
optional cost hint submits the predicted-longest runs first (LPT
scheduling) so a big run never starts last and overhangs the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
)
from repro.obs.txmetrics import MetricsCollector, TxRecord

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


#: cgroup-v2 CPU controller file; ``_cgroup_cpu_quota`` parses it.
_CPU_MAX_PATH = "/sys/fs/cgroup/cpu.max"


def _cgroup_cpu_quota(path: str = _CPU_MAX_PATH) -> Optional[float]:
    """CPU quota in cores from the cgroup-v2 ``cpu.max`` file.

    The file holds ``"$QUOTA $PERIOD"`` in microseconds, or ``"max"``
    for unlimited.  Returns ``quota / period`` (e.g. ``2.0`` for a
    container capped at two CPUs of time), or ``None`` when there is
    no limit, no file (cgroup v1, non-Linux), or unparsable content.
    """
    try:
        with open(path, "r", encoding="ascii") as stream:
            fields = stream.read().split()
    except (OSError, UnicodeDecodeError):
        return None
    if not fields or fields[0] == "max":
        return None
    try:
        quota = int(fields[0])
        period = int(fields[1]) if len(fields) > 1 else 100_000
    except (ValueError, IndexError):
        return None
    if quota <= 0 or period <= 0:
        return None
    return quota / period


def effective_cpu_count() -> int:
    """CPUs this process may actually burn (affinity ∧ cgroup quota).

    In a container pinned to one core, ``os.cpu_count()`` happily
    reports the host's core count — sizing a pool from it is how the
    old baseline ended up benchmarking a 4-worker pool on 1 CPU.  The
    affinity mask catches cpuset-style pinning; the cgroup-v2
    ``cpu.max`` quota catches time-share limits (``--cpus=2`` on a
    64-core host leaves the mask at 64 but the quota at 2.0).  The
    quota floors to whole workers, never below one.
    """
    try:
        usable = len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux or restricted
        usable = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        usable = min(usable, max(1, int(quota)))
    return usable


def default_pool_size() -> int:
    """Worker count: ``PLANET_POOL`` if set, else one per usable CPU."""
    override = os.environ.get("PLANET_POOL", "").strip()
    if override:
        return max(1, int(override))
    return effective_cpu_count()


# -- persistent worker pool ----------------------------------------------

#: Broadcast context installed in each worker by the pool initializer
#: (one pickle per worker at fork, instead of one per task).
_worker_context: Any = None


def _init_worker(context: Any) -> None:
    global _worker_context
    _worker_context = context


def worker_context() -> Any:
    """The context broadcast by :class:`WorkerPool` (None if unset)."""
    return _worker_context


def _call_indexed(task: Tuple[Callable, int, Any]) -> Tuple[int, Any]:
    fn, index, item = task
    return index, fn(item)


class WorkerPool:
    """A process pool forked once and reused across ``map`` calls.

    ``processes`` is capped at the affinity mask unless
    ``oversubscribe=True`` (useful for correctness tests on single-CPU
    hosts, pointless for performance).  An effective pool of 1 never
    forks: ``map`` runs the plain serial loop, and any ``context`` is
    installed in-process so worker functions behave identically.

    Use as a context manager, or call :meth:`close` when the sweep is
    done.
    """

    def __init__(self, processes: Optional[int] = None,
                 context: Any = None,
                 oversubscribe: bool = False):
        requested = (default_pool_size() if processes is None
                     else max(1, int(processes)))
        if not oversubscribe:
            requested = min(requested, effective_cpu_count())
        self.processes = requested
        self.context = context
        self._pool = None
        if self.processes > 1:
            try:
                self._pool = multiprocessing.Pool(
                    self.processes, initializer=_init_worker,
                    initargs=(context,))
            except OSError:
                # No pool available here (e.g. sandboxed CI without a
                # usable /dev/shm): degrade to the serial loop.
                self.processes = 1
        if self._pool is None and context is not None:
            _init_worker(context)

    @property
    def effective(self) -> int:
        """Workers actually running tasks (1 = serial fallback)."""
        return self.processes if self._pool is not None else 1

    def map(self, fn: Callable[[_Item], _Result],
            items: Sequence[_Item],
            on_result: Optional[Callable[[_Result], None]] = None,
            cost_hint: Optional[Callable[[_Item], float]] = None,
            ) -> List[_Result]:
        """``[fn(item) for item in items]``, work-stealing, input order.

        Tasks are dispatched one at a time, so whichever worker frees
        up first takes the next pending task (skewed run lengths never
        idle the pool behind a static shard).  With ``cost_hint``,
        items are *submitted* longest-first (LPT): the predicted
        stragglers start immediately instead of overhanging the end of
        the sweep.  Neither affects results: they are reassembled by
        input position, and ``on_result`` streams them in input order.
        """
        items = list(items)
        if self._pool is None or len(items) <= 1:
            results: List[_Result] = []
            for item in items:
                result = fn(item)
                if on_result is not None:
                    on_result(result)
                results.append(result)
            return results
        order = list(range(len(items)))
        if cost_hint is not None:
            # Stable LPT: ties keep input order, so submission order —
            # and therefore everything — is deterministic.
            order.sort(key=lambda i: (-cost_hint(items[i]), i))
        tasks = [(fn, i, items[i]) for i in order]
        slots: List[Any] = [None] * len(items)
        done = [False] * len(items)
        emitted = 0
        for index, value in self._pool.imap_unordered(
                _call_indexed, tasks, chunksize=1):
            slots[index] = value
            done[index] = True
            while emitted < len(items) and done[emitted]:
                if on_result is not None:
                    on_result(slots[emitted])
                emitted += 1
        return slots

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self.processes = 1

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_map(fn: Callable[[_Item], _Result],
                 items: Sequence[_Item],
                 processes: Optional[int] = None,
                 chunksize: int = 1,
                 on_result: Optional[Callable[[_Result], None]] = None,
                 ) -> List[_Result]:
    """One-shot :meth:`WorkerPool.map` (pool built and torn down here).

    Results come back in input order regardless of which worker
    finishes first; ``on_result`` (progress reporting) is likewise
    invoked in input order, as ordered results stream in.  ``fn`` and
    the items must be picklable (``fn`` a module-level function).

    ``chunksize`` is accepted for backward compatibility; dispatch is
    always per-item (simulation runs are seconds each, so fine-grained
    stealing beats chunked sharding whenever run times vary).
    """
    items = list(items)
    if processes is None:
        processes = default_pool_size()
    # A pool wider than min(jobs, usable CPUs) buys nothing for
    # CPU-bound single-threaded workers; when only one worker would
    # run, skip the fork entirely.
    processes = min(processes, len(items), effective_cpu_count())
    with WorkerPool(processes) as pool:
        return pool.map(fn, items, on_result=on_result)


# -- columnar result transfer --------------------------------------------

#: TxRecord fields by wire representation.  Optional floats travel as a
#: float column plus a presence mask (no NaN punning — a genuine NaN
#: value would round-trip exactly either way, but masks make absence
#: unambiguous).  Optional strings travel as codes into a small
#: vocabulary (outcome/stage names repeat across thousands of records).
_FLOAT_COLS = ("issued_ms", "timeout_ms")
_OPT_FLOAT_COLS = ("accepted_ms", "decided_ms", "spec_ms", "stage_fired_ms")
_BOOL_COLS = ("hot", "admitted", "spec_incorrect")
_STR_COLS = ("system", "app_outcome", "stage_fired")


def encode_records(records: Sequence[TxRecord]) -> Dict[str, Any]:
    """Flatten records into homogeneous numpy columns for transfer."""
    import numpy as np

    n = len(records)
    columns: Dict[str, Any] = {}
    for name in _FLOAT_COLS:
        columns[name] = np.fromiter(
            (getattr(r, name) for r in records), dtype=np.float64, count=n)
    for name in _OPT_FLOAT_COLS:
        values = [getattr(r, name) for r in records]
        mask = np.fromiter((v is not None for v in values),
                           dtype=bool, count=n)
        columns[name] = np.fromiter(
            (v if v is not None else 0.0 for v in values),
            dtype=np.float64, count=n)
        columns[name + "?"] = mask
    for name in _BOOL_COLS:
        columns[name] = np.fromiter(
            (getattr(r, name) for r in records), dtype=bool, count=n)
    columns["size"] = np.fromiter(
        (r.size for r in records), dtype=np.int64, count=n)
    # committed is a tri-state: None / False / True -> -1 / 0 / 1.
    columns["committed"] = np.fromiter(
        ((-1 if r.committed is None else int(r.committed))
         for r in records), dtype=np.int8, count=n)
    vocab: Dict[str, List[Optional[str]]] = {}
    for name in _STR_COLS:
        words: List[Optional[str]] = [None]
        index: Dict[Optional[str], int] = {None: 0}
        codes = np.empty(n, dtype=np.int32)
        for j, record in enumerate(records):
            value = getattr(record, name)
            code = index.get(value)
            if code is None:
                code = len(words)
                index[value] = code
                words.append(value)
            codes[j] = code
        vocab[name] = words
        columns[name] = codes
    return {"n": n, "columns": columns, "vocab": vocab}


def decode_records(payload: Dict[str, Any]) -> List[TxRecord]:
    """Rebuild byte-identical :class:`TxRecord` objects from columns."""
    n = payload["n"]
    columns = payload["columns"]
    vocab = payload["vocab"]
    lists: Dict[str, list] = {}
    for name in _FLOAT_COLS:
        lists[name] = columns[name].tolist()
    for name in _OPT_FLOAT_COLS:
        values = columns[name].tolist()
        lists[name] = [value if present else None for value, present
                       in zip(values, columns[name + "?"].tolist())]
    for name in _BOOL_COLS:
        lists[name] = columns[name].tolist()
    lists["size"] = columns["size"].tolist()
    lists["committed"] = [None if code < 0 else bool(code)
                          for code in columns["committed"].tolist()]
    for name in _STR_COLS:
        words = vocab[name]
        lists[name] = [words[code] for code in columns[name].tolist()]
    fields = list(lists)
    rows = zip(*(lists[name] for name in fields))
    return [TxRecord(**dict(zip(fields, row))) for row in rows]


def encode_result(result: ExperimentResult) -> Dict[str, Any]:
    """``ExperimentResult`` -> columnar wire payload (picklable)."""
    import numpy as np

    collector = result.metrics
    return {
        "config": result.config,
        "window": (collector.window_start_ms, collector.window_end_ms),
        "records": encode_records(collector.all_records),
        "initial_likelihoods": np.asarray(
            result.initial_likelihoods, dtype=np.float64),
        "read_latencies_ms": np.asarray(
            result.read_latencies_ms, dtype=np.float64),
        "obs": result.obs,
    }


def decode_result(payload: Dict[str, Any]) -> ExperimentResult:
    """Wire payload -> ``ExperimentResult`` equal to the original."""
    start, end = payload["window"]
    collector = MetricsCollector(start, end)
    collector.all_records = decode_records(payload["records"])
    return ExperimentResult(
        config=payload["config"],
        metrics=collector,
        initial_likelihoods=payload["initial_likelihoods"].tolist(),
        read_latencies_ms=payload["read_latencies_ms"].tolist(),
        obs=payload["obs"])


# -- experiment fan-out --------------------------------------------------

def _run_one(config: ExperimentConfig) -> ExperimentResult:
    """Worker body: one experiment, built and run in isolation."""
    return Experiment(config).run()


def _run_one_encoded(config: ExperimentConfig) -> Dict[str, Any]:
    """Worker body returning the columnar wire form (cheap pickle)."""
    return encode_result(Experiment(config).run())


def experiment_cost_hint(config: ExperimentConfig) -> float:
    """Predicted run weight for LPT submission: events ~ time × rate."""
    horizon = config.warmup_ms + config.duration_ms + config.drain_ms
    return horizon * max(config.rate_tps, 1.0)


def run_experiments(configs: Sequence[ExperimentConfig],
                    processes: Optional[int] = None,
                    on_result: Optional[
                        Callable[[ExperimentResult], None]] = None,
                    pool: Optional[WorkerPool] = None,
                    ) -> List[ExperimentResult]:
    """Run independent experiment configs, possibly in parallel.

    Equivalent to ``[Experiment(c).run() for c in configs]`` — the
    serial-vs-parallel equivalence tests compare metric digests byte
    for byte — but sharded across workers.  Pass a :class:`WorkerPool`
    to reuse one pool across many sweep points; otherwise a one-shot
    pool is sized from ``processes`` (default: the affinity mask).

    When a real pool runs, results cross the process boundary in
    columnar form and are rebuilt on the parent side; the serial path
    skips the codec entirely.
    """
    configs = list(configs)
    if pool is not None:
        if pool.effective <= 1:
            return pool.map(_run_one, configs, on_result=on_result)
        results: List[ExperimentResult] = []

        def _stream(payload: Dict[str, Any]) -> None:
            result = decode_result(payload)
            results.append(result)
            if on_result is not None:
                on_result(result)

        pool.map(_run_one_encoded, configs, on_result=_stream,
                 cost_hint=experiment_cost_hint)
        return results
    if processes is None:
        processes = default_pool_size()
    processes = min(processes, len(configs), effective_cpu_count())
    with WorkerPool(processes) as one_shot:
        return run_experiments(configs, on_result=on_result, pool=one_shot)
