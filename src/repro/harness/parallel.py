"""Deterministic parallel fan-out for independent simulation runs.

Every paper figure is a sweep of independent ``(config, seed)`` runs,
and the fuzzer's seed sweeps are hundreds of them — embarrassingly
parallel work that the harness previously executed strictly serially.
This module shards such runs across a ``multiprocessing`` pool while
keeping the one property everything downstream depends on: **the
result list is exactly what the serial loop would have produced**, in
the same order, byte for byte.

That guarantee is cheap to give because each run builds its own
:class:`~repro.sim.Environment` and :class:`~repro.sim.RandomStreams`
from its config — no state crosses run boundaries, so neither worker
scheduling nor completion order can perturb a result.  The merge is
order-*independent* by construction: results are reassembled by input
position (``Pool.imap`` preserves it), never by arrival time.

Pool sizing: pass ``processes`` explicitly, or set ``PLANET_POOL``;
the default is one worker per CPU.  The effective pool is always
capped at ``min(jobs, cpu_count)`` — extra CPU-bound workers on a
smaller machine only add fork and pickle overhead — and an effective
pool of 1 (single-CPU hosts, a single item, ``processes=1``) degrades
to the plain serial loop with zero multiprocessing overhead.  The same
serial fallback engages where worker pools cannot start (e.g.
sandboxed CI runners without a usable ``/dev/shm``).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.harness.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
)

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def default_pool_size() -> int:
    """Worker count: ``PLANET_POOL`` if set, else one per CPU."""
    override = os.environ.get("PLANET_POOL", "").strip()
    if override:
        return max(1, int(override))
    return os.cpu_count() or 1


def parallel_map(fn: Callable[[_Item], _Result],
                 items: Sequence[_Item],
                 processes: Optional[int] = None,
                 chunksize: int = 1,
                 on_result: Optional[Callable[[_Result], None]] = None,
                 ) -> List[_Result]:
    """``[fn(item) for item in items]`` sharded across worker processes.

    Results come back in input order regardless of which worker
    finishes first; ``on_result`` (progress reporting) is likewise
    invoked in input order, as ordered results stream in.  ``fn`` and
    the items must be picklable (``fn`` a module-level function).

    ``chunksize`` defaults to 1 because simulation runs are coarse
    (seconds each): per-item dispatch keeps the pool load-balanced
    when run times vary across configs.
    """
    items = list(items)
    if processes is None:
        processes = default_pool_size()
    # Workers are CPU-bound and single-threaded, so a pool wider than
    # the machine buys nothing; cap at min(jobs, cpus).  When only one
    # worker would run — a single-CPU host, or a single item — skip
    # the pool entirely: fork + pickle overhead would make the
    # "parallel" path strictly slower than the serial loop it must
    # match byte for byte anyway.
    processes = min(processes, len(items), os.cpu_count() or 1)
    if processes > 1:
        try:
            pool = multiprocessing.Pool(processes)
        except OSError:
            processes = 1  # no pool available here: run serially
    if processes <= 1:
        results: List[_Result] = []
        for item in items:
            result = fn(item)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    with pool:
        results = []
        for result in pool.imap(fn, items, chunksize=chunksize):
            if on_result is not None:
                on_result(result)
            results.append(result)
    return results


def _run_one(config: ExperimentConfig) -> ExperimentResult:
    """Worker body: one experiment, built and run in isolation."""
    return Experiment(config).run()


def run_experiments(configs: Sequence[ExperimentConfig],
                    processes: Optional[int] = None,
                    on_result: Optional[
                        Callable[[ExperimentResult], None]] = None,
                    ) -> List[ExperimentResult]:
    """Run independent experiment configs, possibly in parallel.

    Equivalent to ``[Experiment(c).run() for c in configs]`` — the
    serial-vs-parallel equivalence tests compare metric digests byte
    for byte — but sharded across ``processes`` workers.
    """
    return parallel_map(_run_one, configs, processes=processes,
                        on_result=on_result)
