"""Runtime yield-point atomicity sanitizer.

The static flow checkers (``repro.analysis.flow``) report *potential*
races: a ``self.*`` attribute that another handler may mutate while a
process is suspended at a yield.  This module supplies the dynamic
half of the workflow — an :class:`AtomicityGuard` that, installed on
an :class:`~repro.sim.kernel.Environment` via the kernel's
``process_wrapper`` hook, snapshots the guarded attributes of a
process's host object at every yield boundary and records an
:class:`AtomicityWitness` whenever the value actually changed while
the process was suspended.

Workflow: each static RACE finding becomes a :class:`GuardSpec`
(class name + attributes, tagged with the rule code); a fuzz sweep
with the guard installed either produces a witness (the race is real
— fix it) or stays silent across the sweep (suppress the finding with
``# repro: allow[RACE001]`` and cite the sweep).

The guard is observation-only: it draws no randomness, schedules no
events, and never perturbs the run — history digests are byte-for-byte
identical with and without it (pinned by ``tests/test_atomicity.py``).
"""

from __future__ import annotations

import reprlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.kernel import Environment

#: Bounded repr for snapshots: guarded attributes are often whole
#: dicts of in-flight transactions; witnesses must stay readable.
_repr = reprlib.Repr()
_repr.maxlevel = 3
_repr.maxdict = 8
_repr.maxlist = 8
_repr.maxstring = 80
_snapshot_repr = _repr.repr

#: Sentinel distinguishing "attribute missing" from any real value.
_ABSENT = object()


@dataclass(frozen=True)
class GuardSpec:
    """One static finding translated into a runtime watch.

    ``class_name`` matches the type name of the generator's ``self``;
    ``attrs`` are the attribute names the static rule flagged;
    ``rule`` is the originating diagnostic code (``RACE001``/
    ``RACE002``); ``origin`` is free-form provenance (typically the
    static diagnostic's ``path:line``).
    """

    class_name: str
    attrs: Tuple[str, ...]
    rule: str = "RACE001"
    origin: str = ""


@dataclass(frozen=True)
class AtomicityWitness:
    """One observed mutation of a guarded attribute across a yield."""

    rule: str
    class_name: str
    attr: str
    function: str
    time_suspended: float
    time_resumed: float
    before: str
    after: str
    origin: str = ""

    def format(self) -> str:
        return (f"[{self.rule}] {self.class_name}.{self.attr} changed "
                f"while {self.function}() was suspended "
                f"({self.time_suspended:g}ms -> {self.time_resumed:g}ms): "
                f"{self.before} -> {self.after}")


class AtomicityGuard:
    """Snapshots guarded fields at yield boundaries under fuzz runs.

    Install on an environment before building the system under test::

        guard = AtomicityGuard([GuardSpec("TransactionManager",
                                          ("_active",))])
        guard.install(env)
        ...build cluster, run...
        assert not guard.witnesses

    Only generators whose ``self`` is an instance of a guarded class
    pay any cost; everything else passes through untouched.
    """

    def __init__(self, specs: Iterable[GuardSpec]):
        self.specs: List[GuardSpec] = list(specs)
        self.witnesses: List[AtomicityWitness] = []
        self._by_class: Dict[str, List[GuardSpec]] = {}
        for spec in self.specs:
            self._by_class.setdefault(spec.class_name, []).append(spec)
        self._env: Optional[Environment] = None

    # -- lifecycle ---------------------------------------------------------

    def install(self, env: Environment) -> None:
        if env.process_wrapper is not None:
            raise RuntimeError("environment already has a process wrapper")
        self._env = env
        env.process_wrapper = self._wrap

    def detach(self, env: Environment) -> None:
        if env.process_wrapper is self._wrap:
            env.process_wrapper = None
        if self._env is env:
            self._env = None

    # -- wrapping ----------------------------------------------------------

    def _wrap(self, generator: Generator) -> Generator:
        frame = getattr(generator, "gi_frame", None)
        host = frame.f_locals.get("self") if frame is not None else None
        if host is None:
            return generator
        specs = self._by_class.get(type(host).__name__)
        if not specs:
            return generator
        return self._guarded(generator, host, specs)

    def _guarded(self, generator: Generator, host: Any,
                 specs: List[GuardSpec]) -> Generator:
        """Transparent shim: forwards send/throw/close and return
        values unchanged, snapshotting around each suspension."""
        env = self._env
        function = getattr(generator, "__name__", "<generator>")
        to_send: Any = None
        to_throw: Optional[BaseException] = None
        while True:
            try:
                if to_throw is not None:
                    pending, to_throw = to_throw, None
                    item = generator.throw(pending)
                else:
                    item = generator.send(to_send)
            except StopIteration as stop:
                return stop.value
            snapshot = self._snapshot(host, specs)
            suspended_at = env.now if env is not None else 0.0
            try:
                to_send = yield item
                to_throw = None
            except BaseException as caught:
                to_throw = caught
                to_send = None
            resumed_at = env.now if env is not None else 0.0
            self._compare(host, specs, snapshot, function,
                          suspended_at, resumed_at)

    # -- snapshots ---------------------------------------------------------

    @staticmethod
    def _snapshot(host: Any,
                  specs: List[GuardSpec]) -> Dict[Tuple[str, str], str]:
        snapshot: Dict[Tuple[str, str], str] = {}
        for spec in specs:
            for attr in spec.attrs:
                value = getattr(host, attr, _ABSENT)
                rendered = ("<absent>" if value is _ABSENT
                            else _snapshot_repr(value))
                snapshot[(spec.rule, attr)] = rendered
        return snapshot

    def _compare(self, host: Any, specs: List[GuardSpec],
                 snapshot: Dict[Tuple[str, str], str], function: str,
                 suspended_at: float, resumed_at: float) -> None:
        for spec in specs:
            for attr in spec.attrs:
                before = snapshot[(spec.rule, attr)]
                value = getattr(host, attr, _ABSENT)
                after = ("<absent>" if value is _ABSENT
                         else _snapshot_repr(value))
                if before != after:
                    self.witnesses.append(AtomicityWitness(
                        rule=spec.rule,
                        class_name=spec.class_name,
                        attr=attr,
                        function=function,
                        time_suspended=suspended_at,
                        time_resumed=resumed_at,
                        before=before,
                        after=after,
                        origin=spec.origin))

    # -- reporting ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return bool(self.witnesses)

    def report(self, limit: int = 20) -> str:
        lines = [f"{len(self.witnesses)} atomicity witness(es)"]
        lines.extend(w.format() for w in self.witnesses[:limit])
        if len(self.witnesses) > limit:
            lines.append(f"... {len(self.witnesses) - limit} more")
        return "\n".join(lines)


#: Guard specs mirroring the RACE-rule watchlist for the shipped
#: system: the coordinator's in-flight transaction table and the
#: storage node's mastership/round state are exactly the fields the
#: static rules would flag if a stale snapshot of them ever crossed a
#: yield.  Fuzzing with these installed keeps the dynamic half of the
#: static->dynamic workflow exercised even while the static sweep is
#: clean.
DEFAULT_SPECS: Tuple[GuardSpec, ...] = (
    GuardSpec("TransactionManager", ("_active",), rule="RACE001",
              origin="watchlist: coordinator in-flight table"),
    GuardSpec("StorageNode", ("_round_active", "_ballots"), rule="RACE002",
              origin="watchlist: storage mastership/round state"),
)


def default_guard() -> AtomicityGuard:
    """A guard watching the shipped system's race-prone state."""
    return AtomicityGuard(DEFAULT_SPECS)
