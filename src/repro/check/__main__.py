"""Command-line front end of the simulation-testing subsystem.

::

    python -m repro.check fuzz --seeds 100           # sweep seeds 0..99
    python -m repro.check fuzz --seeds 500 --out DIR # save failing traces
    python -m repro.check replay --seed 17           # one verbose run
    python -m repro.check list                       # invariant catalogue

``fuzz`` exits non-zero iff any seed produced an invariant violation;
each failure is shrunk (unless ``--no-shrink``) and reported as a
minimal fault schedule plus the implicated history events.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.check.invariants import CHECKS
from repro.check.runner import (
    CheckConfig,
    CheckResult,
    fuzz_sweep,
    run_check,
    shrink,
)


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    defaults = CheckConfig()
    parser.add_argument("--dcs", type=int, default=defaults.n_datacenters,
                        help="data centers (default %(default)s)")
    parser.add_argument("--partitions", type=int,
                        default=defaults.partitions_per_dc,
                        help="partitions per DC (default %(default)s)")
    parser.add_argument("--items", type=int, default=defaults.n_items,
                        help="table size (default %(default)s)")
    parser.add_argument("--txns", type=int, default=defaults.n_txns,
                        help="transactions per run (default %(default)s)")
    parser.add_argument("--faults", type=int, default=defaults.n_faults,
                        help="fault actions per run (default %(default)s)")
    parser.add_argument("--fault-kinds", type=str, default=None,
                        help="comma-separated subset of fault kinds "
                             "(default: all classic kinds; fast mode "
                             "adds 'collide')")
    parser.add_argument("--mode", choices=("classic", "fast"),
                        default=defaults.mode,
                        help="protocol mode for every run "
                             "(default %(default)s)")
    parser.add_argument("--scenario", type=str, default=None,
                        help="catalogue scenario (repro.scenarios) whose "
                             "fault program anchors every run; seeds "
                             "perturb its timings and intensities")


def _config_from(namespace: argparse.Namespace, seed: int) -> CheckConfig:
    if namespace.fault_kinds:
        kinds = tuple(namespace.fault_kinds.split(","))
    elif namespace.mode == "fast":
        # Fast-mode sweeps get the concurrent-proposer generator so
        # collisions and classic fallbacks are actually exercised.
        from repro.check.faults import FAST_KINDS
        kinds = FAST_KINDS
    else:
        kinds = CheckConfig().fault_kinds
    if namespace.scenario is not None:
        from repro.scenarios import get_scenario
        get_scenario(namespace.scenario)  # fail fast on unknown names
    return CheckConfig(seed=seed, n_datacenters=namespace.dcs,
                       partitions_per_dc=namespace.partitions,
                       n_items=namespace.items, n_txns=namespace.txns,
                       n_faults=namespace.faults, fault_kinds=kinds,
                       mode=namespace.mode, scenario=namespace.scenario)


def _save_trace(directory: str, result: CheckResult) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"seed-{result.config.seed}.trace")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(result.report())
        stream.write("\n\nfull history:\n")
        stream.write(result.history.format())
        stream.write("\n")
    return path


def _save_obs(directory: str, result: CheckResult) -> Optional[str]:
    """Re-run the (shrunk) failing config with observability installed
    and save the span/metric artifact next to the trace file.

    The re-run is byte-identical to the failing run (observability
    draws no randomness), so the artifact really shows the failure —
    ``python -m repro.obs export seed-N.obs.json`` turns it into a
    Perfetto-loadable trace.
    """
    observed = run_check(result.config, schedule=result.schedule,
                         observe=True)
    if observed.obs is None:
        return None
    path = os.path.join(directory,
                        f"seed-{result.config.seed}.obs.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(observed.obs, stream, sort_keys=True,
                  separators=(",", ":"))
        stream.write("\n")
    return path


def _cmd_fuzz(namespace: argparse.Namespace) -> int:
    base = _config_from(namespace, seed=0)
    seeds = range(namespace.start, namespace.start + namespace.seeds)
    checked = 0

    def progress(result: CheckResult) -> None:
        nonlocal checked
        checked += 1
        if not result.ok:
            print(f"seed {result.config.seed}: "
                  f"{len(result.violations)} violation(s)", flush=True)
        elif checked % 25 == 0:
            print(f"... {checked}/{namespace.seeds} seeds clean",
                  flush=True)

    witnesses = 0

    def progress_with_witnesses(result: CheckResult) -> None:
        nonlocal witnesses
        witnesses += int(result.stats.get("atomicity_witnesses", 0.0))
        progress(result)

    if namespace.jobs == 0:
        from repro.harness.parallel import default_pool_size
        namespace.jobs = default_pool_size()
    failures = fuzz_sweep(
        seeds, base,
        on_result=(progress_with_witnesses if namespace.atomicity
                   else progress),
        processes=namespace.jobs, atomicity=namespace.atomicity)
    if namespace.atomicity:
        # Witnesses are diagnostic, not failures: they show which
        # guarded fields actually mutated across suspensions, the
        # dynamic half of the static RACE workflow (docs/analysis.md).
        print(f"atomicity: {witnesses} cross-yield mutation witness(es) "
              f"on the guarded watchlist")
    if not failures:
        print(f"OK: {namespace.seeds} seeds, no invariant violations")
        return 0
    print(f"\nFAIL: {len(failures)}/{namespace.seeds} seeds violated "
          "invariants\n")
    for failure in failures:
        if namespace.no_shrink:
            final = failure
        else:
            shrunk = shrink(failure)
            final = shrunk.result
            print(f"seed {failure.config.seed}: shrunk to "
                  f"{final.config.n_txns} txn(s) / "
                  f"{len(final.schedule)} fault(s) "
                  f"in {shrunk.runs} runs")
        print(final.report())
        if namespace.out:
            path = _save_trace(namespace.out, final)
            print(f"trace written to {path}")
            obs_path = _save_obs(namespace.out, final)
            if obs_path:
                print(f"obs artifact written to {obs_path} "
                      f"(python -m repro.obs export {obs_path})")
        print()
    return 1


def _cmd_replay(namespace: argparse.Namespace) -> int:
    config = _config_from(namespace, seed=namespace.seed)
    result = run_check(config)
    print(f"seed {config.seed}: {int(result.stats['started'])} txns "
          f"({int(result.stats['committed'])} committed, "
          f"{int(result.stats['aborted'])} aborted), "
          f"{int(result.stats['events'])} events over "
          f"{result.stats['virtual_ms']:.0f} virtual ms")
    if "fast_chosen" in result.stats:
        print(f"fast path: {int(result.stats['fast_chosen'])} fast-learned, "
              f"{int(result.stats['fallbacks'])} fallback(s) "
              f"({int(result.stats['collisions'])} collision(s))")
    print(f"history digest: {result.history.digest()}")
    print("fault schedule:")
    print(result.schedule.describe())
    if namespace.events:
        print(result.history.format())
    if result.ok:
        print("OK: all invariants hold")
        return 0
    print(result.report())
    return 1


def _cmd_list(_namespace: argparse.Namespace) -> int:
    for code, (description, _checker) in CHECKS.items():
        print(f"{code}  {description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="fuzz the MDCC simulation against protocol invariants")
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz = commands.add_parser("fuzz", help="sweep seeds, check, shrink")
    fuzz.add_argument("--seeds", type=int, default=100,
                      help="number of seeds to run (default %(default)s)")
    fuzz.add_argument("--start", type=int, default=0,
                      help="first seed (default %(default)s)")
    fuzz.add_argument("--out", type=str, default=None,
                      help="directory for failing-trace files")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimizing them")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the sweep "
                           "(0 = one per CPU; default %(default)s)")
    fuzz.add_argument("--atomicity", action="store_true",
                      help="install the yield-point atomicity sanitizer "
                           "(repro.check.atomicity) in every run and "
                           "report cross-yield mutation witnesses")
    _add_config_flags(fuzz)
    fuzz.set_defaults(handler=_cmd_fuzz)

    replay = commands.add_parser("replay", help="run one seed verbosely")
    replay.add_argument("--seed", type=int, required=True)
    replay.add_argument("--events", action="store_true",
                        help="dump the full event history")
    _add_config_flags(replay)
    replay.set_defaults(handler=_cmd_replay)

    listing = commands.add_parser("list", help="show the invariants")
    listing.set_defaults(handler=_cmd_list)

    namespace = parser.parse_args(argv)
    return namespace.handler(namespace)


if __name__ == "__main__":
    sys.exit(main())
