"""Declarative fault schedules for the seed-sweep fuzzer.

A :class:`FaultSchedule` is a plain list of :class:`FaultAction`
records — *data*, not processes — so a failing run's schedule can be
printed, replayed verbatim, and shrunk action-by-action.  Applying a
schedule to a cluster spawns one kernel process per action that opens
the fault at ``at_ms`` and (for windowed kinds) closes it again at
``until_ms``.

Supported kinds and their ``args``:

``drop``       ``src_dc, dst_dc, prob`` — lossy directed link window
``spike``      ``src_dc, dst_dc, extra_ms`` — WAN latency spike window
``partition``  ``dc_a, dc_b`` — full bidirectional cut window
``crash``      ``address`` — fail-stop node outage window (state kept)
``transfer``   ``key, new_dc`` — instant mastership takeover attempt
``collide``    ``key, n_proposers`` — concurrent one-shot proposers
               racing the same record from distinct data centers (the
               fast-ballot collision generator; harmless noise under
               classic mode)

The *correlated* kinds below model whole-environment disturbances for
the scenario catalogue (``repro.scenarios``) — several links or nodes
move together, the way real WAN incidents behave, instead of the
i.i.d. single-link faults above:

``outage``       ``dc [, failover_keys, failover_dc, failover_after_ms,
                 stagger_ms]`` — full data-center crash: every storage
                 partition in ``dc`` goes down at once; after
                 ``failover_after_ms`` the listed keys' mastership is
                 transferred to ``failover_dc``; at ``until_ms`` the
                 partitions come back one by one, ``stagger_ms`` apart
                 (staggered recovery).
``brownout``     ``dcs, extra_ms`` — correlated RTT inflation: every
                 directed link between the listed data centers gains
                 ``extra_ms`` of one-way latency for the window.
``flappy_link``  ``src_dc, dst_dc, period_ms [, duty]`` — the link pair
                 is periodically cut and restored for the window:
                 down for ``duty`` of each period, up for the rest.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Sequence

from repro.mdcc.cluster import Cluster
from repro.storage.record import Update, WriteOp

KINDS = ("drop", "spike", "partition", "crash", "transfer")

#: The extended palette for fast-mode fuzzing.  ``collide`` is *not* in
#: the default KINDS: schedule sampling draws ``rng.randrange(len(kinds))``,
#: so growing the default palette would shift every classic golden
#: digest.  Fast-mode runs opt in explicitly.
FAST_KINDS = KINDS + ("collide",)

#: The correlated/windowed kinds of the scenario catalogue.  Like
#: ``collide`` they stay out of the default palette (golden digests);
#: scenario runs and ``--scenario`` fuzz legs opt in explicitly.
SCENARIO_KINDS = KINDS + ("outage", "brownout", "flappy_link")

#: Every kind any schedule may carry.
ALL_KINDS = FAST_KINDS + ("outage", "brownout", "flappy_link")


@dataclass(frozen=True)
class FaultAction:
    """One injected fault: what, when, and (if windowed) until when."""

    at_ms: float
    kind: str
    until_ms: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        window = ("" if self.until_ms is None
                  else f" until {self.until_ms:.0f}ms")
        parts = " ".join(f"{name}={self.args[name]}"
                         for name in sorted(self.args))
        return f"@{self.at_ms:.0f}ms {self.kind}{window} {parts}"


class FaultSchedule:
    """An ordered set of fault actions applied to one cluster run."""

    def __init__(self, actions: Sequence[FaultAction] = ()):
        self.actions = list(actions)
        for action in self.actions:
            if action.kind not in ALL_KINDS:
                raise ValueError(f"unknown fault kind {action.kind!r}")
        # Distinguishes the colliders of repeated apply() calls.
        self._collider_ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.actions)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with one action removed — the shrinker's move."""
        return FaultSchedule(self.actions[:index] + self.actions[index + 1:])

    def describe(self) -> str:
        if not self.actions:
            return "(no faults)"
        return "\n".join(f"  [{i}] {action.describe()}"
                         for i, action in enumerate(self.actions))

    # -- construction --------------------------------------------------------

    @classmethod
    def random(cls, rng: Random, n_faults: int, horizon_ms: float,
               n_datacenters: int, addresses: Sequence[str],
               keys: Sequence[str],
               kinds: Sequence[str] = KINDS) -> "FaultSchedule":
        """Sample a schedule within the workload window.

        Fault windows start inside [5%, 70%] of the horizon and always
        close before 90% of it, so the drain phase runs on a healed
        network and every run terminates.
        """
        if n_datacenters < 2:
            raise ValueError("fault injection needs at least two DCs")
        actions = []
        for _ in range(n_faults):
            kind = kinds[rng.randrange(len(kinds))]
            at_ms = rng.uniform(0.05, 0.70) * horizon_ms
            until_ms = min(at_ms + rng.uniform(0.02, 0.25) * horizon_ms,
                           0.90 * horizon_ms)
            if kind == "drop":
                src = rng.randrange(n_datacenters)
                dst = rng.randrange(n_datacenters)
                actions.append(FaultAction(at_ms, "drop", until_ms, {
                    "src_dc": src, "dst_dc": dst,
                    "prob": round(rng.uniform(0.05, 0.35), 3)}))
            elif kind == "spike":
                src = rng.randrange(n_datacenters)
                dst = rng.randrange(n_datacenters)
                actions.append(FaultAction(at_ms, "spike", until_ms, {
                    "src_dc": src, "dst_dc": dst,
                    "extra_ms": round(rng.uniform(50.0, 400.0), 1)}))
            elif kind == "partition":
                dc_a = rng.randrange(n_datacenters)
                dc_b = (dc_a + 1 + rng.randrange(n_datacenters - 1)) \
                    % n_datacenters
                actions.append(FaultAction(at_ms, "partition", until_ms, {
                    "dc_a": dc_a, "dc_b": dc_b}))
            elif kind == "crash":
                address = addresses[rng.randrange(len(addresses))]
                actions.append(FaultAction(at_ms, "crash", until_ms, {
                    "address": address}))
            elif kind == "transfer":
                key = keys[rng.randrange(len(keys))]
                actions.append(FaultAction(at_ms, "transfer", None, {
                    "key": key, "new_dc": rng.randrange(n_datacenters)}))
            elif kind == "collide":
                key = keys[rng.randrange(len(keys))]
                n_proposers = 2 + rng.randrange(
                    min(2, max(1, n_datacenters - 1)))
                actions.append(FaultAction(at_ms, "collide", None, {
                    "key": key, "n_proposers": n_proposers}))
            elif kind == "outage":
                dc = rng.randrange(n_datacenters)
                failover_dc = (dc + 1 + rng.randrange(n_datacenters - 1)) \
                    % n_datacenters
                count = 1 + rng.randrange(min(2, len(keys)))
                failover_keys = tuple(
                    keys[rng.randrange(len(keys))] for _ in range(count))
                actions.append(FaultAction(at_ms, "outage", until_ms, {
                    "dc": dc, "failover_dc": failover_dc,
                    "failover_keys": failover_keys,
                    "failover_after_ms": round(
                        rng.uniform(0.0, 0.05) * horizon_ms, 1),
                    "stagger_ms": round(rng.uniform(0.0, 30.0), 1)}))
            elif kind == "brownout":
                count = 2 + rng.randrange(max(n_datacenters - 1, 1))
                dcs = tuple(sorted(rng.sample(range(n_datacenters),
                                              min(count, n_datacenters))))
                actions.append(FaultAction(at_ms, "brownout", until_ms, {
                    "dcs": dcs,
                    "extra_ms": round(rng.uniform(100.0, 500.0), 1)}))
            elif kind == "flappy_link":
                src = rng.randrange(n_datacenters)
                dst = (src + 1 + rng.randrange(n_datacenters - 1)) \
                    % n_datacenters
                actions.append(FaultAction(at_ms, "flappy_link", until_ms, {
                    "src_dc": src, "dst_dc": dst,
                    "period_ms": round(rng.uniform(60.0, 240.0), 1),
                    "duty": round(rng.uniform(0.3, 0.7), 2)}))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        actions.sort(key=lambda action: (action.at_ms, action.kind))
        return cls(actions)

    #: Numeric window arguments :meth:`sample` jitters alongside the
    #: timings.  Structural arguments (addresses, key tuples, DC sets)
    #: are anchors — perturbing them would change *which* scenario is
    #: being fuzzed, not when it bites.
    _JITTERED_ARGS = ("prob", "extra_ms", "period_ms", "duty",
                      "failover_after_ms", "stagger_ms")

    @classmethod
    def sample(cls, rng: Random, horizon_ms: float,
               anchor: Optional["FaultSchedule"] = None,
               n_datacenters: int = 0,
               addresses: Sequence[str] = (),
               keys: Sequence[str] = (),
               kinds: Sequence[str] = KINDS,
               n_faults: int = 0,
               jitter: float = 0.25) -> "FaultSchedule":
        """Sample a schedule *around* an anchor (the scenario fuzzer).

        Every action of ``anchor`` is kept but has its timings, window,
        and numeric intensity arguments perturbed by up to ``jitter``
        (relative), clamped so windows stay inside 90 % of the horizon
        and keep positive width.  ``n_faults`` extra actions are then
        drawn from ``kinds`` via :meth:`random` and merged in.  With no
        anchor this degenerates to :meth:`random`.
        """
        actions: List[FaultAction] = []
        for action in (anchor.actions if anchor is not None else []):
            at_ms = action.at_ms * rng.uniform(1.0 - jitter, 1.0 + jitter)
            at_ms = min(max(at_ms, 0.0), 0.70 * horizon_ms)
            until_ms = action.until_ms
            if until_ms is not None:
                width = (until_ms - action.at_ms) \
                    * rng.uniform(1.0 - jitter, 1.0 + jitter)
                until_ms = min(at_ms + max(width, 1.0), 0.90 * horizon_ms)
            args = dict(action.args)
            for name in cls._JITTERED_ARGS:
                value = args.get(name)
                if isinstance(value, (int, float)):
                    scaled = value * rng.uniform(1.0 - jitter, 1.0 + jitter)
                    if name == "prob" or name == "duty":
                        scaled = min(max(scaled, 0.0), 1.0)
                    args[name] = round(scaled, 3)
            actions.append(FaultAction(at_ms, action.kind, until_ms, args))
        if n_faults > 0:
            extra = cls.random(rng, n_faults, horizon_ms, n_datacenters,
                               addresses, keys, kinds=kinds)
            actions.extend(extra.actions)
        actions.sort(key=lambda action: (action.at_ms, action.kind))
        return cls(actions)

    # -- application ---------------------------------------------------------

    def apply(self, cluster: Cluster) -> None:
        """Spawn the injection processes on the cluster's kernel."""
        for action in self.actions:
            cluster.env.process(self._inject(cluster, action))

    def _inject(self, cluster: Cluster, action: FaultAction):
        env, transport = cluster.env, cluster.transport
        if action.at_ms > env.now:
            yield env.timeout(action.at_ms - env.now)
        args = action.args
        if action.kind == "drop":
            transport.set_drop_probability(
                args["src_dc"], args["dst_dc"], args["prob"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.set_drop_probability(args["src_dc"], args["dst_dc"], 0.0)
        elif action.kind == "spike":
            transport.set_extra_delay(
                args["src_dc"], args["dst_dc"], args["extra_ms"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.set_extra_delay(args["src_dc"], args["dst_dc"], 0.0)
        elif action.kind == "partition":
            transport.partition(args["dc_a"], args["dc_b"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.heal(args["dc_a"], args["dc_b"])
        elif action.kind == "crash":
            transport.take_down(args["address"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.bring_up(args["address"])
        elif action.kind == "outage":
            # Whole-DC crash: every storage partition fails at once.
            # Mastership of the listed keys fails over to another DC
            # while the site is dark; recovery is staggered, one
            # partition at a time, the way real sites come back.
            dc = args["dc"]
            addresses = [Cluster.node_address(dc, partition)
                         for partition in range(cluster.partitions)]
            for address in addresses:
                transport.take_down(address)
            failover_keys = args.get("failover_keys", ())
            if failover_keys:
                delay = min(args.get("failover_after_ms", 0.0),
                            max(action.until_ms - env.now, 0.0))
                if delay > 0:
                    yield env.timeout(delay)
                new_dc = args.get(
                    "failover_dc", (dc + 1) % len(cluster.topology))
                for key in failover_keys:
                    # Only keys the dark DC actually leads fail over —
                    # callers may pass the whole key space.  The
                    # takeover's phase 1 doubles as state refresh, so
                    # the fenced leader's replica can't resurface
                    # stale versions after the site returns.
                    if cluster.mastership.leader_dc(key) != dc:
                        continue
                    # Fire-and-forget like ``transfer``: a contested
                    # takeover may fail; invariants must hold anyway.
                    # quorum_fast: the dark DC's replica cannot reply,
                    # so an all-replies phase 1 would sit on the RPC
                    # timeout with the key fenced but still routed to
                    # the dead leader — aborting every write meanwhile.
                    cluster.transfer_mastership(key, new_dc,
                                                quorum_fast=True)
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            stagger = args.get("stagger_ms", 0.0)
            # Recovered partitions state-transfer from the next live
            # DC before serving (see StorageNode.catch_up_from) —
            # without it their replicas resurface pre-outage versions
            # and poison optimistic validation for seconds.
            source_dc = args.get(
                "failover_dc", (dc + 1) % len(cluster.topology))
            for index, address in enumerate(addresses):
                if index and stagger > 0:
                    yield env.timeout(stagger)
                transport.bring_up(address)
                cluster.nodes[dc][index].catch_up_from(
                    cluster.nodes[source_dc][index])
        elif action.kind == "brownout":
            # Correlated RTT inflation: every directed link between
            # the listed DCs degrades together for the window.
            pairs = [(a, b) for a in args["dcs"] for b in args["dcs"]
                     if a != b]
            for src, dst in pairs:
                transport.set_extra_delay(src, dst, args["extra_ms"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            for src, dst in pairs:
                transport.set_extra_delay(src, dst, 0.0)
        elif action.kind == "flappy_link":
            src, dst = args["src_dc"], args["dst_dc"]
            period = args["period_ms"]
            duty = args.get("duty", 0.5)
            while True:
                transport.partition(src, dst)
                down = min(max(period * duty, 0.0),
                           max(action.until_ms - env.now, 0.0))
                yield env.timeout(down)
                transport.heal(src, dst)
                up = min(max(period * (1.0 - duty), 0.0),
                         action.until_ms - env.now)
                if up <= 0.0:
                    break
                yield env.timeout(up)
                if env.now >= action.until_ms:
                    break
        elif action.kind == "transfer":
            # Fire-and-forget: a contested takeover may legitimately
            # fail; the invariants must hold either way.
            cluster.transfer_mastership(args["key"], args["new_dc"])
        elif action.kind == "collide":
            # Simultaneous proposers on one record from distinct DCs.
            # Under fast mode their fast rounds race each other (and
            # the workload) at the acceptors, scattering the value
            # across instances — the collision the record master must
            # recover from.  Under classic mode they serialize at the
            # leader and are just extra load.
            batch = next(self._collider_ids)
            n_dcs = len(cluster.topology)
            for i in range(args["n_proposers"]):
                tm = cluster.create_client(
                    f"collider-{batch}-{i}", datacenter=i % n_dcs)
                tm.begin([WriteOp(args["key"],
                                  Update.delta(-1, floor=0))])
