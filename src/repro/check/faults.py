"""Declarative fault schedules for the seed-sweep fuzzer.

A :class:`FaultSchedule` is a plain list of :class:`FaultAction`
records — *data*, not processes — so a failing run's schedule can be
printed, replayed verbatim, and shrunk action-by-action.  Applying a
schedule to a cluster spawns one kernel process per action that opens
the fault at ``at_ms`` and (for windowed kinds) closes it again at
``until_ms``.

Supported kinds and their ``args``:

``drop``       ``src_dc, dst_dc, prob`` — lossy directed link window
``spike``      ``src_dc, dst_dc, extra_ms`` — WAN latency spike window
``partition``  ``dc_a, dc_b`` — full bidirectional cut window
``crash``      ``address`` — fail-stop node outage window (state kept)
``transfer``   ``key, new_dc`` — instant mastership takeover attempt
``collide``    ``key, n_proposers`` — concurrent one-shot proposers
               racing the same record from distinct data centers (the
               fast-ballot collision generator; harmless noise under
               classic mode)
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Sequence

from repro.mdcc.cluster import Cluster
from repro.storage.record import Update, WriteOp

KINDS = ("drop", "spike", "partition", "crash", "transfer")

#: The extended palette for fast-mode fuzzing.  ``collide`` is *not* in
#: the default KINDS: schedule sampling draws ``rng.randrange(len(kinds))``,
#: so growing the default palette would shift every classic golden
#: digest.  Fast-mode runs opt in explicitly.
FAST_KINDS = KINDS + ("collide",)


@dataclass(frozen=True)
class FaultAction:
    """One injected fault: what, when, and (if windowed) until when."""

    at_ms: float
    kind: str
    until_ms: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        window = ("" if self.until_ms is None
                  else f" until {self.until_ms:.0f}ms")
        parts = " ".join(f"{name}={self.args[name]}"
                         for name in sorted(self.args))
        return f"@{self.at_ms:.0f}ms {self.kind}{window} {parts}"


class FaultSchedule:
    """An ordered set of fault actions applied to one cluster run."""

    def __init__(self, actions: Sequence[FaultAction] = ()):
        self.actions = list(actions)
        for action in self.actions:
            if action.kind not in FAST_KINDS:
                raise ValueError(f"unknown fault kind {action.kind!r}")
        # Distinguishes the colliders of repeated apply() calls.
        self._collider_ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.actions)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with one action removed — the shrinker's move."""
        return FaultSchedule(self.actions[:index] + self.actions[index + 1:])

    def describe(self) -> str:
        if not self.actions:
            return "(no faults)"
        return "\n".join(f"  [{i}] {action.describe()}"
                         for i, action in enumerate(self.actions))

    # -- construction --------------------------------------------------------

    @classmethod
    def random(cls, rng: Random, n_faults: int, horizon_ms: float,
               n_datacenters: int, addresses: Sequence[str],
               keys: Sequence[str],
               kinds: Sequence[str] = KINDS) -> "FaultSchedule":
        """Sample a schedule within the workload window.

        Fault windows start inside [5%, 70%] of the horizon and always
        close before 90% of it, so the drain phase runs on a healed
        network and every run terminates.
        """
        if n_datacenters < 2:
            raise ValueError("fault injection needs at least two DCs")
        actions = []
        for _ in range(n_faults):
            kind = kinds[rng.randrange(len(kinds))]
            at_ms = rng.uniform(0.05, 0.70) * horizon_ms
            until_ms = min(at_ms + rng.uniform(0.02, 0.25) * horizon_ms,
                           0.90 * horizon_ms)
            if kind == "drop":
                src = rng.randrange(n_datacenters)
                dst = rng.randrange(n_datacenters)
                actions.append(FaultAction(at_ms, "drop", until_ms, {
                    "src_dc": src, "dst_dc": dst,
                    "prob": round(rng.uniform(0.05, 0.35), 3)}))
            elif kind == "spike":
                src = rng.randrange(n_datacenters)
                dst = rng.randrange(n_datacenters)
                actions.append(FaultAction(at_ms, "spike", until_ms, {
                    "src_dc": src, "dst_dc": dst,
                    "extra_ms": round(rng.uniform(50.0, 400.0), 1)}))
            elif kind == "partition":
                dc_a = rng.randrange(n_datacenters)
                dc_b = (dc_a + 1 + rng.randrange(n_datacenters - 1)) \
                    % n_datacenters
                actions.append(FaultAction(at_ms, "partition", until_ms, {
                    "dc_a": dc_a, "dc_b": dc_b}))
            elif kind == "crash":
                address = addresses[rng.randrange(len(addresses))]
                actions.append(FaultAction(at_ms, "crash", until_ms, {
                    "address": address}))
            elif kind == "transfer":
                key = keys[rng.randrange(len(keys))]
                actions.append(FaultAction(at_ms, "transfer", None, {
                    "key": key, "new_dc": rng.randrange(n_datacenters)}))
            elif kind == "collide":
                key = keys[rng.randrange(len(keys))]
                n_proposers = 2 + rng.randrange(
                    min(2, max(1, n_datacenters - 1)))
                actions.append(FaultAction(at_ms, "collide", None, {
                    "key": key, "n_proposers": n_proposers}))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        actions.sort(key=lambda action: (action.at_ms, action.kind))
        return cls(actions)

    # -- application ---------------------------------------------------------

    def apply(self, cluster: Cluster) -> None:
        """Spawn the injection processes on the cluster's kernel."""
        for action in self.actions:
            cluster.env.process(self._inject(cluster, action))

    def _inject(self, cluster: Cluster, action: FaultAction):
        env, transport = cluster.env, cluster.transport
        if action.at_ms > env.now:
            yield env.timeout(action.at_ms - env.now)
        args = action.args
        if action.kind == "drop":
            transport.set_drop_probability(
                args["src_dc"], args["dst_dc"], args["prob"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.set_drop_probability(args["src_dc"], args["dst_dc"], 0.0)
        elif action.kind == "spike":
            transport.set_extra_delay(
                args["src_dc"], args["dst_dc"], args["extra_ms"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.set_extra_delay(args["src_dc"], args["dst_dc"], 0.0)
        elif action.kind == "partition":
            transport.partition(args["dc_a"], args["dc_b"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.heal(args["dc_a"], args["dc_b"])
        elif action.kind == "crash":
            transport.take_down(args["address"])
            yield env.timeout(max(action.until_ms - env.now, 0.0))
            transport.bring_up(args["address"])
        elif action.kind == "transfer":
            # Fire-and-forget: a contested takeover may legitimately
            # fail; the invariants must hold either way.
            cluster.transfer_mastership(args["key"], args["new_dc"])
        elif action.kind == "collide":
            # Simultaneous proposers on one record from distinct DCs.
            # Under fast mode their fast rounds race each other (and
            # the workload) at the acceptors, scattering the value
            # across instances — the collision the record master must
            # recover from.  Under classic mode they serialize at the
            # leader and are just extra load.
            batch = next(self._collider_ids)
            n_dcs = len(cluster.topology)
            for i in range(args["n_proposers"]):
                tm = cluster.create_client(
                    f"collider-{batch}-{i}", datacenter=i % n_dcs)
                tm.begin([WriteOp(args["key"],
                                  Update.delta(-1, floor=0))])
