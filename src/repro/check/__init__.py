"""Deterministic simulation testing for the MDCC/PLANET stack.

Three pieces, composable separately or through the CLI
(``python -m repro.check``):

- :class:`HistoryRecorder` taps the kernel's trace hooks and turns one
  cluster run into a structured :class:`History`;
- :func:`check_history` runs the offline protocol-invariant catalogue
  (``CHK001``–``CHK006``) over any history, recorded or hand-built;
- :func:`run_check` / :func:`fuzz_sweep` / :func:`shrink` compose
  randomized workloads with injected faults (:class:`FaultSchedule`),
  check every resulting history, and minimize failures to replayable
  reproductions.

See ``docs/testing.md`` for the event schema and workflow.
"""

from repro.check.atomicity import (
    AtomicityGuard,
    AtomicityWitness,
    GuardSpec,
    default_guard,
)
from repro.check.events import History, HistoryEvent, Violation
from repro.check.faults import FaultAction, FaultSchedule
from repro.check.invariants import CHECKS, check_history
from repro.check.recorder import HistoryRecorder
from repro.check.runner import (
    CheckConfig,
    CheckResult,
    ShrinkResult,
    fuzz_sweep,
    run_check,
    shrink,
)

__all__ = [
    "AtomicityGuard",
    "AtomicityWitness",
    "CHECKS",
    "CheckConfig",
    "CheckResult",
    "FaultAction",
    "FaultSchedule",
    "GuardSpec",
    "History",
    "HistoryEvent",
    "HistoryRecorder",
    "ShrinkResult",
    "Violation",
    "check_history",
    "default_guard",
    "fuzz_sweep",
    "run_check",
    "shrink",
]
