"""Attach a :class:`~repro.check.events.History` to a live cluster.

The recorder is deliberately thin: the simulation layers already emit
trace callbacks through ``Environment.trace`` whenever a tracer is
installed, so "recording" is just pointing the kernel's tracer at a
history and writing down the run's static facts (topology shape,
quorum size, and the versions already visible from bulk loads) that
the offline checkers need as context.
"""

from __future__ import annotations

from typing import Optional

from repro.check.events import History
from repro.mdcc.cluster import Cluster


class HistoryRecorder:
    """Records one cluster run into a :class:`History`.

    >>> recorder = HistoryRecorder()
    >>> history = recorder.attach(cluster)
    >>> ... run the workload ...
    >>> recorder.detach()
    >>> violations = check_history(history)

    Attach before starting workload processes; events emitted while no
    recorder is attached are simply not produced (the hooks are
    zero-cost when ``env.tracer`` is None).
    """

    def __init__(self) -> None:
        self.history: Optional[History] = None
        self._cluster: Optional[Cluster] = None

    def attach(self, cluster: Cluster,
               history: Optional[History] = None) -> History:
        if self._cluster is not None:
            raise RuntimeError("recorder already attached")
        history = history if history is not None else History()
        self.history = history
        self._cluster = cluster
        n_datacenters = len(cluster.topology)
        meta = {
            "n_datacenters": n_datacenters,
            "partitions_per_dc": cluster.partitions,
            # One replica per DC per record, so the phase-2 quorum is a
            # majority of data centers.
            "quorum": n_datacenters // 2 + 1,
        }
        if getattr(cluster, "mode", "classic") == "fast":
            # Only fast-mode runs carry the key so classic histories
            # (and their golden digests) are unchanged.
            from repro.paxos.ballot import fast_quorum_size
            meta["fast_quorum"] = fast_quorum_size(n_datacenters)
        history.record(cluster.env.now, "cluster_meta", "", meta)
        # Baseline visibility: records bulk-loaded before attach never
        # traced their version 1, so snapshot them here — the
        # read-committed checker needs a complete visible-version set.
        for dc in sorted(cluster.nodes):
            for node in cluster.nodes[dc]:
                for key in sorted(node.records):
                    record = node.records[key]
                    if record.version > 0:
                        history.record(
                            cluster.env.now, "version_visible",
                            node.address,
                            {"key": key, "version": record.version,
                             "value": record.value, "txid": ""})
        cluster.env.tracer = history.record
        return history

    def detach(self) -> Optional[History]:
        """Stop recording; returns the (now frozen) history."""
        if self._cluster is not None:
            self._cluster.env.tracer = None
            self._cluster = None
        history, self.history = self.history, None
        return history

    def __enter__(self) -> "HistoryRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()
