"""The structured history a recorded simulation run leaves behind.

A :class:`History` is an append-only, totally ordered sequence of
:class:`HistoryEvent` records — the raw material the offline invariant
checkers (:mod:`repro.check.invariants`) judge.  Ordering is the order
the kernel executed the emitting handlers in, which (the kernel being
deterministic) is itself a pure function of the seed; ties in virtual
time keep their causal append order.

Event catalogue (``etype`` / emitted by / fields)
-------------------------------------------------
``cluster_meta``     recorder     n_datacenters, partitions_per_dc, quorum
``send``             transport    kind, dst, msg_id, reply_to
``deliver``          transport    kind, src, msg_id
``drop``             transport    kind, dst, msg_id, reason
``tx_begin``         coordinator  txid, keys
``propose``          coordinator  txid, key, leader
``tx_accepted``      coordinator  txid, key
``tx_learned``       coordinator  txid, key, decision
``tx_decided``       coordinator  txid, committed, keys
``option``           leader       txid, key, seq, decision, conflict
``round_start``      leader       key, seq, ballot, quorum, n_replicas
``round_decided``    leader       key, seq, ballot, won, accepts,
                                  rejects, reason
``phase2b``          acceptor     key, seq, ballot, accepted, promised,
                                  txid, decision
``promise``          acceptor     key, ballot, granted, prev
``mastership_acquired`` new leader  key, ballot, promises
``read_reply``       replica      key, version, value, as_of, exists,
                                  reader
``version_visible``  replica      key, version, value, txid ("" for
                                  bulk-loaded baselines)
``visibility_applied`` replica    txid, commit, keys

Ballots appear as ``(number, proposer)`` tuples (see
:func:`repro.paxos.ballot_key`) so histories stay plain-data and
digestable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class HistoryEvent:
    """One recorded occurrence: virtual timestamp, type, emitting node
    (``""`` for fabric-level events), and type-specific fields."""

    ts: float
    etype: str
    node: str
    fields: Dict[str, Any]

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def canonical(self) -> str:
        """A stable one-line rendering (the digest/trace format)."""
        parts = [f"{name}={self.fields[name]!r}"
                 for name in sorted(self.fields)]
        node = self.node or "-"
        return f"{self.ts:.6f} {self.etype:<20} {node:<16} " + " ".join(parts)


class History:
    """An append-only event log plus the query helpers checkers use."""

    def __init__(self, events: Optional[List[HistoryEvent]] = None):
        self.events: List[HistoryEvent] = list(events or [])

    # -- recording ---------------------------------------------------------

    def record(self, ts: float, etype: str, node: str,
               fields: Dict[str, Any]) -> None:
        """The ``Environment.tracer`` entry point."""
        self.events.append(HistoryEvent(ts, etype, node, dict(fields)))

    def append(self, ts: float, etype: str, node: str = "",
               **fields: Any) -> "History":
        """Keyword-style append — the hand-built-history test idiom."""
        self.record(ts, etype, node, fields)
        return self

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> HistoryEvent:
        return self.events[index]

    def of_type(self, *etypes: str) -> List[HistoryEvent]:
        wanted = dict.fromkeys(etypes)
        return [event for event in self.events if event.etype in wanted]

    def meta(self) -> Dict[str, Any]:
        """Fields of the first ``cluster_meta`` event (``{}`` if none)."""
        for event in self.events:
            if event.etype == "cluster_meta":
                return dict(event.fields)
        return {}

    def counts(self) -> Dict[str, int]:
        """Event count per type (observability / trace summaries)."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.etype] = totals.get(event.etype, 0) + 1
        return totals

    # -- rendering ----------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over the canonical rendering of every event.

        Two runs of the same seed through the deterministic kernel must
        produce byte-identical digests — the regression the
        seed-stability test pins down.
        """
        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(event.canonical().encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def format(self, indices: Optional[Tuple[int, ...]] = None,
               limit: Optional[int] = None) -> str:
        """Render events as text; ``indices`` selects an excerpt."""
        if indices is not None:
            chosen = [(i, self.events[i]) for i in indices
                      if 0 <= i < len(self.events)]
        else:
            chosen = list(enumerate(self.events))
        if limit is not None and len(chosen) > limit:
            chosen = chosen[:limit]
        return "\n".join(f"[{i:>6}] {event.canonical()}"
                         for i, event in chosen)


@dataclass(frozen=True)
class Violation:
    """One invariant breach found by an offline checker.

    ``evidence`` holds history indices of the implicated events so a
    failing fuzz seed can print exactly the slice that matters.
    """

    code: str
    subject: str      # what broke: a txid, a "node/key", ...
    message: str
    evidence: Tuple[int, ...] = field(default_factory=tuple)

    def format(self) -> str:
        return f"{self.code} [{self.subject}] {self.message}"
