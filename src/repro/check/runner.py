"""Build, run, check, and shrink one randomized simulation.

``run_check`` assembles a small MDCC cluster, records its history
while a randomized buy workload executes under an (optionally
randomized) fault schedule, then throws the full invariant catalogue
at the result.  ``fuzz_sweep`` does that across many seeds;
``shrink`` minimizes a failing run to the smallest workload and fault
schedule that still violates an invariant.

Everything is derived from ``CheckConfig.seed`` through the named
random streams, so a failing seed is a complete, replayable bug
report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.atomicity import AtomicityGuard, AtomicityWitness, \
    default_guard
from repro.check.events import History, Violation
from repro.check.faults import KINDS, FaultSchedule
from repro.check.invariants import check_history
from repro.check.recorder import HistoryRecorder
from repro.mdcc.cluster import Cluster
from repro.net.topology import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.workload.access import UniformAccess
from repro.workload.buying import BuyTransactionFactory
from repro.workload.items import generate_items, item_key


@dataclass(frozen=True)
class CheckConfig:
    """One fuzz run: topology, workload, and fault-injection knobs.

    The defaults are a deliberately tiny cluster — 3 DCs, one
    partition — so a 100-seed sweep finishes in seconds while still
    exercising quorums, conflicts, and every fault kind.
    """

    seed: int = 0
    # topology
    n_datacenters: int = 3
    partitions_per_dc: int = 1
    one_way_ms: float = 20.0
    sigma: float = 0.10
    # data & workload
    n_items: int = 6
    initial_stock: int = 50
    n_txns: int = 40
    mean_gap_ms: float = 60.0
    min_items: int = 1
    max_items: int = 3
    read_fraction: float = 0.2
    round_timeout_ms: float = 1_500.0
    # faults
    n_faults: int = 6
    fault_kinds: Tuple[str, ...] = KINDS
    #: Name of a catalogue scenario (:mod:`repro.scenarios`) to fuzz
    #: around: its environment script becomes the *anchor* schedule and
    #: every seed perturbs the fault timings/intensities via
    #: :meth:`FaultSchedule.sample` (plus extra actions drawn from the
    #: scenario palette).  ``None`` keeps the classic random sampler —
    #: and the golden digests — untouched.
    scenario: Optional[str] = None
    #: Protocol mode for the whole cluster: ``"classic"`` (default,
    #: leader-routed options) or ``"fast"`` (MDCC fast ballots with
    #: classic fallback).  Classic configs are bit-for-bit unchanged.
    mode: str = "classic"

    def horizon_ms(self) -> float:
        """Nominal workload window faults are scheduled within."""
        return max(self.n_txns * self.mean_gap_ms, 1.0)


@dataclass
class CheckResult:
    """Everything one checked run produced."""

    config: CheckConfig
    schedule: FaultSchedule
    history: History
    violations: List[Violation]
    stats: Dict[str, float] = field(default_factory=dict)
    #: Observability artifacts when run with ``observe=True``; the
    #: fuzz CLI saves these next to failing traces for Perfetto
    #: inspection.
    obs: Optional[Dict[str, object]] = None
    #: Yield-point mutation witnesses when run with an
    #: :class:`~repro.check.atomicity.AtomicityGuard` installed.
    #: ``None`` means the guard was off; an empty list means it ran
    #: and observed no cross-yield mutation of any guarded field.
    atomicity: Optional[List[AtomicityWitness]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self, max_events: int = 40) -> str:
        """Human-readable failure report with the implicated events."""
        lines = [f"seed {self.config.seed}: "
                 f"{len(self.violations)} violation(s)",
                 "fault schedule:", self.schedule.describe()]
        for violation in self.violations:
            lines.append(violation.format())
            if violation.evidence:
                lines.append(self.history.format(
                    indices=violation.evidence, limit=max_events))
        return "\n".join(lines)


def run_check(config: CheckConfig,
              schedule: Optional[FaultSchedule] = None,
              observe: bool = False,
              atomicity: Optional[AtomicityGuard] = None) -> CheckResult:
    """One recorded, checked simulation run.

    Passing ``schedule`` replays/overrides the fault schedule (the
    shrinker's entry point); the workload itself still derives from
    ``config.seed`` and is unaffected, because workload and faults
    draw from independent named streams.  ``observe=True``
    additionally installs a :class:`repro.obs.ObsSession` and returns
    its artifacts on ``CheckResult.obs`` — observability never
    perturbs the run (no rng draws, no trace events), so the history
    digest is identical either way.  Passing an ``atomicity`` guard
    installs the yield-point sanitizer under the same contract
    (observation-only, digest-identical) and returns its witnesses on
    ``CheckResult.atomicity``.
    """
    env = Environment()
    obs_session = None
    if observe:
        from repro.obs import ObsSession
        obs_session = ObsSession()
        obs_session.install(env)
    if atomicity is not None:
        atomicity.install(env)
    streams = RandomStreams(seed=config.seed)
    topology = uniform_topology(config.n_datacenters,
                                one_way_ms=config.one_way_ms,
                                sigma=config.sigma, spike_prob=0.0)
    cluster = Cluster(env, topology, streams,
                      partitions_per_dc=config.partitions_per_dc,
                      round_timeout_ms=config.round_timeout_ms,
                      mode=config.mode)
    keys = [item_key(i) for i in range(config.n_items)]
    cluster.load(generate_items(config.n_items, config.initial_stock))

    recorder = HistoryRecorder()
    history = recorder.attach(cluster)

    if schedule is None:
        addresses = [Cluster.node_address(dc, partition)
                     for dc in range(config.n_datacenters)
                     for partition in range(config.partitions_per_dc)]
        if config.scenario is not None:
            # Scenario axis: anchor on the catalogue entry's fault
            # program (scaled to this run's horizon) and jitter it
            # per seed.  Lazy import — the catalogue imports this
            # package's fault vocabulary.
            from repro.check.faults import SCENARIO_KINDS
            from repro.scenarios import get_scenario
            anchor = get_scenario(config.scenario).fault_schedule(
                0.0, config.horizon_ms(), keys=keys)
            extra = (config.n_faults if anchor is None or not anchor.actions
                     else max(config.n_faults - len(anchor.actions), 0))
            schedule = FaultSchedule.sample(
                streams.get("check-faults"), config.horizon_ms(),
                anchor=anchor, n_datacenters=config.n_datacenters,
                addresses=addresses, keys=keys,
                kinds=SCENARIO_KINDS, n_faults=extra)
        else:
            schedule = FaultSchedule.random(
                streams.get("check-faults"), config.n_faults,
                config.horizon_ms(), config.n_datacenters, addresses, keys,
                kinds=config.fault_kinds)
    schedule.apply(cluster)

    tms = [cluster.create_client(f"check-{dc}", dc)
           for dc in range(config.n_datacenters)]
    factory = BuyTransactionFactory(UniformAccess(config.n_items),
                                    min_items=config.min_items,
                                    max_items=min(config.max_items,
                                                  config.n_items))
    load_rng = streams.get("check-load")

    def workload():
        for index in range(config.n_txns):
            yield env.timeout(load_rng.expovariate(1.0 / config.mean_gap_ms))
            tm = tms[index % len(tms)]
            if load_rng.random() < config.read_fraction:
                count = load_rng.randint(1, min(2, config.n_items))
                read_keys = [keys[load_rng.randrange(config.n_items)]
                             for _ in range(count)]
                tm.read_only(read_keys)
            else:
                writes, _hot = factory.build(load_rng)
                tm.begin(writes)

    env.process(workload())
    # Run to quiescence: every fault window closes inside the horizon
    # and every protocol wait is bounded (round timeouts, RPC timeouts,
    # capped visibility retries), so the event heap always drains.
    env.run()
    recorder.detach()
    obs_artifacts = None
    if obs_session is not None:
        obs_session.detach(env)
        obs_artifacts = obs_session.artifacts(meta={
            "source": "check", "seed": config.seed})
    witnesses = None
    if atomicity is not None:
        atomicity.detach(env)
        witnesses = list(atomicity.witnesses)

    violations = check_history(history)
    stats = {
        "virtual_ms": env.now,
        "events": float(len(history)),
        "started": float(sum(tm.started for tm in tms)),
        "committed": float(sum(tm.committed for tm in tms)),
        "aborted": float(sum(tm.aborted for tm in tms)),
        "msgs_sent": float(cluster.transport.sent),
        "msgs_dropped": float(cluster.transport.dropped),
    }
    if config.mode == "fast":
        stats["fast_chosen"] = float(sum(tm.fast_chosen for tm in tms))
        stats["fallbacks"] = float(sum(tm.fallbacks for tm in tms))
        stats["collisions"] = float(sum(tm.collisions for tm in tms))
    if witnesses is not None:
        stats["atomicity_witnesses"] = float(len(witnesses))
    return CheckResult(config=config, schedule=schedule, history=history,
                       violations=violations, stats=stats,
                       obs=obs_artifacts, atomicity=witnesses)


def _run_seed(config: CheckConfig) -> CheckResult:
    """Pool-worker body for :func:`fuzz_sweep` (module-level: pickled)."""
    return run_check(config)


def _run_seed_guarded(config: CheckConfig) -> CheckResult:
    """Like :func:`_run_seed` with the default atomicity watchlist."""
    return run_check(config, atomicity=default_guard())


def fuzz_sweep(seeds: Sequence[int], base: Optional[CheckConfig] = None,
               on_result: Optional[Callable[[CheckResult], None]] = None,
               processes: int = 1,
               atomicity: bool = False,
               ) -> List[CheckResult]:
    """Run every seed; returns the failing results (empty = all clean).

    ``processes > 1`` shards the seeds across a worker pool (see
    :mod:`repro.harness.parallel`); results — and ``on_result`` calls —
    still arrive in seed order, identical to the serial sweep, because
    each seed's run is a pure function of its config.
    ``atomicity=True`` installs the default yield-point sanitizer
    watchlist in every run (each worker gets a fresh guard); witness
    counts land on ``CheckResult.stats['atomicity_witnesses']``.
    """
    from repro.harness.parallel import parallel_map

    base = base if base is not None else CheckConfig()
    configs = [dataclasses.replace(base, seed=seed) for seed in seeds]
    worker = _run_seed_guarded if atomicity else _run_seed
    results = parallel_map(worker, configs, processes=processes,
                           on_result=on_result)
    return [result for result in results if not result.ok]


@dataclass
class ShrinkResult:
    """The minimized reproduction of one failing seed."""

    config: CheckConfig
    schedule: FaultSchedule
    result: CheckResult
    runs: int = 0


def shrink(failing: CheckResult, max_runs: int = 60) -> ShrinkResult:
    """Greedy minimization of a failing run.

    First halves the workload while the failure persists, then drops
    fault actions one at a time (last first, so cleanup windows go
    before the faults they close) until no single removal keeps the
    run failing.  Every trial is a full deterministic re-run, so the
    final (config, schedule) pair is a standalone reproduction.
    """
    config, schedule = failing.config, failing.schedule
    best = failing
    runs = 0

    def still_fails(trial_config: CheckConfig,
                    trial_schedule: FaultSchedule) -> Optional[CheckResult]:
        result = run_check(trial_config, schedule=trial_schedule)
        return result if not result.ok else None

    # 1. Shrink the workload: fewer transactions, same faults.
    while runs < max_runs and config.n_txns > 1:
        trial_config = dataclasses.replace(config,
                                           n_txns=config.n_txns // 2)
        runs += 1
        result = still_fails(trial_config, schedule)
        if result is None:
            break
        config, best = trial_config, result

    # 2. Shrink the schedule: greedily drop actions until fixpoint.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for index in range(len(schedule) - 1, -1, -1):
            if runs >= max_runs:
                break
            trial_schedule = schedule.without(index)
            runs += 1
            result = still_fails(config, trial_schedule)
            if result is not None:
                schedule, best = trial_schedule, result
                changed = True
    return ShrinkResult(config=config, schedule=schedule, result=best,
                        runs=runs)
