"""Offline protocol invariants checked over a recorded history.

Each checker is a pure function ``History -> List[Violation]``; all of
them together form the safety net the fuzzer throws every randomized
run against.  The catalogue:

``CHK001`` ballot monotonicity — an acceptor never grants a promise or
    accepts a phase2a below a ballot it already promised.
``CHK002`` unique chosen value — two different transactions are never
    accepted at the same (key, instance, ballot).  (The same instance
    *may* be re-proposed under a higher ballot after a mastership
    transfer; that is Paxos working as intended.)
``CHK003`` decision agreement — a transaction has at most one verdict;
    commit iff every option was learned ACCEPTED; every visibility
    application and visible version agrees with that verdict (no
    replica applies a COMMIT the TM decided to ABORT, and no
    uncommitted write ever becomes visible).
``CHK004`` read-committed visibility — every read returns exactly the
    latest version visible at that replica at that moment (or version
    0 when nothing is visible yet); point-in-time reads return some
    previously visible version.
``CHK005`` quorum durability — by the time a transaction commits, each
    of its writes has been accepted by a majority of replicas, so the
    write survives any minority failure (including the mastership
    transfers the fuzzer injects).
``CHK006`` version monotonicity — the visible version sequence of a
    record at one replica only moves forward.
``CHK007`` fast-quorum soundness — every fast-learned verdict is backed
    by at least ⌈3N/4⌉ acceptors fast-voting the same value and verdict
    at the same instance.
``CHK008`` collision-recovery safety — at most one value is chosen per
    (key, instance) across fast and classic ballots: a classic recovery
    never chooses a value different from one a fast quorum already
    chose at that instance.
``CHK009`` mode-transition monotonicity — per (transaction, key) the
    fast round moves one way: proposed, then at most one of
    fast-chosen or fallback-to-classic, and never fast again after
    either terminal.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.events import History, Violation
from repro.paxos.ballot import FAST_PROPOSER

BallotKey = Tuple[int, str]


def _is_fast(ballot: Optional[BallotKey]) -> bool:
    return ballot is not None and ballot[1] == FAST_PROPOSER


def _fmt_ballot(ballot: Optional[BallotKey]) -> str:
    if ballot is None:
        return "none"
    return f"({ballot[0]},{ballot[1]})"


# ---------------------------------------------------------------------------
# CHK001: ballot monotonicity per (acceptor node, key)
# ---------------------------------------------------------------------------

def check_ballot_monotonic(history: History) -> List[Violation]:
    violations: List[Violation] = []
    # (node, key) -> (max promised ballot, index where it was set)
    promised: Dict[Tuple[str, str], Tuple[BallotKey, int]] = {}

    def bump(slot: Tuple[str, str], ballot: Optional[BallotKey],
             index: int) -> None:
        if ballot is None:
            return
        current = promised.get(slot)
        if current is None or ballot > current[0]:
            promised[slot] = (ballot, index)

    for index, event in enumerate(history):
        if event.etype == "promise":
            slot = (event.node, event.get("key"))
            ballot = event.get("ballot")
            current = promised.get(slot)
            if event.get("granted"):
                if (current is not None and ballot is not None
                        and ballot < current[0]):
                    violations.append(Violation(
                        "CHK001", f"{event.node}/{slot[1]}",
                        f"promise granted at ballot {_fmt_ballot(ballot)} "
                        f"below earlier promise {_fmt_ballot(current[0])}",
                        evidence=(current[1], index)))
                bump(slot, ballot, index)
            else:
                # A refusal implies the acceptor holds a strictly higher
                # promise; refusing an equal-or-higher ballot is a bug.
                prev = event.get("prev")
                if (prev is not None and ballot is not None
                        and not ballot < prev):
                    violations.append(Violation(
                        "CHK001", f"{event.node}/{slot[1]}",
                        f"promise refused at ballot {_fmt_ballot(ballot)} "
                        f"although only {_fmt_ballot(prev)} was promised",
                        evidence=(index,)))
                bump(slot, prev, index)
        elif event.etype == "phase2b":
            slot = (event.node, event.get("key"))
            ballot = event.get("ballot")
            current = promised.get(slot)
            if event.get("accepted"):
                if (current is not None and ballot is not None
                        and ballot < current[0]):
                    violations.append(Violation(
                        "CHK001", f"{event.node}/{slot[1]}",
                        f"phase2a accepted at ballot {_fmt_ballot(ballot)} "
                        f"below promise {_fmt_ballot(current[0])}",
                        evidence=(current[1], index)))
            bump(slot, event.get("promised"), index)
    return violations


# ---------------------------------------------------------------------------
# CHK002: at most one value chosen per (key, seq, ballot)
# ---------------------------------------------------------------------------

def check_unique_chosen(history: History) -> List[Violation]:
    violations: List[Violation] = []
    # (key, seq, ballot) -> (txid, first index)
    chosen: Dict[Tuple[str, int, BallotKey], Tuple[str, int]] = {}
    for index, event in enumerate(history):
        if event.etype != "phase2b" or not event.get("accepted"):
            continue
        if _is_fast(event.get("ballot")):
            # Concurrent fast proposers may legitimately place different
            # values at the same instance on different acceptors (that
            # is precisely a collision); uniqueness of fast-*chosen*
            # values is CHK008's job.
            continue
        instance = (event.get("key"), event.get("seq"), event.get("ballot"))
        txid = event.get("txid")
        current = chosen.get(instance)
        if current is None:
            chosen[instance] = (txid, index)
        elif current[0] != txid:
            key, seq, ballot = instance
            violations.append(Violation(
                "CHK002", f"{key}@{seq}",
                f"instance {seq} of {key!r} accepted two values at ballot "
                f"{_fmt_ballot(ballot)}: {current[0]!r} and {txid!r}",
                evidence=(current[1], index)))
    return violations


# ---------------------------------------------------------------------------
# CHK003: decision agreement
# ---------------------------------------------------------------------------

def check_decision_agreement(history: History) -> List[Violation]:
    violations: List[Violation] = []
    # txid -> (committed, keys, index)
    decided: Dict[str, Tuple[bool, Tuple[str, ...], int]] = {}
    # (txid, key) -> (decision string, index)  [first learned wins, as at TM]
    learned: Dict[Tuple[str, str], Tuple[str, int]] = {}

    for index, event in enumerate(history):
        if event.etype == "tx_learned":
            slot = (event.get("txid"), event.get("key"))
            if slot not in learned:
                learned[slot] = (event.get("decision"), index)
        elif event.etype == "tx_decided":
            txid = event.get("txid")
            previous = decided.get(txid)
            if previous is not None:
                violations.append(Violation(
                    "CHK003", txid,
                    "transaction decided twice",
                    evidence=(previous[2], index)))
                continue
            committed = bool(event.get("committed"))
            keys = tuple(event.get("keys") or ())
            decided[txid] = (committed, keys, index)
            rejected = [key for key in keys
                        if learned.get((txid, key), ("", -1))[0] == "rejected"]
            if committed and rejected:
                evidence = tuple([index] + [learned[(txid, key)][1]
                                            for key in rejected])
                violations.append(Violation(
                    "CHK003", txid,
                    f"committed although options for {rejected} were "
                    "learned REJECTED", evidence=evidence))
            if not committed and not rejected:
                violations.append(Violation(
                    "CHK003", txid,
                    "aborted although no option was learned REJECTED",
                    evidence=(index,)))
        elif event.etype == "visibility_applied":
            txid = event.get("txid")
            verdict = decided.get(txid)
            if verdict is None:
                violations.append(Violation(
                    "CHK003", txid,
                    f"{event.node} applied visibility for an undecided "
                    "transaction", evidence=(index,)))
            elif bool(event.get("commit")) != verdict[0]:
                want = "COMMIT" if verdict[0] else "ABORT"
                got = "COMMIT" if event.get("commit") else "ABORT"
                violations.append(Violation(
                    "CHK003", txid,
                    f"{event.node} applied {got} but the TM decided {want}",
                    evidence=(verdict[2], index)))
        elif event.etype == "version_visible":
            txid = event.get("txid")
            if not txid:
                continue  # bulk-loaded baseline version
            verdict = decided.get(txid)
            if verdict is None or not verdict[0]:
                state = "aborted" if verdict is not None else "undecided"
                violations.append(Violation(
                    "CHK003", txid,
                    f"write of {state} transaction became visible as "
                    f"{event.get('key')!r} v{event.get('version')} "
                    f"on {event.node}", evidence=(index,)))
    return violations


# ---------------------------------------------------------------------------
# CHK004: read-committed visibility
# ---------------------------------------------------------------------------

def check_read_committed(history: History) -> List[Violation]:
    violations: List[Violation] = []
    # (node, key) -> list of (version, value, index) in visibility order
    visible: Dict[Tuple[str, str], List[Tuple[int, Any, int]]] = {}

    for index, event in enumerate(history):
        if event.etype == "version_visible":
            slot = (event.node, event.get("key"))
            visible.setdefault(slot, []).append(
                (event.get("version"), event.get("value"), index))
        elif event.etype == "read_reply":
            slot = (event.node, event.get("key"))
            version = event.get("version")
            value = event.get("value")
            versions = visible.get(slot, [])
            if event.get("as_of") is None:
                if not versions:
                    if version != 0:
                        violations.append(Violation(
                            "CHK004", f"{event.node}/{slot[1]}",
                            f"read returned v{version} but no version is "
                            "visible yet", evidence=(index,)))
                    continue
                latest = versions[-1]
                if version != latest[0] or value != latest[1]:
                    violations.append(Violation(
                        "CHK004", f"{event.node}/{slot[1]}",
                        f"read returned v{version}={value!r} but the "
                        f"latest visible version is "
                        f"v{latest[0]}={latest[1]!r}",
                        evidence=(latest[2], index)))
            else:
                if version == 0:
                    continue  # nothing visible at the requested time
                matches = [entry for entry in versions
                           if entry[0] == version and entry[1] == value]
                if not matches:
                    violations.append(Violation(
                        "CHK004", f"{event.node}/{slot[1]}",
                        f"point-in-time read returned v{version}={value!r}"
                        " which was never visible at this replica",
                        evidence=(index,)))
    return violations


# ---------------------------------------------------------------------------
# CHK005: quorum durability of committed writes
# ---------------------------------------------------------------------------

def check_quorum_durability(history: History) -> List[Violation]:
    violations: List[Violation] = []
    quorum = history.meta().get("quorum")
    if quorum is None:
        return violations  # hand-built history without topology facts
    # (txid, key) -> {node: first accept index}
    accepts: Dict[Tuple[str, str], Dict[str, int]] = {}
    for index, event in enumerate(history):
        if event.etype == "phase2b":
            if event.get("accepted") and event.get("decision") == "accepted":
                slot = (event.get("txid"), event.get("key"))
                accepts.setdefault(slot, {}).setdefault(event.node, index)
        elif event.etype == "tx_decided" and event.get("committed"):
            txid = event.get("txid")
            for key in tuple(event.get("keys") or ()):
                voters = accepts.get((txid, key), {})
                if len(voters) < quorum:
                    evidence = tuple([index] + sorted(voters.values()))
                    violations.append(Violation(
                        "CHK005", txid,
                        f"committed with {len(voters)} accept(s) for "
                        f"{key!r} — quorum is {quorum}; the write can be "
                        "lost to a minority failure", evidence=evidence))
    return violations


# ---------------------------------------------------------------------------
# CHK006: visible-version monotonicity per (node, key)
# ---------------------------------------------------------------------------

def check_version_monotonic(history: History) -> List[Violation]:
    violations: List[Violation] = []
    # (node, key) -> (last version, index)
    last: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for index, event in enumerate(history):
        if event.etype != "version_visible":
            continue
        slot = (event.node, event.get("key"))
        version = event.get("version")
        previous = last.get(slot)
        if previous is not None and version <= previous[0]:
            violations.append(Violation(
                "CHK006", f"{event.node}/{slot[1]}",
                f"visible version went from v{previous[0]} to v{version}",
                evidence=(previous[1], index)))
        last[slot] = (version, index)
    return violations


# ---------------------------------------------------------------------------
# CHK007: fast-quorum soundness
# ---------------------------------------------------------------------------

def check_fast_quorum(history: History) -> List[Violation]:
    violations: List[Violation] = []
    fast_quorum = history.meta().get("fast_quorum")
    if fast_quorum is None:
        return violations  # classic run or hand-built history
    # (key, seq, txid, decision) -> {acceptor node: first vote index}
    votes: Dict[Tuple[str, int, str, str], Dict[str, int]] = {}
    for index, event in enumerate(history):
        if event.etype == "phase2b":
            if event.get("accepted") and _is_fast(event.get("ballot")):
                slot = (event.get("key"), event.get("seq"),
                        event.get("txid"), event.get("decision"))
                votes.setdefault(slot, {}).setdefault(event.node, index)
        elif event.etype == "fast_chosen":
            slot = (event.get("key"), event.get("seq"),
                    event.get("txid"), event.get("decision"))
            voters = votes.get(slot, {})
            if len(voters) < fast_quorum:
                evidence = tuple([index] + sorted(voters.values()))
                violations.append(Violation(
                    "CHK007", event.get("txid"),
                    f"fast-learned {event.get('decision')!r} for "
                    f"{event.get('key')!r}@{event.get('seq')} backed by "
                    f"{len(voters)} fast vote(s) — fast quorum is "
                    f"{fast_quorum}", evidence=evidence))
    return violations


# ---------------------------------------------------------------------------
# CHK008: one value chosen per (key, seq) across fast and classic ballots
# ---------------------------------------------------------------------------

def check_collision_safety(history: History) -> List[Violation]:
    violations: List[Violation] = []
    meta = history.meta()
    quorum = meta.get("quorum")
    fast_quorum = meta.get("fast_quorum")
    # (key, seq) -> (txid, index where chosen, "fast" | "classic")
    chosen: Dict[Tuple[str, int], Tuple[str, int, str]] = {}
    # (key, seq, ballot, txid) -> {acceptor node: first accept index}
    accepts: Dict[Tuple[str, int, BallotKey, str], Dict[str, int]] = {}

    def record_chosen(key: str, seq: int, txid: str, index: int,
                      how: str) -> None:
        current = chosen.get((key, seq))
        if current is None:
            chosen[(key, seq)] = (txid, index, how)
        elif current[0] != txid and "fast" in (current[2], how):
            # Classic re-proposal over a *classic* instance after a
            # mastership transfer is CHK002's (permitted) territory;
            # here we guard the fast/classic boundary.
            violations.append(Violation(
                "CHK008", f"{key}@{seq}",
                f"two values chosen at instance {seq} of {key!r}: "
                f"{current[0]!r} ({current[2]}) then {txid!r} ({how}) — "
                "classic recovery overwrote a fast-chosen value",
                evidence=(current[1], index)))

    for index, event in enumerate(history):
        if event.etype != "phase2b" or not event.get("accepted"):
            continue
        ballot = event.get("ballot")
        slot = (event.get("key"), event.get("seq"), ballot,
                event.get("txid"))
        needed = fast_quorum if _is_fast(ballot) else quorum
        if needed is None:
            continue
        voters = accepts.setdefault(slot, {})
        voters.setdefault(event.node, index)
        if len(voters) == needed:
            record_chosen(slot[0], slot[1], slot[3], index,
                          "fast" if _is_fast(ballot) else "classic")
    return violations


# ---------------------------------------------------------------------------
# CHK009: the fast -> classic transition is one-way per (txid, key)
# ---------------------------------------------------------------------------

def check_mode_monotonic(history: History) -> List[Violation]:
    violations: List[Violation] = []
    _FAST_EVENTS = ("fast_propose", "fast_chosen", "fast_fallback")
    # (txid, key) -> (state, index): "proposed" | "chosen" | "fallback"
    state: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for index, event in enumerate(history):
        if event.etype not in _FAST_EVENTS:
            continue
        slot = (event.get("txid"), event.get("key"))
        where = f"{slot[0]}/{slot[1]}"
        current = state.get(slot)
        if event.etype == "fast_propose":
            if current is not None:
                violations.append(Violation(
                    "CHK009", where,
                    f"fast proposal issued again while already "
                    f"{current[0]} — the fast round must run at most once",
                    evidence=(current[1], index)))
            else:
                state[slot] = ("proposed", index)
        else:
            terminal = ("chosen" if event.etype == "fast_chosen"
                        else "fallback")
            if current is None:
                violations.append(Violation(
                    "CHK009", where,
                    f"fast round reported {terminal} without a fast "
                    "proposal", evidence=(index,)))
            elif current[0] != "proposed":
                violations.append(Violation(
                    "CHK009", where,
                    f"fast round reported {terminal} after it already "
                    f"ended as {current[0]} — the fast→classic "
                    "transition must be one-way",
                    evidence=(current[1], index)))
            else:
                state[slot] = (terminal, index)
    return violations


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

Checker = Callable[[History], List[Violation]]

#: code -> (one-line description, checker) in catalogue order.
CHECKS: Dict[str, Tuple[str, Checker]] = {
    "CHK001": ("acceptors never go below a promised ballot",
               check_ballot_monotonic),
    "CHK002": ("one value chosen per (key, instance, ballot)",
               check_unique_chosen),
    "CHK003": ("replicas and TM agree on every commit/abort verdict",
               check_decision_agreement),
    "CHK004": ("reads return the latest (or a previously) visible version",
               check_read_committed),
    "CHK005": ("committed writes are durable on a majority",
               check_quorum_durability),
    "CHK006": ("visible versions only move forward",
               check_version_monotonic),
    "CHK007": ("fast-learned verdicts are backed by a full fast quorum",
               check_fast_quorum),
    "CHK008": ("one value chosen per instance across fast/classic ballots",
               check_collision_safety),
    "CHK009": ("the fast→classic transition is one-way per (txid, key)",
               check_mode_monotonic),
}


def check_history(history: History,
                  codes: Optional[List[str]] = None) -> List[Violation]:
    """Run the selected (default: all) checkers over ``history``."""
    selected = list(CHECKS) if codes is None else list(codes)
    violations: List[Violation] = []
    for code in selected:
        try:
            _description, checker = CHECKS[code]
        except KeyError:
            raise ValueError(f"unknown invariant {code!r}") from None
        violations.extend(checker(history))
    return violations
