"""The typed metrics registry: counters, gauges, virtual-time histograms.

A :class:`MetricsRegistry` is installed on the kernel as
``Environment.metrics``.  Instrumentation sites throughout the
simulator guard on ``env.metrics is not None`` — the same zero-cost
contract as ``Environment.trace`` — and then call the registry's flat
hot-path API::

    metrics = env.metrics
    if metrics is not None:
        metrics.inc("transport.sent")
        metrics.observe("paxos.round_ms", elapsed, label=key)

Every metric holds *labeled series*: one independent value (or bucket
vector) per label string, with ``""`` as the unlabeled default.  Names
are dotted ``layer.metric`` strings (``transport.dropped``,
``planet.admission``); see ``docs/observability.md`` for the naming
conventions and the catalogue of built-in instrumentation points.

Determinism: registries observe only virtual-time quantities and
deterministic counts, store them in insertion-ordered dicts, and render
:meth:`MetricsRegistry.dump` with sorted keys — two runs with the same
seed produce byte-identical dumps (and :meth:`MetricsRegistry.digest`
values), which the determinism tests pin.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Default histogram bucket upper bounds, in virtual milliseconds.
#: Chosen to resolve both local RPCs (sub-ms) and cross-continent
#: commit latencies (hundreds of ms) on the paper's EC2 topology.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0)

MetricValue = Union[float, Dict[str, object]]


class Counter:
    """A monotonically increasing sum per label."""

    kind = "counter"

    __slots__ = ("name", "series")

    def __init__(self, name: str):
        self.name = name
        self.series: Dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: str = "") -> None:
        self.series[label] = self.series.get(label, 0.0) + amount

    def value(self, label: str = "") -> float:
        return self.series.get(label, 0.0)

    def total(self) -> float:
        return sum(self.series.values())

    def dump(self) -> Dict[str, float]:
        return {label: self.series[label] for label in sorted(self.series)}


class Gauge:
    """A point-in-time value per label (last write wins)."""

    kind = "gauge"

    __slots__ = ("name", "series")

    def __init__(self, name: str):
        self.name = name
        self.series: Dict[str, float] = {}

    def set(self, value: float, label: str = "") -> None:
        self.series[label] = value

    def value(self, label: str = "") -> float:
        return self.series.get(label, 0.0)

    def dump(self) -> Dict[str, float]:
        return {label: self.series[label] for label in sorted(self.series)}


class HistogramSeries:
    """One label's bucket vector plus running summary statistics."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        #: ``len(bounds) + 1`` buckets; the last one is the overflow.
        self.buckets: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        # First bucket whose bound is >= value; len(bounds) = overflow.
        index = bisect.bisect_left(self.bounds, value)
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The bucket upper bound covering quantile ``q`` (conservative:
        the overflow bucket reports the exact observed maximum)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def dump(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": list(self.buckets),
        }


class Histogram:
    """A virtual-time distribution per label, on fixed bucket bounds."""

    kind = "histogram"

    __slots__ = ("name", "bounds", "series")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None):
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if list(chosen) != sorted(chosen) or len(set(chosen)) != len(chosen):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = chosen
        self.series: Dict[str, HistogramSeries] = {}

    def observe(self, value: float, label: str = "") -> None:
        series = self.series.get(label)
        if series is None:
            series = HistogramSeries(self.bounds)
            self.series[label] = series
        series.observe(value)

    def labeled(self, label: str = "") -> Optional[HistogramSeries]:
        return self.series.get(label)

    def count(self, label: str = "") -> int:
        series = self.series.get(label)
        return series.count if series is not None else 0

    def dump(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "series": {label: self.series[label].dump()
                       for label in sorted(self.series)},
        }


class MetricsRegistry:
    """All metrics of one run, addressable by dotted name.

    The three ``inc``/``set_gauge``/``observe`` methods are the
    hot-path API the instrumentation sites use: they create the metric
    on first touch, so call sites never pre-register anything.  The
    typed accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) are for consumers that want the full object.
    """

    __slots__ = ("default_buckets", "_counters", "_gauges", "_histograms",
                 "_hist_bounds")

    def __init__(self,
                 default_buckets: Optional[Sequence[float]] = None):
        self.default_buckets: Tuple[float, ...] = (
            tuple(default_buckets) if default_buckets is not None
            else DEFAULT_BUCKETS)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Per-name bucket overrides installed via :meth:`histogram`.
        self._hist_bounds: Dict[str, Tuple[float, ...]] = {}

    # -- hot-path API -----------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, label: str = "") -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        counter.inc(amount, label)

    def set_gauge(self, name: str, value: float, label: str = "") -> None:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        gauge.set(value, label)

    def observe(self, name: str, value: float, label: str = "") -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(
                name, self._hist_bounds.get(name, self.default_buckets))
            self._histograms[name] = histogram
        histogram.observe(value, label)

    # -- typed accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if bounds is not None:
                self._hist_bounds[name] = tuple(bounds)
            histogram = Histogram(
                name, self._hist_bounds.get(name, self.default_buckets))
            self._histograms[name] = histogram
        elif bounds is not None and tuple(bounds) != histogram.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with other bounds")
        return histogram

    # -- convenience reads --------------------------------------------------

    def counter_value(self, name: str, label: str = "") -> float:
        counter = self._counters.get(name)
        return counter.value(label) if counter is not None else 0.0

    def gauge_value(self, name: str, label: str = "") -> float:
        gauge = self._gauges.get(name)
        return gauge.value(label) if gauge is not None else 0.0

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- export ----------------------------------------------------------------

    def dump(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested dict: kind -> name -> series dump."""
        return {
            "counters": {name: self._counters[name].dump()
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].dump()
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].dump()
                           for name in sorted(self._histograms)},
        }

    def dump_json(self) -> str:
        return json.dumps(self.dump(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 over the canonical JSON dump — pin it in tests to
        assert two runs produced byte-identical metrics."""
        return hashlib.sha256(self.dump_json().encode("utf-8")).hexdigest()

    def render(self, max_labels: int = 8) -> str:
        """Plain-text summary table for CLI output and reports."""
        lines: List[str] = []
        for name in sorted(self._counters):
            counter = self._counters[name]
            labels = sorted(counter.series)
            if labels == [""]:
                lines.append(f"{name:<36} {counter.value():>14.0f}")
                continue
            lines.append(f"{name:<36} {counter.total():>14.0f}")
            for label in labels[:max_labels]:
                lines.append(f"  {label:<34} {counter.value(label):>14.0f}")
            if len(labels) > max_labels:
                lines.append(f"  ... {len(labels) - max_labels} more label(s)")
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            for label in sorted(gauge.series)[:max_labels]:
                shown = f"{name}{{{label}}}" if label else name
                lines.append(f"{shown:<36} {gauge.value(label):>14.3f}")
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            for label in sorted(histogram.series)[:max_labels]:
                series = histogram.series[label]
                shown = f"{name}{{{label}}}" if label else name
                lines.append(
                    f"{shown:<36} n={series.count:<8d} "
                    f"mean={series.mean:9.2f} p50={series.quantile(0.5):9.2f} "
                    f"p95={series.quantile(0.95):9.2f} max={series.max:9.2f}")
        return "\n".join(lines)
