"""repro.obs — the unified observability layer.

Three pieces, all deterministic in virtual time:

* a typed **metrics registry** (:mod:`repro.obs.metrics`): counters,
  gauges, and virtual-time histograms with labeled series.  A registry
  is installed on the kernel as ``Environment.metrics``; every
  instrumentation point in the simulator guards on
  ``env.metrics is not None``, so runs without a registry pay only an
  attribute check — the same zero-cost contract as
  ``Environment.trace`` (verified by the ``obs`` bench in
  ``python -m repro.perf``);
* **causal span tracing** (:mod:`repro.obs.spans`): a
  :class:`~repro.obs.spans.SpanRecorder` installed as
  ``Environment.spans``.  Span context rides on
  :class:`~repro.net.transport.Message`, so one transaction's spans
  stitch across nodes into a single tree covering the paper's stages
  (admission → propose → accept fan-out → learn → visibility).  Span
  ids are derived from txids / keys / message ids, so traces are
  seed-reproducible and digest-pinnable;
* **exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``, one track per node),
  per-stage commit-latency breakdowns, and deterministic metric dumps.

:class:`~repro.obs.record.ObsSession` bundles registry + recorder and
attaches them to a kernel; ``python -m repro.obs`` records seeded runs
and exports their artifacts.  The legacy helpers formerly living in
``repro.harness.{metrics,tracing,monitoring}`` now live here
(:mod:`repro.obs.txmetrics`, :mod:`repro.obs.txtrace`,
:mod:`repro.obs.monitor`); the old modules remain as thin compat
shims.

See ``docs/observability.md`` for the span model and the metric
naming conventions.
"""

from repro.obs.export import (
    breakdown_json,
    breakdown_table,
    chrome_trace,
    stage_breakdown,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.record import ObsSession, load_artifacts
from repro.obs.timeseries import (
    BinnedSeries,
    RecoveryMetrics,
    binned_rate,
    extract_recovery,
    quantile,
)
from repro.obs.spans import (
    STAGES,
    Span,
    SpanRecorder,
    TxSpanSet,
    span_id_for,
    trace_id_for,
)
from repro.obs.txmetrics import MetricsCollector, TxRecord

__all__ = [
    "BinnedSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "ObsSession",
    "RecoveryMetrics",
    "STAGES",
    "Span",
    "SpanRecorder",
    "TxRecord",
    "TxSpanSet",
    "binned_rate",
    "breakdown_json",
    "breakdown_table",
    "chrome_trace",
    "extract_recovery",
    "load_artifacts",
    "quantile",
    "span_id_for",
    "stage_breakdown",
    "trace_id_for",
    "write_chrome_trace",
]
