"""Per-transaction records and the aggregate series the figures plot.

Moved here from ``repro.harness.metrics`` when the observability layer
was unified under ``repro.obs``; the old module remains as a compat
shim re-exporting these names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class TxRecord:
    """Everything the harness knows about one finished transaction.

    Times are absolute virtual ms.  For the traditional baseline
    ``app_outcome`` is what the application saw by the timeout
    (``"committed"`` / ``"aborted"`` / ``"unknown"``); for PLANET the
    stage fields say which block ran.
    """

    system: str                    # "planet" | "traditional"
    issued_ms: float
    timeout_ms: float
    hot: bool
    size: int
    admitted: bool = True          # False: turned away by admission control
    accepted_ms: Optional[float] = None
    decided_ms: Optional[float] = None
    committed: Optional[bool] = None
    spec_ms: Optional[float] = None
    spec_incorrect: bool = False
    app_outcome: Optional[str] = None
    stage_fired: Optional[str] = None
    stage_fired_ms: Optional[float] = None

    # -- derived -----------------------------------------------------------

    @property
    def rejected(self) -> bool:
        return not self.admitted

    @property
    def response_ms(self) -> Optional[float]:
        """Commit-response latency: speculative report, else decision."""
        if self.spec_ms is not None:
            return self.spec_ms - self.issued_ms
        if self.decided_ms is not None:
            return self.decided_ms - self.issued_ms
        return None

    @property
    def decided_before_timeout(self) -> bool:
        return (self.decided_ms is not None
                and self.decided_ms - self.issued_ms <= self.timeout_ms)

    @property
    def accepted_before_timeout(self) -> bool:
        return (self.accepted_ms is not None
                and self.accepted_ms - self.issued_ms <= self.timeout_ms)

    def outcome_class(self, timeout_ms: Optional[float] = None) -> str:
        """The Figure 5 outcome taxonomy.

        Traditional: ``commit`` / ``abort`` if decided within the
        timeout, else ``unknown``.  PLANET adds ``accept-commit`` /
        ``accept-abort`` for transactions accepted within the timeout
        whose outcome (learned via finally callbacks) arrived later,
        and ``rejected`` for admission-control rejections.

        ``timeout_ms`` overrides the record's own timeout — the
        Figure 5 sweep reclassifies one run against many hypothetical
        timeouts, which is valid because (absent speculation and
        admission control) the timeout only changes which stage block
        runs, never the protocol.
        """
        timeout = self.timeout_ms if timeout_ms is None else timeout_ms
        if self.rejected:
            return "rejected"
        if (self.decided_ms is not None
                and self.decided_ms - self.issued_ms <= timeout):
            return "commit" if self.committed else "abort"
        if (self.system == "planet" and self.accepted_ms is not None
                and self.accepted_ms - self.issued_ms <= timeout):
            if self.committed is None:
                return "unknown"
            return "accept-commit" if self.committed else "accept-abort"
        return "unknown"


class MetricsCollector:
    """Aggregates transaction records over one measurement window.

    Two windowings coexist, as in any real benchmark:

    * **throughput** metrics (``commit_tps``, ``abort_tps``,
      ``rejected_tps``) count events by when the *decision happened*
      inside the window — under saturation, queued work decided after
      the window must not be credited to it;
    * **per-transaction** metrics (response times, outcome classes,
      speculation statistics) consider transactions *issued* inside
      the window, following them to their eventual fate.

    Feed ``add`` every record of the run, warmup included.
    """

    def __init__(self, window_start_ms: float, window_end_ms: float):
        if window_end_ms <= window_start_ms:
            raise ValueError("empty measurement window")
        self.window_start_ms = window_start_ms
        self.window_end_ms = window_end_ms
        self.all_records: List[TxRecord] = []

    # -- collection ----------------------------------------------------------

    def add(self, record: TxRecord) -> None:
        self.all_records.append(record)

    @property
    def records(self) -> List[TxRecord]:
        """Transactions issued inside the measurement window."""
        return [r for r in self.all_records
                if self.window_start_ms <= r.issued_ms < self.window_end_ms]

    def _decided_in_window(self, record: TxRecord) -> bool:
        when = record.decided_ms
        return (when is not None
                and self.window_start_ms <= when < self.window_end_ms)

    @property
    def window_seconds(self) -> float:
        return (self.window_end_ms - self.window_start_ms) / 1000.0

    # -- counts (issued-in-window transactions) ----------------------------------

    def _attempted(self) -> List[TxRecord]:
        return [r for r in self.records if r.admitted]

    @property
    def n_issued(self) -> int:
        return len(self.records)

    @property
    def n_committed(self) -> int:
        return sum(1 for r in self.records if r.committed)

    @property
    def n_aborted(self) -> int:
        return sum(1 for r in self.records
                   if r.admitted and r.committed is False)

    @property
    def n_rejected(self) -> int:
        return sum(1 for r in self.records if r.rejected)

    @property
    def n_spec(self) -> int:
        return sum(1 for r in self.records if r.spec_ms is not None)

    @property
    def n_spec_incorrect(self) -> int:
        return sum(1 for r in self.records if r.spec_incorrect)

    # -- rates (decided-in-window events) ---------------------------------------------

    def commit_tps(self, hot: Optional[bool] = None) -> float:
        commits = [r for r in self.all_records
                   if r.committed and self._decided_in_window(r)]
        if hot is not None:
            commits = [r for r in commits if r.hot == hot]
        return len(commits) / self.window_seconds

    def abort_tps(self) -> float:
        aborts = [r for r in self.all_records
                  if r.admitted and r.committed is False
                  and self._decided_in_window(r)]
        return len(aborts) / self.window_seconds

    def rejected_tps(self) -> float:
        rejected = [r for r in self.all_records
                    if r.rejected and self._decided_in_window(r)]
        return len(rejected) / self.window_seconds

    def abort_rate(self) -> float:
        """Aborted / attempted among issued-in-window transactions."""
        attempted = self._attempted()
        if not attempted:
            return 0.0
        return (sum(1 for r in attempted if r.committed is False)
                / len(attempted))

    def spec_fraction(self) -> float:
        """Speculative commits / committed transactions."""
        commits = [r for r in self.records if r.committed]
        if not commits:
            return 0.0
        return sum(1 for r in commits if r.spec_ms is not None) / len(commits)

    def spec_incorrect_fraction(self) -> float:
        """Incorrect speculative commits / speculative commits."""
        if self.n_spec == 0:
            return 0.0
        return self.n_spec_incorrect / self.n_spec

    # -- latencies ------------------------------------------------------------------------

    def response_times(self, committed_only: bool = True,
                       include_spec: bool = True) -> List[float]:
        times = []
        for record in self.records:
            if committed_only and not (record.committed
                                       or record.spec_ms is not None):
                continue
            if record.rejected:
                continue
            if include_spec:
                value = record.response_ms
            else:
                value = (record.decided_ms - record.issued_ms
                         if record.decided_ms is not None else None)
            if value is not None:
                times.append(value)
        return times

    def mean_response_ms(self, **kwargs) -> float:
        times = self.response_times(**kwargs)
        return sum(times) / len(times) if times else 0.0

    def percentile_response_ms(self, q: float, **kwargs) -> float:
        times = sorted(self.response_times(**kwargs))
        if not times:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("q outside [0, 1]")
        index = min(int(q * len(times)), len(times) - 1)
        return times[index]

    def response_cdf(self, points_ms: Sequence[float],
                     **kwargs) -> List[float]:
        """Fraction of responses at or below each point (Figure 9)."""
        times = sorted(self.response_times(**kwargs))
        if not times:
            return [0.0] * len(points_ms)
        cdf = []
        for point in points_ms:
            import bisect
            count = bisect.bisect_right(times, point)
            cdf.append(count / len(times))
        return cdf

    # -- outcome taxonomy (Figure 5) ---------------------------------------------------------

    def outcome_breakdown(
            self, timeout_ms: Optional[float] = None) -> Dict[str, float]:
        """Fractions per outcome class over all issued transactions.

        ``timeout_ms`` reclassifies against a hypothetical timeout
        (the Figure 5 sweep).
        """
        if not self.records:
            return {}
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.outcome_class(timeout_ms)
            counts[key] = counts.get(key, 0) + 1
        return {key: count / len(self.records)
                for key, count in sorted(counts.items())}

    # -- commit-type taxonomy (Figure 10) -----------------------------------------------------

    def commit_type_breakdown(self) -> Dict[str, float]:
        """Normal / spec / incorrect-spec / abort / rejected as TPS."""
        seconds = self.window_seconds
        normal = spec = bad_spec = aborts = rejected = 0
        for record in self.records:
            if record.rejected:
                rejected += 1
            elif record.spec_incorrect:
                bad_spec += 1
            elif record.spec_ms is not None:
                spec += 1
            elif record.committed:
                normal += 1
            elif record.committed is False:
                aborts += 1
        return {
            "commits": normal / seconds,
            "spec": spec / seconds,
            "incorrect_spec": bad_spec / seconds,
            "aborts": aborts / seconds,
            "rejected": rejected / seconds,
        }
