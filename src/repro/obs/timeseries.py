"""Windowed virtual-time series and degradation/recovery extraction.

The scenario catalogue (:mod:`repro.scenarios`) judges a run not by
its aggregate commit rate but by its *shape*: how deep throughput
dipped when the environment degraded, and how long the system took to
climb back once it healed.  This module provides the two pieces:

* :func:`binned_rate` turns a list of event timestamps (commit
  decisions, usually) into a fixed-bin per-second rate series —
  the windowed commit-rate series the recovery gates run on;
* :func:`extract_recovery` walks such a series around a disturbance
  window and reports the paper-style recovery metrics: pre-fault
  baseline, dip depth, and time-to-recover to a fraction of the
  baseline (95 % by default), sustained for a few bins so a single
  lucky bin does not count as recovery.

Everything here is pure data-plumbing over virtual-time floats — no
randomness, no wall clock — so two runs with the same seed produce
byte-identical series and metrics (the scenario determinism tests pin
that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BinnedSeries:
    """A fixed-bin series over virtual time (values are per-second)."""

    start_ms: float
    bin_ms: float
    values: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.values)

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.bin_ms * len(self.values)

    def bin_start_ms(self, index: int) -> float:
        """Left edge of bin ``index``."""
        return self.start_ms + index * self.bin_ms

    def index_of(self, t_ms: float) -> int:
        """Index of the bin containing ``t_ms`` (clamped to range)."""
        index = int((t_ms - self.start_ms) // self.bin_ms)
        return max(0, min(index, len(self.values) - 1))

    def mean_over(self, t0_ms: float, t1_ms: float) -> float:
        """Mean value of the bins whose *start* lies in [t0, t1)."""
        chosen = [value for index, value in enumerate(self.values)
                  if t0_ms <= self.bin_start_ms(index) < t1_ms]
        if not chosen:
            return 0.0
        return sum(chosen) / len(chosen)


def binned_rate(events_ms: Sequence[float], start_ms: float,
                end_ms: float, bin_ms: float) -> BinnedSeries:
    """Events-per-second in fixed bins over ``[start_ms, end_ms)``.

    Events outside the range are ignored; the bin grid is anchored at
    ``start_ms`` so two runs over the same window share bin edges.
    """
    if bin_ms <= 0:
        raise ValueError("bin width must be positive")
    if end_ms <= start_ms:
        raise ValueError("empty series window")
    n_bins = max(int((end_ms - start_ms) // bin_ms), 1)
    counts = [0] * n_bins
    for event in events_ms:
        if start_ms <= event < start_ms + n_bins * bin_ms:
            counts[int((event - start_ms) // bin_ms)] += 1
    scale = 1000.0 / bin_ms
    return BinnedSeries(start_ms=start_ms, bin_ms=bin_ms,
                        values=tuple(count * scale for count in counts))


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q`` quantile of ``values`` (nearest-rank, 0 when empty)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q {q} outside [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


@dataclass(frozen=True)
class RecoveryMetrics:
    """How one arm degraded and recovered around a disturbance window.

    ``baseline_rate``
        Mean windowed rate over the pre-disturbance span (events/s).
    ``dip_rate`` / ``dip_depth``
        The lowest bin between the disturbance start and the recovery
        point (or the series end), and its depth as a fraction of the
        baseline (0 = no dip, 1 = throughput hit zero).
    ``recovery_ms`` / ``recovered``
        Virtual ms from the *end* of the disturbance window until the
        first window of ``sustain_bins`` consecutive bins whose
        *mean* reaches ``threshold`` × baseline; 0 if the rate was
        already back when the disturbance ended.  The rolling mean —
        rather than every bin individually — keeps Poisson bin noise
        from deferring recovery forever at CI rates.  ``recovery_ms``
        is ``None`` when the series ends without such a window — the
        scenario never recovered, which the CI gate fails.
    """

    baseline_rate: float
    dip_rate: float
    dip_depth: float
    recovery_ms: Optional[float]
    recovered: bool
    threshold: float

    def row(self) -> Tuple[float, float, float, str]:
        """(baseline, dip rate, dip depth, recovery) display tuple."""
        recovery = (f"{self.recovery_ms:.0f}" if self.recovery_ms is not None
                    else "never")
        return (self.baseline_rate, self.dip_rate, self.dip_depth, recovery)


def extract_recovery(series: BinnedSeries, fault_start_ms: float,
                     fault_end_ms: float,
                     baseline_start_ms: Optional[float] = None,
                     threshold: float = 0.95,
                     sustain_bins: int = 2,
                     baseline_cap: Optional[float] = None,
                     ) -> RecoveryMetrics:
    """Degradation/recovery metrics for one disturbance window.

    The baseline is the mean rate over
    ``[baseline_start_ms, fault_start_ms)`` (the whole pre-fault
    series by default).  Recovery is the first window of
    ``sustain_bins`` consecutive bins, starting at or after
    ``fault_end_ms``, whose mean reaches ``threshold * baseline``;
    the dip is the lowest bin from the disturbance start up to that
    recovery point.

    ``baseline_cap`` clamps the baseline estimate — pass the offered
    rate when it is known, so a lucky pre-fault stretch of the
    arrival process cannot set a bar above what the system can
    sustain long-run (which would misreport a healthy run as
    never-recovering).
    """
    if fault_end_ms < fault_start_ms:
        raise ValueError("disturbance window ends before it starts")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold {threshold} outside (0, 1]")
    if sustain_bins < 1:
        raise ValueError("sustain_bins must be >= 1")
    baseline_start = (series.start_ms if baseline_start_ms is None
                      else baseline_start_ms)
    baseline = series.mean_over(baseline_start, fault_start_ms)
    if baseline_cap is not None:
        baseline = min(baseline, baseline_cap)
    if baseline <= 0.0:
        # Degenerate: nothing committed before the disturbance, so
        # there is no level to recover to.  Report a full-depth dip
        # and no recovery — the gate treats this as a failure, which
        # is the honest reading of a scenario that never got going.
        return RecoveryMetrics(baseline_rate=0.0, dip_rate=0.0,
                               dip_depth=1.0, recovery_ms=None,
                               recovered=False, threshold=threshold)
    bar = threshold * baseline
    first_fault_bin = series.index_of(fault_start_ms)
    # First bin that starts at or after the window closes — a bin
    # edge exactly at fault_end counts as post-fault.
    offset = (fault_end_ms - series.start_ms) / series.bin_ms
    first_after_bin = min(max(int(math.ceil(offset)), 0),
                          len(series.values))
    # First post-disturbance window whose rolling mean clears the bar.
    recovery_index: Optional[int] = None
    for index in range(first_after_bin,
                       len(series.values) - sustain_bins + 1):
        window = series.values[index:index + sustain_bins]
        if sum(window) / sustain_bins >= bar:
            recovery_index = index
            break
    dip_span_end = (recovery_index if recovery_index is not None
                    else len(series.values))
    dip_values: List[float] = list(
        series.values[first_fault_bin:dip_span_end])
    dip_rate = min(dip_values) if dip_values else baseline
    dip_depth = max(0.0, min(1.0, 1.0 - dip_rate / baseline))
    if recovery_index is None:
        return RecoveryMetrics(baseline_rate=baseline, dip_rate=dip_rate,
                               dip_depth=dip_depth, recovery_ms=None,
                               recovered=False, threshold=threshold)
    recovery_ms = max(series.bin_start_ms(recovery_index) - fault_end_ms,
                      0.0)
    return RecoveryMetrics(baseline_rate=baseline, dip_rate=dip_rate,
                           dip_depth=dip_depth, recovery_ms=recovery_ms,
                           recovered=True, threshold=threshold)
