"""Exporters: Chrome trace-event JSON, per-stage latency breakdowns.

``chrome_trace`` renders a span list in the Chrome trace-event format
(the JSON flavour Perfetto and ``chrome://tracing`` load directly):
one process, one *track per simulated node* (thread-name metadata),
one complete ("X") event per finished span, with virtual milliseconds
mapped to trace microseconds.

``stage_breakdown`` folds a span list into per-transaction stage
timings (admission / propose / accept / learn / visibility) and checks
they sum to the root span's end-to-end duration — the table the
paper's latency arguments are made from.

All functions accept either live :class:`~repro.obs.spans.Span`
objects or the plain dicts produced by
:meth:`~repro.obs.spans.SpanRecorder.dump` (i.e. reloaded artifacts).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.spans import STAGES, Span

SpanLike = Union[Span, Mapping[str, object]]


def _as_dict(span: SpanLike) -> Dict[str, object]:
    if isinstance(span, Span):
        return span.to_dict()
    return dict(span)


def _as_dicts(spans: Sequence[SpanLike]) -> List[Dict[str, object]]:
    return [_as_dict(span) for span in spans]


def _float(value: object, default: float = 0.0) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return default


def _str(value: object) -> str:
    return value if isinstance(value, str) else ""


# -- Chrome trace-event JSON ------------------------------------------------


def chrome_trace(spans: Sequence[SpanLike],
                 label: str = "repro") -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object.

    Open spans (no ``end_ms``) are rendered as zero-duration events so
    nothing is silently dropped; their ``unfinished`` attribute (set by
    :meth:`SpanRecorder.finish_open`) survives in ``args``.
    """
    records = _as_dicts(spans)
    # One track per node.  dict.fromkeys keeps first-seen order; the
    # sort makes track numbering independent of event order.
    nodes = sorted(dict.fromkeys(_str(r.get("node")) for r in records))
    tids = {node: index + 1 for index, node in enumerate(nodes)}

    events: List[Dict[str, object]] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": label},
    }]
    for node in nodes:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1,
            "tid": tids[node], "args": {"name": node},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": 1,
            "tid": tids[node], "args": {"sort_index": tids[node]},
        })
    for record in records:
        start_ms = _float(record.get("start_ms"))
        end_ms = record.get("end_ms")
        duration_ms = (_float(end_ms) - start_ms
                       if isinstance(end_ms, (int, float)) else 0.0)
        attrs = record.get("attrs")
        args: Dict[str, object] = {
            "trace_id": _str(record.get("trace_id")),
            "span_id": _str(record.get("span_id")),
            "parent_id": record.get("parent_id"),
        }
        if isinstance(attrs, Mapping):
            for key in sorted(attrs):
                args[str(key)] = attrs[key]
        events.append({
            "ph": "X",
            "name": _str(record.get("name")),
            "cat": "span",
            # Trace-event timestamps are microseconds.
            "ts": round(start_ms * 1000.0, 3),
            "dur": round(max(duration_ms, 0.0) * 1000.0, 3),
            "pid": 1,
            "tid": tids[_str(record.get("node"))],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[SpanLike],
                       label: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(chrome_trace(spans, label=label), stream,
                  sort_keys=True, separators=(",", ":"))
        stream.write("\n")


# -- per-stage breakdowns ----------------------------------------------------


@dataclass
class TxBreakdown:
    """Stage timings of one transaction, from its span tree."""

    txid: str
    trace_id: str
    start_ms: float
    e2e_ms: float
    committed: Optional[bool]
    cancelled: bool
    unfinished: bool
    stage_ms: Dict[str, float] = field(default_factory=dict)
    #: Distinct nodes any span of the trace ran on.
    nodes: List[str] = field(default_factory=list)

    @property
    def stage_sum_ms(self) -> float:
        return sum(self.stage_ms.values())

    @property
    def complete(self) -> bool:
        """All five stages present and the chain closed cleanly."""
        return (not self.unfinished and not self.cancelled
                and all(stage in self.stage_ms for stage in STAGES))

    def to_dict(self) -> Dict[str, object]:
        return {
            "txid": self.txid,
            "trace_id": self.trace_id,
            "start_ms": self.start_ms,
            "e2e_ms": self.e2e_ms,
            "committed": self.committed,
            "cancelled": self.cancelled,
            "unfinished": self.unfinished,
            "stage_ms": {name: self.stage_ms[name]
                         for name in sorted(self.stage_ms)},
            "nodes": list(self.nodes),
        }


def stage_breakdown(spans: Sequence[SpanLike]) -> List[TxBreakdown]:
    """Per-transaction stage breakdowns, ordered by start time."""
    records = _as_dicts(spans)
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        by_trace.setdefault(_str(record.get("trace_id")), []).append(record)

    breakdowns: List[TxBreakdown] = []
    for trace_id, trace_spans in by_trace.items():
        root = next((r for r in trace_spans
                     if _str(r.get("name")) == "tx"), None)
        if root is None:
            continue
        attrs = root.get("attrs")
        root_attrs: Mapping[str, object] = (
            attrs if isinstance(attrs, Mapping) else {})
        committed = root_attrs.get("committed")
        start_ms = _float(root.get("start_ms"))
        end_ms = root.get("end_ms")
        e2e = (_float(end_ms) - start_ms
               if isinstance(end_ms, (int, float)) else 0.0)
        unfinished = bool(root_attrs.get("unfinished"))
        stage_ms: Dict[str, float] = {}
        root_id = _str(root.get("span_id"))
        for record in trace_spans:
            name = _str(record.get("name"))
            if name in STAGES and record.get("parent_id") == root_id:
                s_end = record.get("end_ms")
                s_attrs = record.get("attrs")
                if (isinstance(s_attrs, Mapping)
                        and s_attrs.get("unfinished")):
                    unfinished = True
                if isinstance(s_end, (int, float)):
                    stage_ms[name] = (_float(s_end)
                                      - _float(record.get("start_ms")))
        nodes = sorted(dict.fromkeys(
            _str(r.get("node")) for r in trace_spans))
        breakdowns.append(TxBreakdown(
            txid=_str(root_attrs.get("txid")) or trace_id,
            trace_id=trace_id,
            start_ms=start_ms,
            e2e_ms=e2e,
            committed=committed if isinstance(committed, bool) else None,
            cancelled=bool(root_attrs.get("cancelled")),
            unfinished=unfinished,
            stage_ms=stage_ms,
            nodes=nodes,
        ))
    breakdowns.sort(key=lambda b: (b.start_ms, b.txid))
    return breakdowns


def breakdown_json(breakdowns: Sequence[TxBreakdown]) -> str:
    return json.dumps([b.to_dict() for b in breakdowns],
                      sort_keys=True, separators=(",", ":"))


def breakdown_table(breakdowns: Sequence[TxBreakdown],
                    limit: Optional[int] = None) -> str:
    """Plain-text per-stage table (one row per transaction)."""
    headers = (["txid", "outcome"] + [f"{s}_ms" for s in STAGES]
               + ["e2e_ms", "nodes"])
    rows: List[List[str]] = []
    shown = breakdowns if limit is None else breakdowns[:limit]
    for b in shown:
        if b.cancelled:
            outcome = "rejected"
        elif b.unfinished:
            outcome = "unfinished"
        elif b.committed is None:
            outcome = "?"
        else:
            outcome = "commit" if b.committed else "abort"
        rows.append([b.txid, outcome]
                    + [f"{b.stage_ms.get(s, 0.0):.2f}" for s in STAGES]
                    + [f"{b.e2e_ms:.2f}", str(len(b.nodes))])
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i >= 2
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    if limit is not None and len(breakdowns) > limit:
        lines.append(f"... {len(breakdowns) - limit} more transaction(s)")
    return "\n".join(lines)


def stage_summary(breakdowns: Sequence[TxBreakdown]) -> Dict[str, float]:
    """Mean per-stage milliseconds over the complete transactions."""
    complete = [b for b in breakdowns if b.complete]
    if not complete:
        return {}
    summary: Dict[str, float] = {}
    for stage in STAGES:
        summary[stage] = (sum(b.stage_ms[stage] for b in complete)
                         / len(complete))
    summary["e2e"] = sum(b.e2e_ms for b in complete) / len(complete)
    return summary
