"""Bundling the registry + recorder and attaching them to a kernel.

:class:`ObsSession` is the one-stop entry point::

    session = ObsSession()
    session.install(env)      # env.metrics / env.spans now live
    ...run the simulation...
    session.detach(env)       # closes open spans, uninstalls
    session.save("run.obs.json", meta={"seed": 7})

Artifacts are a single JSON document holding the metric dump and the
span list (plus caller-supplied metadata); ``load_artifacts`` reads
one back for the exporters, which accept span dicts directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

#: Artifact schema version, bumped on incompatible layout changes.
ARTIFACT_VERSION = 1


class ObsSession:
    """One run's observability state: registry + span recorder.

    Either half can be disabled (``metrics=False`` / ``spans=False``)
    to measure the cost of the other in isolation.
    """

    __slots__ = ("registry", "recorder")

    def __init__(self, metrics: bool = True, spans: bool = True,
                 buckets: Optional[Sequence[float]] = None):
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry(default_buckets=buckets) if metrics else None)
        self.recorder: Optional[SpanRecorder] = (
            SpanRecorder(metrics=self.registry) if spans else None)

    def install(self, env: Any) -> None:
        """Attach to a kernel: instrumentation sites light up."""
        env.metrics = self.registry
        env.spans = self.recorder

    def detach(self, env: Any) -> None:
        """Uninstall and close any spans the run left open."""
        if self.recorder is not None:
            self.recorder.finish_open(env.now)
        env.metrics = None
        env.spans = None

    def artifacts(self,
                  meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The run's full observability output as one JSON-able dict."""
        return {
            "version": ARTIFACT_VERSION,
            "meta": dict(meta) if meta else {},
            "metrics": (self.registry.dump()
                        if self.registry is not None else {}),
            "spans": (self.recorder.dump()
                      if self.recorder is not None else []),
        }

    def save(self, path: str,
             meta: Optional[Dict[str, Any]] = None) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.artifacts(meta=meta), stream, sort_keys=True,
                      separators=(",", ":"))
            stream.write("\n")


def artifact_digests(artifacts: Dict[str, Any]) -> Dict[str, str]:
    """sha256 digests of the span and metric halves of an artifact.

    Computed over canonical JSON, so they match across save/load
    round-trips — the determinism tests pin these per seed.
    """
    import hashlib

    def _digest(value: Any) -> str:
        text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    return {
        "spans": _digest(artifacts.get("spans", [])),
        "metrics": _digest(artifacts.get("metrics", {})),
    }


def load_artifacts(path: str) -> Dict[str, Any]:
    """Read an artifact file written by :meth:`ObsSession.save`."""
    with open(path, "r", encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, dict) or "spans" not in data:
        raise ValueError(f"{path!r} is not a repro.obs artifact file")
    return dict(data)
