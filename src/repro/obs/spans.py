"""Span-based causal tracing across simulated nodes.

A :class:`SpanRecorder` is installed on the kernel as
``Environment.spans`` (``None`` keeps tracing zero-cost, like
``Environment.trace``).  Spans form trees: every span carries a
``(trace_id, span_id)`` context, and the context *rides on messages*
(:attr:`repro.net.transport.Message.span`), so the receiving node can
parent its own spans under the sender's — one transaction's spans
stitch across client, leaders, and replicas into a single tree.

The per-transaction stage chain the paper's evaluation reasons in is
managed by :class:`TxSpanSet`: five contiguous stage spans —
``admission → propose → accept → learn → visibility`` — under one root
``tx`` span, with each stage ending exactly where the next begins, so
the per-stage breakdown sums to the end-to-end latency by
construction.

Determinism: span ids are sha256-derived from the trace id, span name,
and a protocol-level disambiguator (txid, key/seq, message id) — never
from object identity or wall-clock time — so two runs with the same
seed produce byte-identical span trees (:meth:`SpanRecorder.digest`).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: The paper's commit-latency stages, in causal order.
STAGES: Tuple[str, ...] = (
    "admission", "propose", "accept", "learn", "visibility")

_STAGE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(STAGES)}

#: A span context as carried on messages: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]


def _short_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def trace_id_for(txid: str) -> str:
    """Deterministic trace id for one transaction."""
    return _short_hash("trace/" + txid)


def span_id_for(trace_id: str, name: str, disambiguator: str) -> str:
    """Deterministic span id within a trace.

    ``disambiguator`` is whatever protocol-level fact makes this span
    unique among same-named spans of the trace: the txid for stage
    spans, ``key/seq`` for rounds, the message id for per-delivery
    point spans.
    """
    return _short_hash(f"span/{trace_id}/{name}/{disambiguator}")


class Span:
    """One named interval (or instant) on one node within a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start_ms", "end_ms", "attrs")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, node: str,
                 start_ms: float,
                 attrs: Optional[Dict[str, object]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}

    @property
    def ctx(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def finish(self, end_ms: float, **attrs: object) -> None:
        """Close the span (idempotent: the first close wins)."""
        if self.end_ms is None:
            self.end_ms = end_ms
        if attrs:
            self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }

    def __repr__(self) -> str:
        end = f"{self.end_ms:.3f}" if self.end_ms is not None else "open"
        return (f"Span({self.name!r} on {self.node!r} "
                f"[{self.start_ms:.3f}..{end}] id={self.span_id})")


class SpanRecorder:
    """Collects every span of one run, in creation order.

    Optionally linked to a :class:`~repro.obs.metrics.MetricsRegistry`
    so stage closes feed the ``tx.stage_ms`` / ``tx.e2e_ms``
    histograms.
    """

    __slots__ = ("spans", "metrics", "_by_id")

    def __init__(self, metrics: Optional["MetricsRegistry"] = None):
        self.spans: List[Span] = []
        self.metrics = metrics
        self._by_id: Dict[str, Span] = {}

    # -- creation -----------------------------------------------------------

    def start(self, trace_id: str, name: str, node: str,
              start_ms: float, disambiguator: str,
              parent_id: Optional[str] = None,
              **attrs: object) -> Span:
        span = Span(trace_id, span_id_for(trace_id, name, disambiguator),
                    parent_id, name, node, start_ms, attrs=attrs)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def child(self, parent: SpanContext, name: str, node: str,
              start_ms: float, disambiguator: str,
              **attrs: object) -> Span:
        """A span under ``parent`` (a context possibly from a message)."""
        trace_id, parent_id = parent
        return self.start(trace_id, name, node, start_ms, disambiguator,
                          parent_id=parent_id, **attrs)

    def point(self, parent: SpanContext, name: str, node: str,
              at_ms: float, disambiguator: str,
              **attrs: object) -> Span:
        """An instantaneous span (start == end) under ``parent``."""
        span = self.child(parent, name, node, at_ms, disambiguator, **attrs)
        span.finish(at_ms)
        return span

    def begin_tx(self, txid: str, node: str, now_ms: float,
                 keys: Sequence[str] = ()) -> "TxSpanSet":
        """Open the root span + stage chain for one transaction."""
        return TxSpanSet(self, txid, node, now_ms, keys)

    # -- lookup & lifecycle ---------------------------------------------------

    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def by_trace(self) -> Dict[str, List[Span]]:
        traces: Dict[str, List[Span]] = {}
        for span in self.spans:
            traces.setdefault(span.trace_id, []).append(span)
        return traces

    def finish_open(self, now_ms: float) -> int:
        """Close every still-open span (run ended mid-flight).

        Marks them ``unfinished`` so exporters and breakdowns can tell
        a partitioned-away transaction from a completed one.
        """
        closed = 0
        for span in self.spans:
            if span.end_ms is None:
                span.finish(now_ms, unfinished=True)
                closed += 1
        return closed

    def __len__(self) -> int:
        return len(self.spans)

    # -- export -----------------------------------------------------------------

    def dump(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.spans]

    def dump_json(self) -> str:
        return json.dumps(self.dump(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 over the canonical JSON dump of the span tree."""
        return hashlib.sha256(self.dump_json().encode("utf-8")).hexdigest()


class TxSpanSet:
    """The stage chain of one transaction, driven by the coordinator.

    Keeps exactly one stage span open at a time and guarantees the
    chain is *contiguous*: each stage's end is the next stage's start,
    and the last stage ends together with the root span — so stage
    durations sum to the root's end-to-end duration exactly.

    Stage transitions are requested with :meth:`advance`; skipped
    stages (e.g. a ``proposal_ack`` lost to a partition while the
    round still completes) materialize as zero-length spans, keeping
    the sum property intact.
    """

    __slots__ = ("recorder", "txid", "trace_id", "node", "root",
                 "stage_spans", "_stage_index", "_open_stage",
                 "_pending_visibility", "closed")

    def __init__(self, recorder: SpanRecorder, txid: str, node: str,
                 now_ms: float, keys: Sequence[str] = ()):
        self.recorder = recorder
        self.txid = txid
        self.trace_id = trace_id_for(txid)
        self.node = node
        self.root = recorder.start(
            self.trace_id, "tx", node, now_ms, txid,
            txid=txid, keys=",".join(keys))
        self.stage_spans: List[Span] = []
        self._stage_index = 0
        self._open_stage = self._open(STAGES[0], now_ms)
        self._pending_visibility = 0
        self.closed = False

    def _open(self, stage: str, now_ms: float) -> Span:
        span = self.recorder.child(self.root.ctx, stage, self.node,
                                   now_ms, self.txid)
        self.stage_spans.append(span)
        return span

    def _close_stage(self, span: Span, now_ms: float) -> None:
        span.finish(now_ms)
        metrics = self.recorder.metrics
        if metrics is not None:
            metrics.observe("tx.stage_ms", span.duration_ms,
                            label=span.name)

    @property
    def ctx(self) -> SpanContext:
        """Context of the currently open stage (for outgoing messages)."""
        return self._open_stage.ctx

    def advance(self, stage: str, now_ms: float) -> None:
        """Close stages up to (and open) ``stage``; no-op when already
        there or past it — progress events may arrive out of order."""
        if self.closed:
            return
        target = _STAGE_INDEX[stage]
        while self._stage_index < target:
            self._close_stage(self._open_stage, now_ms)
            self._stage_index += 1
            self._open_stage = self._open(STAGES[self._stage_index], now_ms)

    def decided(self, now_ms: float, committed: bool) -> None:
        """The outcome is known: enter the visibility stage."""
        self.root.attrs["committed"] = committed
        self.advance("visibility", now_ms)

    def expect_visibility(self, count: int) -> None:
        """Arm the visibility countdown: ``count`` replica deliveries."""
        self._pending_visibility = count

    def visibility_done(self, now_ms: float) -> None:
        """One replica's visibility delivery finished (or gave up)."""
        if self.closed:
            return
        self._pending_visibility -= 1
        if self._pending_visibility <= 0:
            self._close_stage(self._open_stage, now_ms)
            self._finish_root(now_ms)

    def cancelled(self, now_ms: float) -> None:
        """Admission control turned the transaction away: close out."""
        if self.closed:
            return
        self._close_stage(self._open_stage, now_ms)
        self.root.attrs["cancelled"] = True
        self._finish_root(now_ms)

    def _finish_root(self, now_ms: float) -> None:
        self.closed = True
        self.root.finish(now_ms)
        metrics = self.recorder.metrics
        if metrics is not None:
            metrics.observe("tx.e2e_ms", self.root.duration_ms)
