"""Per-transaction event tracing (client-side timeline view).

A :class:`TransactionTracer` attaches to a :class:`PlanetTransaction`
(or a raw :class:`TransactionHandle`) and records a timeline of the
stages it passes through — reads, proposal, acceptance, each learned
option, the decision, stage-block firings — with virtual timestamps.

This is the *single-node* timeline complement to the cross-node span
trees of :mod:`repro.obs.spans`: handy for examples and debugging one
transaction interactively.  Moved here from ``repro.harness.tracing``
(which remains as a compat shim) when the observability layer was
unified under ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.transaction import PlanetTransaction
from repro.mdcc.coordinator import TransactionHandle


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry: what happened, when, with which detail."""

    at_ms: float
    stage: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"+{self.at_ms:9.2f} ms  {self.stage}{suffix}"


@dataclass
class TransactionTrace:
    """The collected timeline of one transaction."""

    txid: str
    start_ms: float
    events: List[TraceEvent] = field(default_factory=list)

    def add(self, now_ms: float, stage: str, detail: str = "") -> None:
        self.events.append(
            TraceEvent(at_ms=now_ms - self.start_ms, stage=stage,
                       detail=detail))

    def stages(self) -> List[str]:
        return [event.stage for event in self.events]

    def duration_of(self, from_stage: str, to_stage: str) -> Optional[float]:
        """Elapsed ms between the first occurrences of two stages."""
        first = {event.stage: event.at_ms for event in reversed(self.events)}
        if from_stage not in first or to_stage not in first:
            return None
        return first[to_stage] - first[from_stage]

    def render(self) -> str:
        lines = [f"transaction {self.txid}"]
        lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)


class TransactionTracer:
    """Collects traces for the transactions it is attached to."""

    def __init__(self):
        self.traces: List[TransactionTrace] = []

    def attach_handle(self, handle: TransactionHandle) -> TransactionTrace:
        """Trace a raw MDCC transaction handle."""
        trace = TransactionTrace(txid=handle.txid,
                                 start_ms=handle.start_ms)
        self.traces.append(trace)
        env = handle.env

        def hook(stage: str, h: TransactionHandle) -> None:
            detail = ""
            if stage == "learned":
                decisions = ",".join(
                    f"{key}={decision.value}"
                    for key, decision in sorted(h.learned.items()))
                detail = decisions
            elif stage == "decided" and h.result is not None:
                detail = "commit" if h.result.committed else "abort"
            trace.add(env.now, stage, detail)

        handle.progress_hooks.append(hook)
        return trace

    def attach(self, transaction: PlanetTransaction) -> TransactionTrace:
        """Trace a PLANET transaction, including stage-block firings."""
        if transaction.handle is None:
            raise ValueError("transaction has not started yet")
        trace = self.attach_handle(transaction.handle)
        trace.txid = transaction.txid
        env = transaction.env

        original_fire = transaction._fire_stage

        def wrapped_fire(stage, callback):
            trace.add(env.now, f"stage:{stage}",
                      f"state={transaction.state.value}")
            original_fire(stage, callback)

        transaction._fire_stage = wrapped_fire

        def final_hook(event):
            if event.ok:
                info = event.value
                trace.add(env.now, "finally", f"state={info.state.value}")

        transaction.final_event.callbacks.append(final_hook)
        return trace
