"""Command-line front end of the observability layer.

::

    python -m repro.obs record --check-seed 7 --out run.obs.json
    python -m repro.obs record --figure-seed 1234 --scale 0.2
    python -m repro.obs export run.obs.json            # -> .perfetto.json
    python -m repro.obs breakdown run.obs.json [--json]
    python -m repro.obs top run.obs.json -n 10

``record`` re-runs a seeded simulation (a ``repro.check`` run or a
figure-scale experiment) with the observability session installed and
writes the artifact file; the other commands consume artifact files —
including the ``seed-N.obs.json`` files the fuzz CLI drops next to
failing traces.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.export import (
    breakdown_json,
    breakdown_table,
    chrome_trace,
    stage_breakdown,
    stage_summary,
)
from repro.obs.record import artifact_digests, load_artifacts


def _write_json(path: str, data: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(data, stream, sort_keys=True, separators=(",", ":"))
        stream.write("\n")


def _record_check(seed: int, txns: int) -> Dict[str, Any]:
    from repro.check.runner import CheckConfig, run_check

    result = run_check(CheckConfig(seed=seed, n_txns=txns), observe=True)
    assert result.obs is not None
    return result.obs


def _record_figure(seed: int, scale: float) -> Dict[str, Any]:
    from repro.harness.experiment import Experiment, ExperimentConfig

    config = ExperimentConfig(
        name=f"obs-figure-{seed}", seed=seed, system="planet",
        topology="ec2", n_items=5_000, hotspot_size=50, rate_tps=150.0,
        storage_service_ms=0.4, oracle_samples=800,
        warmup_ms=max(800.0, 4_000.0 * scale),
        duration_ms=max(1_600.0, 8_000.0 * scale),
        drain_ms=max(800.0, 4_000.0 * scale),
        observe=True)
    result = Experiment(config).run()
    assert result.obs is not None
    return result.obs


def _cmd_record(namespace: argparse.Namespace) -> int:
    if (namespace.check_seed is None) == (namespace.figure_seed is None):
        print("record: give exactly one of --check-seed / --figure-seed",
              file=sys.stderr)
        return 2
    if namespace.check_seed is not None:
        artifacts = _record_check(namespace.check_seed, namespace.txns)
        default_out = f"obs-check-{namespace.check_seed}.obs.json"
    else:
        artifacts = _record_figure(namespace.figure_seed, namespace.scale)
        default_out = f"obs-figure-{namespace.figure_seed}.obs.json"
    out = namespace.out or default_out
    _write_json(out, artifacts)
    digests = artifact_digests(artifacts)
    print(f"recorded {len(artifacts['spans'])} spans -> {out}")
    print(f"span digest:   {digests['spans']}")
    print(f"metric digest: {digests['metrics']}")
    return 0


def _default_export_path(path: str) -> str:
    base = path[:-len(".obs.json")] if path.endswith(".obs.json") \
        else os.path.splitext(path)[0]
    return base + ".perfetto.json"


def _cmd_export(namespace: argparse.Namespace) -> int:
    artifacts = load_artifacts(namespace.artifact)
    out = namespace.out or _default_export_path(namespace.artifact)
    meta = artifacts.get("meta") or {}
    label = str(meta.get("source", "repro"))
    trace = chrome_trace(artifacts["spans"], label=label)
    _write_json(out, trace)
    n_events = len(trace["traceEvents"])
    print(f"{n_events} trace events -> {out} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_breakdown(namespace: argparse.Namespace) -> int:
    artifacts = load_artifacts(namespace.artifact)
    breakdowns = stage_breakdown(artifacts["spans"])
    if namespace.json:
        print(breakdown_json(breakdowns))
        return 0
    if not breakdowns:
        print("no transactions in artifact")
        return 0
    print(breakdown_table(breakdowns, limit=namespace.limit))
    summary = stage_summary(breakdowns)
    if summary:
        parts = ", ".join(f"{name}={value:.2f}ms"
                          for name, value in summary.items())
        print(f"\nmean over complete transactions: {parts}")
    return 0


def _cmd_top(namespace: argparse.Namespace) -> int:
    artifacts = load_artifacts(namespace.artifact)
    breakdowns = stage_breakdown(artifacts["spans"])
    finished = [b for b in breakdowns if not b.unfinished]
    finished.sort(key=lambda b: (-b.e2e_ms, b.txid))
    slowest = finished[:namespace.count]
    if not slowest:
        print("no finished transactions in artifact")
        return 0
    print(breakdown_table(slowest))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="record and export observability artifacts")
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="run a seeded simulation with obs installed")
    record.add_argument("--check-seed", type=int, default=None,
                        help="record a repro.check run of this seed")
    record.add_argument("--figure-seed", type=int, default=None,
                        help="record a figure-scale experiment of this seed")
    record.add_argument("--txns", type=int, default=40,
                        help="check-run transactions (default %(default)s)")
    record.add_argument("--scale", type=float, default=0.2,
                        help="figure-run scale factor (default %(default)s)")
    record.add_argument("--out", type=str, default=None,
                        help="artifact path (default obs-<src>-<seed>.obs.json)")
    record.set_defaults(handler=_cmd_record)

    export = commands.add_parser(
        "export", help="artifact -> Chrome trace-event (Perfetto) JSON")
    export.add_argument("artifact", help="an .obs.json artifact file")
    export.add_argument("--out", type=str, default=None,
                        help="output path (default <artifact>.perfetto.json)")
    export.set_defaults(handler=_cmd_export)

    breakdown = commands.add_parser(
        "breakdown", help="per-stage commit-latency table")
    breakdown.add_argument("artifact", help="an .obs.json artifact file")
    breakdown.add_argument("--json", action="store_true",
                           help="emit JSON instead of the table")
    breakdown.add_argument("--limit", type=int, default=20,
                           help="max table rows (default %(default)s)")
    breakdown.set_defaults(handler=_cmd_breakdown)

    top = commands.add_parser(
        "top", help="slowest transactions by end-to-end latency")
    top.add_argument("artifact", help="an .obs.json artifact file")
    top.add_argument("-n", "--count", type=int, default=10,
                     help="how many (default %(default)s)")
    top.set_defaults(handler=_cmd_top)

    namespace = parser.parse_args(argv)
    return namespace.handler(namespace)


if __name__ == "__main__":
    sys.exit(main())
