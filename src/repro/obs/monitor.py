"""Cluster-internals monitoring: protocol and server-health counters.

Aggregates the observability counters scattered across the stack —
option decisions at leaders, Paxos round losses, transport traffic,
RPC queue depths, client commit/abort tallies — into one snapshot for
reports and regression checks.

Moved here from ``repro.harness.monitoring`` (which remains as a
compat shim) when the observability layer was unified under
``repro.obs``.  New here: :class:`HealthMonitor` publishes each sample
as ``cluster.*`` gauges into an installed
:class:`~repro.obs.metrics.MetricsRegistry`, so the polling counters
land in the same metric dump as the event-driven instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List


@dataclass(frozen=True)
class ClusterSnapshot:
    """Aggregate counters at one instant of virtual time."""

    at_ms: float
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    proposals: int
    options_accepted: int
    options_rejected: int
    rounds_lost: int
    pending_options: int
    max_queue_depth: int
    records_materialized: int
    clients_started: int
    clients_committed: int
    clients_aborted: int

    @property
    def option_reject_rate(self) -> float:
        total = self.options_accepted + self.options_rejected
        return self.options_rejected / total if total else 0.0

    @property
    def client_commit_rate(self) -> float:
        decided = self.clients_committed + self.clients_aborted
        return self.clients_committed / decided if decided else 0.0

    def render(self) -> str:
        from repro.harness.report import format_table

        rows = [
            ["virtual time (s)", round(self.at_ms / 1000.0, 1)],
            ["messages sent / delivered / dropped",
             f"{self.messages_sent} / {self.messages_delivered} / "
             f"{self.messages_dropped}"],
            ["proposals", self.proposals],
            ["options accepted / rejected",
             f"{self.options_accepted} / {self.options_rejected} "
             f"({self.option_reject_rate:.1%} rejected)"],
            ["paxos rounds lost", self.rounds_lost],
            ["pending options (now)", self.pending_options],
            ["max RPC queue depth", self.max_queue_depth],
            ["records materialized", self.records_materialized],
            ["client txns started", self.clients_started],
            ["client commit rate", f"{self.client_commit_rate:.1%}"],
        ]
        return format_table(["counter", "value"], rows,
                            title="cluster snapshot")


def snapshot(cluster) -> ClusterSnapshot:
    """Collect a :class:`ClusterSnapshot` from a live cluster."""
    proposals = accepted = rejected = lost = 0
    pending = depth = materialized = 0
    for nodes in cluster.nodes.values():
        for node in nodes:
            proposals += node.proposals
            accepted += node.options_accepted
            rejected += node.options_rejected
            lost += node.rounds_lost
            depth = max(depth, node.endpoint.max_queue_depth)
            materialized += len(node.records)
            pending += sum(len(r.pending) for r in node.records.values())
    started = committed = aborted = 0
    for tm in cluster._clients.values():
        started += tm.started
        committed += tm.committed
        aborted += tm.aborted
    transport = cluster.transport
    return ClusterSnapshot(
        at_ms=cluster.env.now,
        messages_sent=transport.sent,
        messages_delivered=transport.delivered,
        messages_dropped=transport.dropped,
        proposals=proposals,
        options_accepted=accepted,
        options_rejected=rejected,
        rounds_lost=lost,
        pending_options=pending,
        max_queue_depth=depth,
        records_materialized=materialized,
        clients_started=started,
        clients_committed=committed,
        clients_aborted=aborted,
    )


class HealthMonitor:
    """Periodic snapshots over a run (a time series of counters).

    When the kernel has a metrics registry installed
    (``env.metrics``), every sampled counter is also published as a
    ``cluster.<field>`` gauge, time-stamped by the sampling loop.
    """

    def __init__(self, cluster, interval_ms: float = 10_000.0):
        if interval_ms <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.interval_ms = float(interval_ms)
        self.samples: List[ClusterSnapshot] = []
        cluster.env.process(self._loop())

    def _loop(self):
        while True:
            yield self.cluster.env.timeout(self.interval_ms)
            sample = snapshot(self.cluster)
            self.samples.append(sample)
            metrics = getattr(self.cluster.env, "metrics", None)
            if metrics is not None:
                for field_ in fields(ClusterSnapshot):
                    metrics.set_gauge(f"cluster.{field_.name}",
                                      float(getattr(sample, field_.name)))

    def series(self, field: str) -> List[float]:
        """One counter's trajectory across the samples."""
        return [getattr(sample, field) for sample in self.samples]

    def deltas(self, field: str) -> List[float]:
        """Per-interval increments of a monotone counter."""
        values = self.series(field)
        return [b - a for a, b in zip([0.0] + values, values)]
