"""The TPC-W-like buy workload of §6.2.

Clients in the open-system model issue order-buying transactions at a
fixed aggregate rate; each transaction picks 1–4 items under a uniform
or hotspot access pattern and decrements their stock levels.
"""

from repro.workload.items import generate_items
from repro.workload.access import (
    AccessPattern,
    HotspotAccess,
    UniformAccess,
    ZipfianAccess,
)
from repro.workload.buying import BuyTransactionFactory
from repro.workload.load import OpenSystemLoad, PoissonArrivals, UniformArrivals
from repro.workload.aggregate import AggregateLoad
from repro.workload.modulation import (
    ComposedModulation,
    DiurnalModulation,
    FlashCrowdModulation,
    ModulatedArrivals,
    RateModulation,
)

__all__ = [
    "AccessPattern",
    "AggregateLoad",
    "BuyTransactionFactory",
    "ComposedModulation",
    "DiurnalModulation",
    "FlashCrowdModulation",
    "HotspotAccess",
    "ModulatedArrivals",
    "OpenSystemLoad",
    "PoissonArrivals",
    "RateModulation",
    "UniformAccess",
    "UniformArrivals",
    "ZipfianAccess",
    "generate_items",
]
