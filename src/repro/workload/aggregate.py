"""Batched aggregate load generation for million-client scale.

:class:`~repro.workload.load.OpenSystemLoad` models the open system
with one generator process and one heap event per arrival — faithful,
but at 10⁴ tx/s the kernel spends most of its time resuming the load
generator and re-drawing scalars one at a time.  ``AggregateLoad``
replaces that with *batch* scheduling: arrival times, item counts, key
indices, and read/write coin flips for a whole batch are drawn in a
handful of vectorized numpy calls, and the batch is registered with
the kernel either as one array-backed timer lane
(:meth:`repro.sim.Environment.add_timer_lane`) or, when the lane is
disabled, as a single generator process.  The issuer-facing behaviour
is unchanged: each arrival still calls
:meth:`~repro.workload.load.TransactionIssuer.issue` (or
``issue_read``) at its exact simulated arrival time.

Two modes trade exactness for speed:

``exact``
    Pre-draws each batch from the *same* ``random.Random`` stream the
    per-client path uses (``load-<name>``), replicating its draw order
    — gap, then transaction build, then the read-fraction coin —
    arrival by arrival.  Because that stream is private to the load,
    pre-drawing a batch up front yields byte-identical histories to
    ``OpenSystemLoad`` (pinned by tests).  Use it to validate the
    batched plumbing.

``vectorized``
    Draws from the seeded numpy twin stream
    (:meth:`repro.sim.RandomStreams.numpy_generator`).  Same
    distributions, different (deterministic) sample path; this is the
    scale mode — O(1) python work per arrival, O(batch) numpy work per
    batch.

With ``population`` set, every arrival is also attributed to one of
``population`` simulated users (uniformly, from a dedicated stream)
and a bitmap tracks which users have appeared — this is how the
``scale`` bench represents 10⁶ clients in ~1 MB instead of 10⁶
generator processes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.sim import Environment, RandomStreams
from repro.workload.buying import BuyTransactionFactory
from repro.workload.load import PoissonArrivals, TransactionIssuer


class AggregateLoad:
    """Issues buy transactions at an aggregate rate, batch-scheduled.

    Drop-in alternative to :class:`OpenSystemLoad`: same constructor
    shape, same ``start``/``stop`` lifecycle, same ``issued`` /
    ``reads_issued`` counters, same :class:`TransactionIssuer`
    protocol on the far side.
    """

    def __init__(self, env: Environment, factory: BuyTransactionFactory,
                 issuer: TransactionIssuer, rate_tps: float,
                 streams: RandomStreams, name: str = "load",
                 arrivals: Optional[object] = None,
                 read_fraction: float = 0.0,
                 mode: str = "vectorized",
                 batch_size: int = 1024,
                 use_timer_lane: bool = True,
                 population: int = 0):
        if mode not in ("vectorized", "exact"):
            raise ValueError(f"unknown aggregate mode {mode!r}")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if population < 0:
            raise ValueError("population must be >= 0")
        if not 0.0 <= read_fraction < 1.0:
            raise ValueError(f"read fraction {read_fraction} outside [0, 1)")
        if read_fraction > 0 and not hasattr(issuer, "issue_read"):
            raise ValueError(
                "issuer does not support read-only transactions")
        self.env = env
        self.factory = factory
        self.issuer = issuer
        self.arrivals = arrivals or PoissonArrivals(rate_tps)
        self.read_fraction = float(read_fraction)
        self.mode = mode
        self.batch_size = int(batch_size)
        self.use_timer_lane = bool(use_timer_lane)
        self.population = int(population)
        # Exact mode replays the per-client stream; vectorized mode
        # uses its numpy twin.  Client attribution always has its own
        # stream so enabling it never perturbs the arrival sequence.
        self._rng = streams.get(f"load-{name}")
        self._np_rng = streams.numpy_generator(f"load-{name}")
        self._client_rng = streams.numpy_generator(f"load-{name}-clients")
        self._clients_seen = (np.zeros(population, dtype=bool)
                              if population else None)
        self.issued = 0
        self.reads_issued = 0
        self._running = False
        self._finished = False
        self._deadline: Optional[float] = None
        self._next_time = 0.0
        self._lane: Any = None
        # Current batch payload (parallel, indexed by arrival).
        self._times: Sequence[float] = ()
        self._writes: List[list] = []
        self._hot: Any = ()
        self._reads: Any = None
        self._last_index = -1

    # -- lifecycle ----------------------------------------------------

    def start(self, duration_ms: Optional[float] = None) -> None:
        """Begin issuing; stops after ``duration_ms`` (or on stop())."""
        if self._running:
            raise RuntimeError("load generator already running")
        self._running = True
        self._finished = False
        self._next_time = self.env.now
        self._deadline = (self.env.now + duration_ms
                          if duration_ms is not None else None)
        if self.use_timer_lane:
            self._begin_batch()
        else:
            self.env.process(self._run())

    def stop(self) -> None:
        self._running = False
        if self._lane is not None:
            self._lane.cancel()
            self._lane = None

    def distinct_clients(self) -> int:
        """How many of the ``population`` users have issued so far."""
        if self._clients_seen is None:
            return 0
        return int(self._clients_seen.sum())

    # -- batch construction -------------------------------------------

    def _load_batch(self) -> int:
        """Draw the next batch into the payload arrays; return size."""
        if self.mode == "exact":
            n = self._draw_exact()
        else:
            n = self._draw_vectorized()
        self._last_index = n - 1
        if n and self._clients_seen is not None:
            clients = self._client_rng.integers(
                0, self.population, size=n)
            self._clients_seen[clients] = True
        return n

    def _draw_exact(self) -> int:
        rng = self._rng
        arrivals = self.arrivals
        factory = self.factory
        read_fraction = self.read_fraction
        deadline = self._deadline
        t = self._next_time
        times: List[float] = []
        writes: List[list] = []
        hot: List[bool] = []
        reads: List[bool] = [] if read_fraction else None  # type: ignore
        # Modulated arrivals rescale each gap by the factor at the
        # previous arrival time — the same time base OpenSystemLoad
        # sees (env.now at draw time), so exact mode stays replayable.
        timed = getattr(arrivals, "next_interarrival_ms_at", None)
        for _ in range(self.batch_size):
            # Identical draw order to OpenSystemLoad._run: gap, build,
            # then the read coin — and the gap that crosses the
            # deadline stops the load *without* building.
            gap = (timed(rng, t) if timed is not None
                   else arrivals.next_interarrival_ms(rng))
            if deadline is not None and t + gap >= deadline:
                self._finished = True
                break
            t += gap
            txn, touches_hotspot = factory.build(rng)
            times.append(t)
            writes.append(txn)
            hot.append(touches_hotspot)
            if read_fraction:
                reads.append(rng.random() < read_fraction)
        self._next_time = t
        self._times = times
        self._writes = writes
        self._hot = hot
        self._reads = reads
        return len(times)

    def _draw_vectorized(self) -> int:
        np_rng = self._np_rng
        timed = getattr(self.arrivals, "batch_interarrivals_at", None)
        if timed is not None:
            gaps = timed(np_rng, self.batch_size, self._next_time)
        else:
            gaps = self.arrivals.batch_interarrivals(np_rng, self.batch_size)
        times = np.cumsum(gaps)
        times += self._next_time
        if self._deadline is not None:
            keep = int(np.searchsorted(times, self._deadline, side="left"))
            if keep < times.shape[0]:
                self._finished = True
                times = times[:keep]
        n = times.shape[0]
        if n:
            self._next_time = float(times[-1])
            self._writes, self._hot = self.factory.build_batch(np_rng, n)
            self._reads = (np_rng.random(n) < self.read_fraction
                           if self.read_fraction else None)
        else:
            self._writes, self._hot, self._reads = [], (), None
        self._times = times
        return n

    # -- delivery -----------------------------------------------------

    def _issue(self, index: int) -> None:
        if self._reads is not None and self._reads[index]:
            self.issuer.issue_read(  # type: ignore[attr-defined]
                [op.key for op in self._writes[index]])
            self.reads_issued += 1
        else:
            self.issuer.issue(self._writes[index], bool(self._hot[index]))
            self.issued += 1

    def _begin_batch(self) -> None:
        """Lane mode: draw a batch and register it with the kernel."""
        n = self._load_batch()
        if n == 0:
            self._running = False
            self._lane = None
            return
        self._lane = self.env.add_timer_lane(self._times, self._fire)

    def _fire(self, index: int) -> None:
        """Timer-lane callback: one arrival."""
        if not self._running:
            return
        self._issue(index)
        if index == self._last_index:
            if self._finished:
                self._running = False
                self._lane = None
            else:
                self._begin_batch()

    def _run(self):
        """Fallback without the timer lane: one process, batched draws.

        Still amortizes all randomness and construction over the batch;
        only the scheduling is per-arrival heap events.
        """
        env = self.env
        while self._running:
            n = self._load_batch()
            if n == 0:
                self._running = False
                return
            for index in range(n):
                gap = self._times[index] - env.now
                yield env.timeout(gap if gap > 0 else 0.0)
                if not self._running:
                    return
                self._issue(index)
            if self._finished:
                self._running = False
                return
