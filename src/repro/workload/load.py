"""Open-system load generation (§6.1).

Clients issue transactions at a fixed aggregate rate regardless of
completion — the open system model — so contention compounds when the
system falls behind, exactly the regime admission control targets.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol, Sequence

from repro.sim import Environment, RandomStreams
from repro.storage.record import WriteOp
from repro.workload.buying import BuyTransactionFactory


class TransactionIssuer(Protocol):
    """Anything that can launch one transaction (PLANET or baseline)."""

    def issue(self, writes: Sequence[WriteOp], touches_hotspot: bool) -> None:
        ...


class ReadIssuer(Protocol):
    """Optionally, an issuer can also serve read-only transactions."""

    def issue_read(self, keys: Sequence[str]) -> None:
        ...


class PoissonArrivals:
    """Exponential interarrival times with the given aggregate rate."""

    def __init__(self, rate_tps: float):
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.rate_per_ms = rate_tps / 1000.0

    def next_interarrival_ms(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate_per_ms)

    def batch_interarrivals(self, np_rng, size: int):
        """``size`` gaps in one vectorized draw (same distribution)."""
        return np_rng.exponential(1.0 / self.rate_per_ms, size)


class UniformArrivals:
    """Evenly paced arrivals (a metronome at the aggregate rate)."""

    def __init__(self, rate_tps: float):
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.interval_ms = 1000.0 / rate_tps

    def next_interarrival_ms(self, rng: random.Random) -> float:
        return self.interval_ms

    def batch_interarrivals(self, np_rng, size: int):
        import numpy as np

        return np.full(size, self.interval_ms)


class OpenSystemLoad:
    """Feeds generated buy transactions to an issuer at a fixed rate."""

    def __init__(self, env: Environment, factory: BuyTransactionFactory,
                 issuer: TransactionIssuer, rate_tps: float,
                 streams: RandomStreams, name: str = "load",
                 arrivals: Optional[object] = None,
                 read_fraction: float = 0.0):
        if not 0.0 <= read_fraction < 1.0:
            raise ValueError(f"read fraction {read_fraction} outside [0, 1)")
        if read_fraction > 0 and not hasattr(issuer, "issue_read"):
            raise ValueError(
                "issuer does not support read-only transactions")
        self.env = env
        self.factory = factory
        self.issuer = issuer
        self.arrivals = arrivals or PoissonArrivals(rate_tps)
        #: Fraction of arrivals that are read-only browse transactions
        #: (the TPC-W browsing mix; reads never conflict and are
        #: orthogonal to the programming model, §6.2).
        self.read_fraction = float(read_fraction)
        self._rng = streams.get(f"load-{name}")
        self.issued = 0
        self.reads_issued = 0
        self._running = False

    def start(self, duration_ms: Optional[float] = None) -> None:
        """Begin issuing; stops after ``duration_ms`` (or on stop())."""
        if self._running:
            raise RuntimeError("load generator already running")
        self._running = True
        self.env.process(self._run(duration_ms))

    def stop(self) -> None:
        self._running = False

    def _run(self, duration_ms: Optional[float]):
        deadline = (self.env.now + duration_ms
                    if duration_ms is not None else None)
        # Time-varying rates (repro.workload.modulation) expose the
        # time-aware draw; plain arrival processes keep the old path
        # bit-for-bit.
        timed = getattr(self.arrivals, "next_interarrival_ms_at", None)
        while self._running:
            if timed is not None:
                gap = timed(self._rng, self.env.now)
            else:
                gap = self.arrivals.next_interarrival_ms(self._rng)
            if deadline is not None and self.env.now + gap >= deadline:
                self._running = False
                return
            yield self.env.timeout(gap)
            if not self._running:
                return
            writes, touches_hotspot = self.factory.build(self._rng)
            if (self.read_fraction
                    and self._rng.random() < self.read_fraction):
                # Browse: read the same keys the buy would have touched.
                self.issuer.issue_read([op.key for op in writes])
                self.reads_issued += 1
            else:
                self.issuer.issue(writes, touches_hotspot)
                self.issued += 1
