"""The order-buying transaction (Listing 2 / §6.2).

Randomly chooses 1–4 items under the configured access pattern and
decrements their stock levels.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.storage.record import Update, WriteOp
from repro.workload.access import AccessPattern


class BuyTransactionFactory:
    """Generates the write sets of buy transactions."""

    def __init__(self, pattern: AccessPattern, min_items: int = 1,
                 max_items: int = 4, quantity: int = 1,
                 enforce_stock_floor: bool = False):
        if not 1 <= min_items <= max_items:
            raise ValueError(
                f"bad item-count range [{min_items}, {max_items}]")
        if quantity < 1:
            raise ValueError("quantity must be >= 1")
        self.pattern = pattern
        self.min_items = min_items
        self.max_items = max_items
        self.quantity = quantity
        self.floor = 0 if enforce_stock_floor else None

    def build(self, rng: random.Random) -> Tuple[List[WriteOp], bool]:
        """One transaction's write set, plus whether it hit the hotspot."""
        count = rng.randint(self.min_items, self.max_items)
        keys = self.pattern.sample_keys(rng, count)
        writes = [
            WriteOp(key, Update.delta(-self.quantity, floor=self.floor))
            for key in keys
        ]
        touches_hotspot = any(self.pattern.is_hot(key) for key in keys)
        return writes, touches_hotspot
