"""The order-buying transaction (Listing 2 / §6.2).

Randomly chooses 1–4 items under the configured access pattern and
decrements their stock levels.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.storage.record import Update, WriteOp
from repro.workload.access import AccessPattern


class BuyTransactionFactory:
    """Generates the write sets of buy transactions."""

    def __init__(self, pattern: AccessPattern, min_items: int = 1,
                 max_items: int = 4, quantity: int = 1,
                 enforce_stock_floor: bool = False):
        if not 1 <= min_items <= max_items:
            raise ValueError(
                f"bad item-count range [{min_items}, {max_items}]")
        if quantity < 1:
            raise ValueError("quantity must be >= 1")
        self.pattern = pattern
        self.min_items = min_items
        self.max_items = max_items
        self.quantity = quantity
        self.floor = 0 if enforce_stock_floor else None

    def build(self, rng: random.Random) -> Tuple[List[WriteOp], bool]:
        """One transaction's write set, plus whether it hit the hotspot."""
        count = rng.randint(self.min_items, self.max_items)
        keys = self.pattern.sample_keys(rng, count)
        writes = [
            WriteOp(key, Update.delta(-self.quantity, floor=self.floor))
            for key in keys
        ]
        touches_hotspot = any(self.pattern.is_hot(key) for key in keys)
        return writes, touches_hotspot

    def build_batch(self, np_rng, size: int):
        """Write sets + hotspot flags for ``size`` transactions at once.

        The vectorized twin of :meth:`build`, used by the aggregate
        load engine: item counts and key indices come from single numpy
        draws, and every write shares one frozen :class:`Update`
        instance (the delta is identical across the whole workload, so
        per-op construction is pure overhead at scale).
        """
        counts = np_rng.integers(self.min_items, self.max_items + 1,
                                 size=size)
        keys_per_txn, hot = self.pattern.sample_batch(np_rng, counts)
        update = Update.delta(-self.quantity, floor=self.floor)
        writes = [[WriteOp(key, update) for key in keys]
                  for keys in keys_per_txn]
        return writes, hot
