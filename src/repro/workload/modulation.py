"""Time-varying workload rates: the scenario catalogue's load shapes.

The paper's evaluation drives every experiment at one constant
aggregate rate; real front-end traffic is anything but constant —
diurnal cycles, flash crowds, marketing spikes.  A
:class:`RateModulation` maps virtual time to a dimensionless rate
factor, and :class:`ModulatedArrivals` wraps any arrival process
(:class:`~repro.workload.load.PoissonArrivals`,
:class:`~repro.workload.load.UniformArrivals`) so its instantaneous
rate becomes ``base_rate * factor(t)``.

The implementation is time-rescaling: each base interarrival gap is
divided by the factor at the gap's start.  For factors that change
slowly relative to the gap length (every shape here) this is the
standard inhomogeneous-process approximation, and it is *exactly* as
deterministic as the base process — the same named stream produces the
same gap sequence, merely rescaled by a pure function of virtual time.
Loads detect the wrapper by its time-aware draw methods
(``next_interarrival_ms_at`` / ``batch_interarrivals_at``); unwrapped
arrival processes keep their old draw path bit-for-bit.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class RateModulation:
    """Maps virtual time (ms) to a non-negative rate factor."""

    def factor(self, t_ms: float) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class DiurnalModulation(RateModulation):
    """Sinusoidal day/night cycle around the base rate.

    ``factor(t) = 1 + amplitude * sin(2π (t - phase) / period)`` —
    peaks at ``1 + amplitude``, troughs at ``1 - amplitude``.
    """

    period_ms: float
    amplitude: float = 0.5
    phase_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude {self.amplitude} outside [0, 1)")

    def factor(self, t_ms: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t_ms - self.phase_ms) / self.period_ms)

    def describe(self) -> str:
        return (f"diurnal(period={self.period_ms:.0f}ms, "
                f"amplitude={self.amplitude:.2f})")


@dataclass(frozen=True)
class FlashCrowdModulation(RateModulation):
    """A step surge: ``magnitude``× the base rate inside the window."""

    start_ms: float
    end_ms: float
    magnitude: float = 3.0

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError("empty flash-crowd window")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    def factor(self, t_ms: float) -> float:
        if self.start_ms <= t_ms < self.end_ms:
            return self.magnitude
        return 1.0

    def describe(self) -> str:
        return (f"flash(x{self.magnitude:.1f} @ "
                f"[{self.start_ms:.0f}, {self.end_ms:.0f})ms)")


@dataclass(frozen=True)
class ComposedModulation(RateModulation):
    """Product of several modulations (diurnal cycle × flash crowd)."""

    parts: Tuple[RateModulation, ...]

    def factor(self, t_ms: float) -> float:
        value = 1.0
        for part in self.parts:
            value *= part.factor(t_ms)
        return value

    def describe(self) -> str:
        return " * ".join(part.describe() for part in self.parts)


#: Floor on the effective factor: a modulation dipping to zero would
#: produce an infinite gap and wedge the load generator forever.
MIN_FACTOR = 1e-3


class ModulatedArrivals:
    """An arrival process whose rate is scaled by a modulation.

    Wraps a base process and exposes the *time-aware* draw API the
    load engines probe for.  The base process still owns all the
    randomness; this wrapper only rescales gaps by ``factor(t)``.
    """

    def __init__(self, base: object, modulation: RateModulation):
        self.base = base
        self.modulation = modulation

    def next_interarrival_ms_at(self, rng, now_ms: float) -> float:
        gap = self.base.next_interarrival_ms(rng)
        return gap / max(self.modulation.factor(now_ms), MIN_FACTOR)

    def batch_interarrivals_at(self, np_rng, size: int, now_ms: float):
        """A batch of scaled gaps starting at ``now_ms``.

        The base gaps come from one vectorized draw; the rescaling
        walk is sequential because each gap's factor depends on the
        (scaled) arrival time before it.
        """
        import numpy as np

        gaps = self.base.batch_interarrivals(np_rng, size)
        factor = self.modulation.factor
        scaled: List[float] = []
        append = scaled.append
        t = now_ms
        for gap in gaps:
            gap = float(gap) / max(factor(t), MIN_FACTOR)
            append(gap)
            t += gap
        return np.asarray(scaled)

    def describe(self) -> str:
        return self.modulation.describe()
