"""The TPC-W Items table (reduced to what the buy transaction needs).

The paper focuses the benchmark on a single Items table and the stock
attribute the buy transaction decrements; credit-card checks and the
other TPC-W attributes are deliberately out of scope (§6.2).
"""

from __future__ import annotations

from typing import Dict


def item_key(index: int, prefix: str = "item") -> str:
    """Canonical record key of the i-th item."""
    return f"{prefix}:{index}"


def generate_items(n_items: int, initial_stock: int = 1_000_000,
                   prefix: str = "item") -> Dict[str, int]:
    """Item key -> initial stock level, for :meth:`Cluster.load`.

    The default stock is effectively unlimited so that experiments
    measure *conflict* aborts (the paper's subject), not stock-outs;
    pass a small value to study the oversell-protection floor instead.
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    if initial_stock < 0:
        raise ValueError("negative initial stock")
    return {item_key(i, prefix): initial_stock for i in range(n_items)}
