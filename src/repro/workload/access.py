"""Item access patterns: uniform, hotspot, and Zipfian.

The hotspot pattern reproduces §6.4: a fraction of transactions (90 %
in the paper) pick their items inside a small hot region at the front
of the table; the rest pick uniformly from the cold remainder.  The
Zipfian pattern adds the power-law skew of real catalogues (and of the
YCSB benchmark the paper cites) as an extension.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List

import numpy as np

from repro.workload.items import item_key


class AccessPattern(ABC):
    """Chooses which items a transaction touches."""

    @abstractmethod
    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        """Pick ``count`` distinct item keys."""

    @abstractmethod
    def is_hot(self, key: str) -> bool:
        """Whether a key lies in the hotspot (always False if none)."""


class UniformAccess(AccessPattern):
    """Every item equally likely."""

    def __init__(self, n_items: int, prefix: str = "item"):
        if n_items < 1:
            raise ValueError("need at least one item")
        self.n_items = n_items
        self.prefix = prefix

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        if count > self.n_items:
            raise ValueError(
                f"cannot pick {count} distinct items out of {self.n_items}")
        indices = rng.sample(range(self.n_items), count)
        return [item_key(i, self.prefix) for i in indices]

    def is_hot(self, key: str) -> bool:
        return False


class HotspotAccess(AccessPattern):
    """With probability ``hot_prob``, shop inside the hotspot.

    The hotspot is the first ``hotspot_size`` items.  A hot transaction
    picks *all* its items in the hotspot; a cold one picks all of them
    in the cold region, so the hot/cold split of transactions matches
    the paper's "90 % of transactions accessed an item in the hotspot".
    """

    def __init__(self, n_items: int, hotspot_size: int,
                 hot_prob: float = 0.9, prefix: str = "item"):
        if not 0 < hotspot_size <= n_items:
            raise ValueError(
                f"hotspot size {hotspot_size} outside (0, {n_items}]")
        if not 0.0 <= hot_prob <= 1.0:
            raise ValueError(f"hot_prob {hot_prob} outside [0, 1]")
        self.n_items = n_items
        self.hotspot_size = hotspot_size
        self.hot_prob = hot_prob
        self.prefix = prefix
        self._hot_keys = {item_key(i, prefix) for i in range(hotspot_size)}

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        hot = rng.random() < self.hot_prob
        if hot:
            pool_size = self.hotspot_size
            offset = 0
        else:
            pool_size = self.n_items - self.hotspot_size
            offset = self.hotspot_size
        if pool_size == 0:  # degenerate: hotspot covers everything
            pool_size, offset = self.hotspot_size, 0
        count = min(count, pool_size)
        indices = rng.sample(range(pool_size), count)
        return [item_key(offset + i, self.prefix) for i in indices]

    def is_hot(self, key: str) -> bool:
        return key in self._hot_keys


class ZipfianAccess(AccessPattern):
    """Power-law access: item rank r drawn with weight 1 / r^s.

    ``s`` near 1 matches web-catalogue and YCSB-style skew; items are
    ranked by index (item 0 hottest).  ``hot_top`` ranks are reported
    as "hot" for metrics (they have no behavioural effect).
    """

    def __init__(self, n_items: int, s: float = 0.99, hot_top: int = 100,
                 prefix: str = "item"):
        if n_items < 1:
            raise ValueError("need at least one item")
        if s <= 0:
            raise ValueError("zipf exponent must be positive")
        if hot_top < 0:
            raise ValueError("hot_top must be non-negative")
        self.n_items = n_items
        self.s = float(s)
        self.hot_top = min(hot_top, n_items)
        self.prefix = prefix
        ranks = np.arange(1, n_items + 1, dtype=float)
        weights = ranks ** -self.s
        self._cdf = np.cumsum(weights / weights.sum()).tolist()

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        count = min(count, self.n_items)
        chosen: List[int] = []
        seen = set()
        # Rejection loop: duplicates are rare unless count approaches
        # the head mass, and count is <= 4 in the buy workload.
        while len(chosen) < count:
            index = bisect.bisect_left(self._cdf, rng.random())
            index = min(index, self.n_items - 1)
            if index not in seen:
                seen.add(index)
                chosen.append(index)
        return [item_key(i, self.prefix) for i in chosen]

    def is_hot(self, key: str) -> bool:
        try:
            index = int(key.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            return False
        return index < self.hot_top
