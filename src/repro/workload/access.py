"""Item access patterns: uniform, hotspot, and Zipfian.

The hotspot pattern reproduces §6.4: a fraction of transactions (90 %
in the paper) pick their items inside a small hot region at the front
of the table; the rest pick uniformly from the cold remainder.  The
Zipfian pattern adds the power-law skew of real catalogues (and of the
YCSB benchmark the paper cites) as an extension.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List

import numpy as np

from repro.workload.items import item_key


class AccessPattern(ABC):
    """Chooses which items a transaction touches."""

    @abstractmethod
    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        """Pick ``count`` distinct item keys."""

    @abstractmethod
    def is_hot(self, key: str) -> bool:
        """Whether a key lies in the hotspot (always False if none)."""

    @abstractmethod
    def sample_batch(self, np_rng, counts):
        """Vectorized :meth:`sample_keys` for a whole arrival batch.

        ``counts`` is an integer array (one transaction size per
        arrival); returns ``(keys_per_txn, hot_flags)`` where
        ``keys_per_txn`` is a list of per-transaction key lists
        (distinct within each transaction, like the scalar path) and
        ``hot_flags`` a boolean numpy array marking transactions that
        touch the hotspot.  All randomness comes from ``np_rng`` — a
        generator obtained via
        :meth:`repro.sim.RandomStreams.numpy_generator` — in a fixed
        draw order, so batch sampling is deterministic per seed.  The
        per-index key strings are cached across batches: at aggregate
        scale the string formatting, not the drawing, is the hot cost.
        """

    def _cached_keys(self):
        cache = getattr(self, "_key_cache", None)
        if cache is None:
            cache = {}
            self._key_cache = cache
        return cache

    def _keys_for(self, indices) -> List[str]:
        """Indices -> cached key strings (one dict probe per key)."""
        cache = self._cached_keys()
        prefix = self.prefix
        keys = []
        append = keys.append
        for index in indices:
            key = cache.get(index)
            if key is None:
                key = item_key(index, prefix)
                cache[index] = key
            append(key)
        return keys


def _dedup_rows(indices, counts, redraw):
    """Make each row's used prefix distinct, matching the scalar
    rejection semantics.

    ``indices`` is the (batch, max_count) draw matrix; row ``j`` uses
    its first ``counts[j]`` entries.  Rows whose prefix already holds
    distinct values — the overwhelming majority when the pool dwarfs
    the transaction size — are untouched; colliding rows re-draw the
    duplicate slots through ``redraw(row)`` until distinct.  Redraws
    happen in ascending row order, so the generator consumption order
    (and therefore the whole batch) stays deterministic.
    """
    batch, max_count = indices.shape
    if max_count <= 1:
        return indices
    # Mask unused slots with unique negatives so they never collide.
    cols = np.arange(max_count)
    masked = np.where(cols[None, :] < counts[:, None], indices,
                      -(cols[None, :] + 1))
    ordered = np.sort(masked, axis=1)
    dup_rows = np.nonzero((ordered[:, 1:] == ordered[:, :-1]).any(axis=1))[0]
    for row in dup_rows:
        need = int(counts[row])
        seen = []
        used = set()
        for value in indices[row, :need]:
            value = int(value)
            while value in used:
                value = int(redraw(row))
            used.add(value)
            seen.append(value)
        indices[row, :need] = seen
    return indices


class UniformAccess(AccessPattern):
    """Every item equally likely."""

    def __init__(self, n_items: int, prefix: str = "item"):
        if n_items < 1:
            raise ValueError("need at least one item")
        self.n_items = n_items
        self.prefix = prefix

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        if count > self.n_items:
            raise ValueError(
                f"cannot pick {count} distinct items out of {self.n_items}")
        indices = rng.sample(range(self.n_items), count)
        return [item_key(i, self.prefix) for i in indices]

    def sample_batch(self, np_rng, counts):
        counts = np.asarray(counts, dtype=np.int64)
        batch = counts.shape[0]
        if batch == 0:
            return [], np.zeros(0, dtype=bool)
        max_count = int(counts.max())
        if max_count > self.n_items:
            raise ValueError(
                f"cannot pick {max_count} distinct items out of "
                f"{self.n_items}")
        indices = np_rng.integers(0, self.n_items, size=(batch, max_count))
        _dedup_rows(indices, counts,
                    lambda row: np_rng.integers(0, self.n_items))
        keys = [self._keys_for(indices[j, :counts[j]]) for j in range(batch)]
        return keys, np.zeros(batch, dtype=bool)

    def is_hot(self, key: str) -> bool:
        return False


class HotspotAccess(AccessPattern):
    """With probability ``hot_prob``, shop inside the hotspot.

    The hotspot is the first ``hotspot_size`` items.  A hot transaction
    picks *all* its items in the hotspot; a cold one picks all of them
    in the cold region, so the hot/cold split of transactions matches
    the paper's "90 % of transactions accessed an item in the hotspot".
    """

    def __init__(self, n_items: int, hotspot_size: int,
                 hot_prob: float = 0.9, prefix: str = "item"):
        if not 0 < hotspot_size <= n_items:
            raise ValueError(
                f"hotspot size {hotspot_size} outside (0, {n_items}]")
        if not 0.0 <= hot_prob <= 1.0:
            raise ValueError(f"hot_prob {hot_prob} outside [0, 1]")
        self.n_items = n_items
        self.hotspot_size = hotspot_size
        self.hot_prob = hot_prob
        self.prefix = prefix
        self._hot_keys = {item_key(i, prefix) for i in range(hotspot_size)}

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        hot = rng.random() < self.hot_prob
        if hot:
            pool_size = self.hotspot_size
            offset = 0
        else:
            pool_size = self.n_items - self.hotspot_size
            offset = self.hotspot_size
        if pool_size == 0:  # degenerate: hotspot covers everything
            pool_size, offset = self.hotspot_size, 0
        count = min(count, pool_size)
        indices = rng.sample(range(pool_size), count)
        return [item_key(offset + i, self.prefix) for i in indices]

    def sample_batch(self, np_rng, counts):
        counts = np.asarray(counts, dtype=np.int64)
        batch = counts.shape[0]
        if batch == 0:
            return [], np.zeros(0, dtype=bool)
        hot = np_rng.random(batch) < self.hot_prob
        cold_size = self.n_items - self.hotspot_size
        if cold_size == 0:
            # Degenerate: the hotspot covers everything, so "cold"
            # transactions shop in the hot region too (scalar parity).
            hot = np.ones(batch, dtype=bool)
        pools = np.where(hot, self.hotspot_size, cold_size)
        offsets = np.where(hot, 0, self.hotspot_size)
        counts = np.minimum(counts, pools)
        max_count = int(counts.max())
        # Per-row pool sizes: scale a uniform [0,1) draw by each row's
        # pool (random() < 1.0, so the floor never reaches the pool).
        indices = (np_rng.random((batch, max_count))
                   * pools[:, None]).astype(np.int64)
        _dedup_rows(indices, counts,
                    lambda row: int(np_rng.random() * pools[row]))
        indices += offsets[:, None]
        keys = [self._keys_for(indices[j, :counts[j]]) for j in range(batch)]
        return keys, hot

    def is_hot(self, key: str) -> bool:
        return key in self._hot_keys


class ZipfianAccess(AccessPattern):
    """Power-law access: item rank r drawn with weight 1 / r^s.

    ``s`` near 1 matches web-catalogue and YCSB-style skew; items are
    ranked by index (item 0 hottest).  ``hot_top`` ranks are reported
    as "hot" for metrics (they have no behavioural effect).
    """

    def __init__(self, n_items: int, s: float = 0.99, hot_top: int = 100,
                 prefix: str = "item"):
        if n_items < 1:
            raise ValueError("need at least one item")
        if s <= 0:
            raise ValueError("zipf exponent must be positive")
        if hot_top < 0:
            raise ValueError("hot_top must be non-negative")
        self.n_items = n_items
        self.s = float(s)
        self.hot_top = min(hot_top, n_items)
        self.prefix = prefix
        ranks = np.arange(1, n_items + 1, dtype=float)
        weights = ranks ** -self.s
        self._cdf_np = np.cumsum(weights / weights.sum())
        self._cdf = self._cdf_np.tolist()

    def sample_keys(self, rng: random.Random, count: int) -> List[str]:
        count = min(count, self.n_items)
        chosen: List[int] = []
        seen = set()
        # Rejection loop: duplicates are rare unless count approaches
        # the head mass, and count is <= 4 in the buy workload.
        while len(chosen) < count:
            index = bisect.bisect_left(self._cdf, rng.random())
            index = min(index, self.n_items - 1)
            if index not in seen:
                seen.add(index)
                chosen.append(index)
        return [item_key(i, self.prefix) for i in chosen]

    def sample_batch(self, np_rng, counts):
        counts = np.asarray(counts, dtype=np.int64)
        batch = counts.shape[0]
        if batch == 0:
            return [], np.zeros(0, dtype=bool)
        counts = np.minimum(counts, self.n_items)
        max_count = int(counts.max())
        last = self.n_items - 1
        indices = np.searchsorted(
            self._cdf_np, np_rng.random((batch, max_count)), side="left")
        np.minimum(indices, last, out=indices)

        def redraw(row):
            return min(int(np.searchsorted(
                self._cdf_np, np_rng.random(), side="left")), last)

        _dedup_rows(indices, counts, redraw)
        cols = np.arange(max_count)
        used = cols[None, :] < counts[:, None]
        hot = ((indices < self.hot_top) & used).any(axis=1)
        keys = [self._keys_for(indices[j, :counts[j]]) for j in range(batch)]
        return keys, hot

    def is_hot(self, key: str) -> bool:
        try:
            index = int(key.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            return False
        return index < self.hot_top
