"""Timeout-only transactions, as JDBC or Hibernate offer them.

Listing 1 of the paper: the application calls ``commit()`` with a
timeout; within the timeout it gets a boolean, otherwise an exception
whose meaning is unknowable — the transaction may be committed,
aborted, doomed to roll back, or lost.  We model exactly that
observable interface.  The simulation still learns the *true* eventual
outcome, which the Figure 5 experiment uses to show how much of the
"unknown" area the traditional model leaves behind — but the
application-visible outcome is only what a JDBC client would see.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.mdcc.coordinator import TransactionHandle, TransactionManager
from repro.sim import AnyOf, Environment, Event
from repro.storage.record import WriteOp


class TraditionalOutcome(enum.Enum):
    """What the application observed by the timeout."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    UNKNOWN = "unknown"  # the timeout exception: outcome unknowable


class TraditionalTransaction:
    """One fire-and-hope transaction.

    ``app_outcome`` is everything the application ever learns.
    ``true_committed`` / ``true_decided_ms`` record what actually
    happened underneath (invisible to a real JDBC client, used only by
    the experiment harness).
    """

    def __init__(self, env: Environment, handle: TransactionHandle,
                 timeout_ms: float):
        self.env = env
        self.handle = handle
        self.timeout_ms = float(timeout_ms)
        self.start_ms = env.now
        self.app_outcome: Optional[TraditionalOutcome] = None
        self.app_outcome_ms: Optional[float] = None
        self.true_committed: Optional[bool] = None
        self.true_decided_ms: Optional[float] = None
        #: Fires when the application regains control (result or timeout).
        self.returned_event: Event = env.event()
        env.process(self._wait())
        handle.progress_hooks.append(self._on_tm_event)

    @property
    def response_time_ms(self) -> Optional[float]:
        """Time until the application got an answer (or the timeout)."""
        if self.app_outcome_ms is None:
            return None
        return self.app_outcome_ms - self.start_ms

    def _wait(self):
        timeout = self.env.timeout(self.timeout_ms)
        yield AnyOf(self.env, [self.handle.decided_event, timeout])
        if self.app_outcome is not None:
            return
        if self.handle.result is not None:
            outcome = (TraditionalOutcome.COMMITTED
                       if self.handle.result.committed
                       else TraditionalOutcome.ABORTED)
        else:
            outcome = TraditionalOutcome.UNKNOWN
        self.app_outcome = outcome
        self.app_outcome_ms = self.env.now
        if not self.returned_event.triggered:
            self.returned_event.succeed(outcome)

    def _on_tm_event(self, stage: str, handle: TransactionHandle) -> None:
        if stage == "decided" and handle.result is not None:
            self.true_committed = handle.result.committed
            self.true_decided_ms = self.env.now


class TraditionalClient:
    """Issues traditional transactions over an MDCC client."""

    def __init__(self, cluster, name: str, datacenter: int):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.datacenter = datacenter
        self.tm: TransactionManager = cluster.create_client(name, datacenter)

    def execute(self, writes: Sequence[WriteOp], timeout_ms: float,
                read_keys: Optional[Sequence[str]] = None,
                think_time_ms: float = 0.0) -> TraditionalTransaction:
        """Start a transaction with a simple timeout (Listing 1)."""
        if timeout_ms <= 0:
            raise ValueError("timeout must be positive")
        handle = self.tm.begin(writes, read_keys=read_keys,
                               think_time_ms=think_time_ms)
        return TraditionalTransaction(self.env, handle, timeout_ms)
