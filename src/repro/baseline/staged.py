"""Staged-timeout transactions (the Galera / Oracle RAC pattern, §7).

Some systems let applications set *separate* timeouts for different
stages of a transaction — e.g. a send timeout until the server
acknowledges the request and a completion timeout for the commit.
The paper's critique: "how the timeouts effect the user application is
not obvious" — the application learns *which* stage timed out, but the
transaction's fate remains unknowable, and there is no later
notification.  Implementing the pattern on the same substrate makes
the comparison concrete: unlike PLANET's ``onAccept``, passing the
send stage carries no durable promise, and unlike the finally
callbacks, a stage timeout is a dead end.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.mdcc.coordinator import TransactionHandle, TransactionManager
from repro.sim import AnyOf, Environment, Event
from repro.storage.record import WriteOp


class StagedOutcome(enum.Enum):
    """What the application observed, per stage."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    SEND_TIMEOUT = "send_timeout"        # no server ack in time
    COMPLETION_TIMEOUT = "completion_timeout"  # acked, but no outcome


class StagedTimeoutTransaction:
    """One transaction with separate send and completion deadlines.

    ``send_timeout_ms`` bounds the wait for the first server
    acknowledgement; ``completion_timeout_ms`` bounds the wait for the
    outcome (measured from the start, like a JDBC timeout).  The
    application regains control at the earliest triggering deadline
    with a :class:`StagedOutcome`; nothing more is ever delivered.
    """

    def __init__(self, env: Environment, handle: TransactionHandle,
                 send_timeout_ms: float, completion_timeout_ms: float):
        if send_timeout_ms <= 0 or completion_timeout_ms <= 0:
            raise ValueError("timeouts must be positive")
        if completion_timeout_ms < send_timeout_ms:
            raise ValueError("completion timeout below the send timeout")
        self.env = env
        self.handle = handle
        self.start_ms = env.now
        self.send_timeout_ms = float(send_timeout_ms)
        self.completion_timeout_ms = float(completion_timeout_ms)
        self.app_outcome: Optional[StagedOutcome] = None
        self.app_outcome_ms: Optional[float] = None
        #: Fires when the application regains control.
        self.returned_event: Event = env.event()
        env.process(self._wait())

    @property
    def response_time_ms(self) -> Optional[float]:
        if self.app_outcome_ms is None:
            return None
        return self.app_outcome_ms - self.start_ms

    def _finish(self, outcome: StagedOutcome) -> None:
        self.app_outcome = outcome
        self.app_outcome_ms = self.env.now
        if not self.returned_event.triggered:
            self.returned_event.succeed(outcome)

    def _wait(self):
        # Stage 1: wait for the server ack (or the send deadline).
        send_deadline = self.env.timeout(self.send_timeout_ms)
        yield AnyOf(self.env, [self.handle.accepted_event, send_deadline])
        if not self.handle.accepted:
            self._finish(StagedOutcome.SEND_TIMEOUT)
            return
        # Stage 2: wait for the outcome (or the completion deadline).
        remaining = (self.start_ms + self.completion_timeout_ms
                     - self.env.now)
        if remaining <= 0:
            self._finish(StagedOutcome.COMPLETION_TIMEOUT)
            return
        completion_deadline = self.env.timeout(remaining)
        yield AnyOf(self.env,
                    [self.handle.decided_event, completion_deadline])
        if self.handle.result is None:
            self._finish(StagedOutcome.COMPLETION_TIMEOUT)
            return
        self._finish(StagedOutcome.COMMITTED
                     if self.handle.result.committed
                     else StagedOutcome.ABORTED)


class StagedTimeoutClient:
    """Issues staged-timeout transactions over an MDCC client."""

    def __init__(self, cluster, name: str, datacenter: int):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.datacenter = datacenter
        self.tm: TransactionManager = cluster.create_client(name, datacenter)

    def execute(self, writes: Sequence[WriteOp], send_timeout_ms: float,
                completion_timeout_ms: float,
                read_keys: Optional[Sequence[str]] = None,
                think_time_ms: float = 0.0) -> StagedTimeoutTransaction:
        handle = self.tm.begin(writes, read_keys=read_keys,
                               think_time_ms=think_time_ms)
        return StagedTimeoutTransaction(self.env, handle, send_timeout_ms,
                                        completion_timeout_ms)
