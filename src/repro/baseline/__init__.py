"""The traditional (JDBC/Hibernate-style) baseline model (§2.1).

A fire-and-hope transaction: issue, wait up to the timeout, and either
learn the outcome or be left with ``UNKNOWN`` — the application has no
way to discover the fate of a timed-out transaction.  Runs on the same
MDCC substrate as PLANET so every comparison isolates the programming
model, not the database.
"""

from repro.baseline.traditional import (
    TraditionalClient,
    TraditionalOutcome,
    TraditionalTransaction,
)
from repro.baseline.staged import (
    StagedOutcome,
    StagedTimeoutClient,
    StagedTimeoutTransaction,
)

__all__ = [
    "StagedOutcome",
    "StagedTimeoutClient",
    "StagedTimeoutTransaction",
    "TraditionalClient",
    "TraditionalOutcome",
    "TraditionalTransaction",
]
