"""repro.scenarios — the named chaos-scenario catalogue.

Each :class:`Scenario` pairs an environment script (correlated and
windowed faults from :mod:`repro.check.faults`: whole-DC ``outage``
with mastership failover, correlated ``brownout``, ``flappy_link``)
with a time-varying workload shape (:mod:`repro.workload.modulation`:
diurnal sinusoid, flash crowd, Zipf hot-key storm, mixed tenants).
Running a scenario (:mod:`repro.scenarios.runner`) crosses it with
the admission arms the paper compares — Fixed vs Dynamic, classic vs
fast ballots — and reports per-arm *degradation/recovery* metrics
from the commit-rate time series: dip depth, time-to-recover to 95 %
of the pre-fault rate, and p99 latency inflation.

``python -m repro.scenarios {list,run,report}`` is the CLI; the
``scenarios`` CI job runs the whole catalogue in ``--smoke`` and
gates on invariants + recovery.  See ``docs/scenarios.md``.
"""

from repro.scenarios.catalogue import (
    SCENARIOS,
    FaultSpec,
    Scenario,
    ShapeSpec,
    TenantShape,
    get_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    FULL,
    SMOKE,
    Arm,
    ArmResult,
    RunProfile,
    ScenarioReport,
    arms_for,
    build_config,
    render_csv,
    render_markdown,
    render_text,
    reports_digest,
    reports_json,
    run_arm,
    run_scenario,
)

__all__ = [
    "Arm",
    "ArmResult",
    "FULL",
    "FaultSpec",
    "RunProfile",
    "SCENARIOS",
    "SMOKE",
    "Scenario",
    "ScenarioReport",
    "ShapeSpec",
    "TenantShape",
    "arms_for",
    "build_config",
    "get_scenario",
    "render_csv",
    "render_markdown",
    "render_text",
    "reports_digest",
    "reports_json",
    "run_arm",
    "run_scenario",
    "scenario_names",
]
