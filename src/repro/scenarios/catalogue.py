"""The named chaos-scenario catalogue.

A :class:`Scenario` bundles an *environment script* (a declarative
fault program over :mod:`repro.check.faults`) with a *workload shape*
(time-varying rate modulation, access skew, tenant mix from
:mod:`repro.workload`), both expressed as **fractions of the
measurement window** so the same scenario scales from a CI smoke run
to a full evaluation run without editing the catalogue.  Scenarios
are versioned: bump ``version`` whenever a change alters the sample
path, so pinned recovery metrics fail loudly instead of drifting.

The catalogue itself is pure data — building a scenario into an
:class:`~repro.harness.ExperimentConfig` happens in
:mod:`repro.scenarios.runner`, at which point fractions become
absolute virtual-time windows.  ``python -m repro.scenarios list``
prints this table; ``docs/scenarios.md`` documents each entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.check.faults import ALL_KINDS, FaultAction, FaultSchedule
from repro.workload.modulation import (
    ComposedModulation,
    DiurnalModulation,
    FlashCrowdModulation,
    RateModulation,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault of a scenario, windowed in measurement-window fractions.

    ``start_frac``/``end_frac`` are fractions of the measurement
    window (0 = measurement start, 1 = measurement end); ``args`` are
    passed through to :class:`repro.check.FaultAction` unchanged.
    """

    kind: str
    start_frac: float
    end_frac: float
    args: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ValueError(
                f"bad fault window [{self.start_frac}, {self.end_frac}]")

    def action(self, warmup_ms: float, duration_ms: float,
               keys: Sequence[str] = ()) -> FaultAction:
        """Resolve the fractional window against absolute run windows.

        ``"auto"`` as ``failover_keys`` resolves to ``keys`` (the
        run's whole key space); the injector then fails over exactly
        the keys the dark DC leads.
        """
        args = dict(self.args)
        if args.get("failover_keys") == "auto":
            args["failover_keys"] = tuple(keys)
        return FaultAction(
            at_ms=warmup_ms + self.start_frac * duration_ms,
            kind=self.kind,
            until_ms=warmup_ms + self.end_frac * duration_ms,
            args=args)


@dataclass(frozen=True)
class ShapeSpec:
    """Declarative workload shape, windowed like :class:`FaultSpec`.

    ``diurnal`` is ``(period_frac, amplitude)``; ``flash`` is
    ``(start_frac, end_frac, magnitude)``.  Both resolve against the
    measurement window and compose multiplicatively.
    """

    diurnal: Optional[Tuple[float, float]] = None
    flash: Optional[Tuple[float, float, float]] = None

    def modulation(self, warmup_ms: float,
                   duration_ms: float) -> Optional[RateModulation]:
        parts = []
        if self.diurnal is not None:
            period_frac, amplitude = self.diurnal
            parts.append(DiurnalModulation(
                period_ms=period_frac * duration_ms, amplitude=amplitude,
                phase_ms=warmup_ms))
        if self.flash is not None:
            start_frac, end_frac, magnitude = self.flash
            parts.append(FlashCrowdModulation(
                start_ms=warmup_ms + start_frac * duration_ms,
                end_ms=warmup_ms + end_frac * duration_ms,
                magnitude=magnitude))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return ComposedModulation(tuple(parts))


@dataclass(frozen=True)
class TenantShape:
    """One tenant of a mixed-tenant scenario.

    ``share`` is the tenant's fraction of the scenario's aggregate
    rate; the shape resolves like :class:`ShapeSpec`.
    """

    name: str
    share: float
    read_fraction: float = 0.0
    shape: ShapeSpec = field(default_factory=ShapeSpec)

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError(f"tenant {self.name!r} share must be positive")


@dataclass(frozen=True)
class Scenario:
    """One named, versioned chaos scenario.

    ``disturbance`` is the fractional window the recovery gates judge
    against — for fault scenarios it matches the fault window, for
    pure-workload scenarios the surge window.
    """

    name: str
    title: str
    description: str
    version: int
    disturbance: Tuple[float, float]
    faults: Tuple[FaultSpec, ...] = ()
    shape: ShapeSpec = field(default_factory=ShapeSpec)
    tenants: Tuple[TenantShape, ...] = ()
    #: Zipf exponent for power-law key access (None = uniform).
    zipf_s: Optional[float] = None
    #: Scenario rate relative to the profile's base rate.
    rate_scale: float = 1.0

    def fault_schedule(self, warmup_ms: float, duration_ms: float,
                       keys: Sequence[str] = (),
                       ) -> Optional[FaultSchedule]:
        """The environment script at absolute virtual times."""
        if not self.faults:
            return None
        return FaultSchedule([spec.action(warmup_ms, duration_ms, keys)
                              for spec in self.faults])

    def disturbance_window(self, warmup_ms: float,
                           duration_ms: float) -> Tuple[float, float]:
        start_frac, end_frac = self.disturbance
        return (warmup_ms + start_frac * duration_ms,
                warmup_ms + end_frac * duration_ms)


#: The catalogue.  Order is the display/run order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="dc_outage_failover",
        title="Whole-DC outage with mastership failover",
        description=(
            "One data center goes dark mid-run: every storage "
            "partition crashes at once, mastership of a few hot keys "
            "fails over to the next DC, and the partitions come back "
            "staggered.  Measures how commit processing rides out the "
            "paper's headline failure."),
        version=1,
        disturbance=(0.25, 0.45),
        faults=(FaultSpec("outage", 0.25, 0.45, {
            "dc": 1, "failover_keys": "auto",
            "failover_dc": 2, "failover_after_ms": 120.0,
            "stagger_ms": 25.0}),),
    ),
    Scenario(
        name="wan_brownout",
        title="Correlated WAN brownout",
        description=(
            "Every link between three data centers inflates by a "
            "constant extra RTT for a sustained window — the "
            "correlated cross-DC congestion of §2, not a single "
            "flaky link.  Latency-sensitive admission should shed "
            "load instead of thrashing."),
        version=1,
        disturbance=(0.30, 0.60),
        faults=(FaultSpec("brownout", 0.30, 0.60, {
            "dcs": (0, 1, 2), "extra_ms": 220.0}),),
    ),
    Scenario(
        name="diurnal_flash_crowd",
        title="Diurnal cycle with a flash crowd",
        description=(
            "No network faults: the disturbance is the workload "
            "itself.  A day/night sinusoid modulates the base rate "
            "and a flash crowd multiplies it mid-run — the unpredictable "
            "load spikes PLANET's admission control is built for."),
        version=1,
        disturbance=(0.40, 0.60),
        shape=ShapeSpec(diurnal=(1.0 / 3.0, 0.25),
                        flash=(0.40, 0.60, 2.5)),
    ),
    Scenario(
        name="hotkey_storm",
        title="Zipfian hot-key storm",
        description=(
            "Power-law access (Zipf s=1.1) concentrates writes on a "
            "few keys, then a surge doubles the rate: contention on "
            "the head of the distribution, the §6.4 hotspot regime "
            "at its worst."),
        version=1,
        disturbance=(0.35, 0.60),
        shape=ShapeSpec(flash=(0.35, 0.60, 2.0)),
        zipf_s=1.1,
    ),
    Scenario(
        name="mixed_tenants",
        title="Mixed read-/write-heavy tenants under brownout",
        description=(
            "Two tenants share the cluster — one write-heavy and "
            "flat, one read-heavy with a diurnal swing — while a "
            "two-DC brownout degrades the WAN.  Checks that "
            "degradation and recovery hold under a heterogeneous "
            "mix, not just the single-knob workloads."),
        version=1,
        disturbance=(0.35, 0.55),
        faults=(FaultSpec("brownout", 0.35, 0.55, {
            "dcs": (0, 1), "extra_ms": 260.0}),),
        tenants=(
            TenantShape("writer", share=0.55),
            TenantShape("browser", share=0.45, read_fraction=0.6,
                        shape=ShapeSpec(diurnal=(1.0, 0.3))),
        ),
    ),
)


_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def scenario_names() -> Tuple[str, ...]:
    return tuple(scenario.name for scenario in SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ValueError(
            f"unknown scenario {name!r} (catalogue: {known})") from None
