"""CLI for the chaos-scenario catalogue.

::

    python -m repro.scenarios list
    python -m repro.scenarios run --all --smoke --check
    python -m repro.scenarios run dc_outage_failover --seed 3 --out DIR
    python -m repro.scenarios report --out DIR

``run`` exits non-zero when any arm breaks an invariant (with
``--check``) or never recovers to the 95 % bar — the same gate the
scenarios CI job enforces.  With ``--out`` it writes the recovery
table (text/markdown/CSV), the canonical JSON report, its sha256
digest, and (with ``--observe``) per-arm obs artifacts; ``--summary``
appends the markdown table to a file (``$GITHUB_STEP_SUMMARY`` in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.scenarios.catalogue import SCENARIOS, get_scenario, scenario_names
from repro.scenarios.runner import (
    FULL,
    SMOKE,
    ScenarioReport,
    arms_for,
    render_csv,
    render_markdown,
    render_text,
    reports_digest,
    reports_json,
    run_scenario,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':<22}{'ver':<5}{'faults':<28}title")
    print("-" * 78)
    for scenario in SCENARIOS:
        faults = (", ".join(spec.kind for spec in scenario.faults)
                  or "(workload only)")
        print(f"{scenario.name:<22}{scenario.version:<5}{faults:<28}"
              f"{scenario.title}")
    profile = SMOKE
    arms = ", ".join(arm.label for arm in arms_for(profile))
    print(f"\n{len(SCENARIOS)} scenarios; smoke arms: {arms}")
    return 0


def _write_artifacts(reports: Sequence[ScenarioReport], out: Path,
                     observe: bool) -> None:
    out.mkdir(parents=True, exist_ok=True)
    (out / "report.json").write_text(reports_json(reports) + "\n")
    (out / "recovery_table.txt").write_text(render_text(reports) + "\n")
    (out / "recovery_table.md").write_text(render_markdown(reports) + "\n")
    (out / "recovery_table.csv").write_text(render_csv(reports) + "\n")
    (out / "digest.txt").write_text(reports_digest(reports) + "\n")
    if observe:
        obs_dir = out / "obs"
        obs_dir.mkdir(exist_ok=True)
        for report in reports:
            for arm in report.arms:
                if arm.obs is None:
                    continue
                slug = arm.arm.replace("/", "-")
                path = obs_dir / f"{report.scenario}-{slug}.json"
                path.write_text(json.dumps(arm.obs, sort_keys=True))


def _append_summary(reports: Sequence[ScenarioReport], path: Path,
                    profile_label: str, seed: int) -> None:
    status = "PASS" if all(report.passed() for report in reports) else "FAIL"
    with path.open("a") as handle:
        handle.write(f"## Scenario recovery table ({profile_label}, "
                     f"seed {seed}) — {status}\n\n")
        handle.write(render_markdown(reports) + "\n\n")
        handle.write(f"digest: `{reports_digest(reports)}`\n")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names: List[str] = list(scenario_names())
    elif args.names:
        names = list(args.names)
    else:
        print("error: name one or more scenarios or pass --all",
              file=sys.stderr)
        return 2
    profile = FULL if args.full else SMOKE
    reports: List[ScenarioReport] = []
    for name in names:
        scenario = get_scenario(name)
        print(f"running {name} (v{scenario.version}, {profile.label}, "
              f"seed {args.seed})...", flush=True)
        reports.append(run_scenario(scenario, profile, args.seed,
                                    check=args.check, observe=args.observe))
    print()
    print(render_text(reports))
    print(f"\ndigest: {reports_digest(reports)}")
    if args.out is not None:
        _write_artifacts(reports, Path(args.out), args.observe)
        print(f"artifacts written to {args.out}")
    if args.summary is not None:
        _append_summary(reports, Path(args.summary), profile.label,
                        args.seed)
    failed = [report for report in reports if not report.passed()]
    for report in failed:
        for arm in report.arms:
            if not arm.recovered:
                print(f"FAIL {report.scenario} [{arm.arm}]: never "
                      f"recovered to 95% of baseline", file=sys.stderr)
            for violation in arm.violations:
                print(f"FAIL {report.scenario} [{arm.arm}]: {violation}",
                      file=sys.stderr)
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.out) / "report.json"
    if not path.exists():
        print(f"error: {path} not found (run with --out first)",
              file=sys.stderr)
        return 2
    raw = json.loads(path.read_text())
    reports = [_report_from_dict(entry) for entry in raw]
    print(render_text(reports))
    print(f"\ndigest: {reports_digest(reports)}")
    return 0 if all(report.passed() for report in reports) else 1


def _report_from_dict(entry: dict) -> ScenarioReport:
    from repro.scenarios.runner import ArmResult

    arms = [
        ArmResult(
            arm=arm["arm"],
            commit_tps=arm["commit_tps"],
            baseline_rate=arm["baseline_rate"],
            dip_depth=arm["dip_depth"],
            recovery_ms=arm["recovery_ms"],
            recovered=arm["recovered"],
            p99_before_ms=arm["p99_before_ms"],
            p99_during_ms=arm["p99_during_ms"],
            violations=list(arm["violations"]),
        )
        for arm in entry["arms"]
    ]
    return ScenarioReport(scenario=entry["scenario"],
                          version=entry["version"], seed=entry["seed"],
                          profile=entry["profile"], arms=arms)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Named chaos scenarios with degradation/recovery gates")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="print the scenario catalogue")

    run_parser = commands.add_parser(
        "run", help="run scenarios and gate on recovery + invariants")
    run_parser.add_argument("names", nargs="*",
                            help="scenario names (see `list`)")
    run_parser.add_argument("--all", action="store_true",
                            help="run the whole catalogue")
    run_parser.add_argument("--seed", type=int, default=0)
    scale = run_parser.add_mutually_exclusive_group()
    scale.add_argument("--smoke", action="store_true", default=True,
                       help="CI-sized windows, classic arms (default)")
    scale.add_argument("--full", action="store_true",
                       help="evaluation-sized windows, fast arms too")
    run_parser.add_argument("--check", action="store_true",
                            help="record histories and run CHK001-009")
    run_parser.add_argument("--observe", action="store_true",
                            help="collect obs artifacts per arm")
    run_parser.add_argument("--out", help="artifact directory")
    run_parser.add_argument("--summary",
                            help="append the markdown table to this file")

    report_parser = commands.add_parser(
        "report", help="re-render the table from a --out directory")
    report_parser.add_argument("--out", required=True)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_report(args)


if __name__ == "__main__":
    sys.exit(main())
