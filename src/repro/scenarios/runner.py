"""Runs catalogue scenarios and extracts degradation/recovery metrics.

One scenario run is a small experiment matrix: the scenario's
environment script and workload shape, crossed with the *arms* the
paper's admission story needs — Fixed(40 ms, 20 %) vs Dynamic(50 %)
admission, under classic and (in the full profile) fast ballots.
Every arm runs in its own kernel on the same seed; the arm label goes
into the experiment name, so arm streams are independent but each arm
is individually reproducible.

Per arm the runner reports, from the offline transaction records (the
pinned obs digests stay untouched — no new live instrumentation):

* the windowed commit-rate series (committed transactions bucketed by
  decision time, :func:`repro.obs.binned_rate`);
* degradation/recovery against the scenario's disturbance window
  (:func:`repro.obs.extract_recovery`): baseline rate, dip depth, and
  time-to-recover to 95 % of baseline;
* p99 response-time inflation (during-disturbance vs pre-disturbance
  p99 over committed transactions);
* optionally, protocol-invariant violations (CHK001–009) from a
  :class:`repro.check.HistoryRecorder` riding the run.

A scenario *passes* when every arm recovers and no arm violates an
invariant — the gate the scenarios CI tier enforces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check import HistoryRecorder, check_history
from repro.core.admission import AdmissionPolicy, DynamicPolicy, FixedPolicy
from repro.harness import Experiment, ExperimentConfig, TenantSpec
from repro.obs import binned_rate, extract_recovery, quantile
from repro.scenarios.catalogue import Scenario
from repro.workload.items import item_key

#: Recovery bar: an arm has recovered once its commit rate sustains
#: this fraction of the pre-disturbance baseline.
RECOVERY_THRESHOLD = 0.95


@dataclass(frozen=True)
class RunProfile:
    """How big one scenario run is (windows, cluster, rate)."""

    label: str
    topology: str
    n_datacenters: int
    rate_tps: float
    n_items: int
    warmup_ms: float
    duration_ms: float
    drain_ms: float
    timeout_ms: float
    oracle_samples: int
    bin_ms: float
    fast_arms: bool


#: CI-sized: seconds of virtual time per arm, classic arms only.
SMOKE = RunProfile(
    label="smoke", topology="uniform", n_datacenters=3, rate_tps=60.0,
    n_items=800, warmup_ms=3_000.0, duration_ms=12_000.0, drain_ms=5_000.0,
    timeout_ms=1_500.0, oracle_samples=300, bin_ms=300.0, fast_arms=False)

#: Evaluation-sized: the paper's EC2 topology, fast arms included.
FULL = RunProfile(
    label="full", topology="ec2", n_datacenters=5, rate_tps=150.0,
    n_items=5_000, warmup_ms=10_000.0, duration_ms=30_000.0,
    drain_ms=10_000.0, timeout_ms=3_000.0, oracle_samples=1_000,
    bin_ms=500.0, fast_arms=True)


@dataclass(frozen=True)
class Arm:
    """One cell of the scenario matrix: admission policy × mode."""

    admission: str   # "fixed" | "dynamic"
    mode: str        # "classic" | "fast"

    @property
    def label(self) -> str:
        return f"{self.admission}/{self.mode}"

    def policy(self) -> AdmissionPolicy:
        if self.admission == "fixed":
            return FixedPolicy(40.0, 20.0)
        if self.admission == "dynamic":
            return DynamicPolicy(50.0)
        raise ValueError(f"unknown admission arm {self.admission!r}")


def arms_for(profile: RunProfile) -> Tuple[Arm, ...]:
    modes = ("classic", "fast") if profile.fast_arms else ("classic",)
    return tuple(Arm(admission, mode)
                 for mode in modes
                 for admission in ("fixed", "dynamic"))


@dataclass
class ArmResult:
    """Degradation/recovery readout for one arm of one scenario."""

    arm: str
    commit_tps: float
    baseline_rate: float
    dip_depth: float
    recovery_ms: Optional[float]
    recovered: bool
    p99_before_ms: float
    p99_during_ms: float
    violations: List[str] = field(default_factory=list)
    obs: Optional[Dict[str, object]] = None

    @property
    def p99_inflation(self) -> float:
        if self.p99_before_ms <= 0.0:
            return 1.0
        return self.p99_during_ms / self.p99_before_ms

    def passed(self) -> bool:
        return self.recovered and not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "arm": self.arm,
            "commit_tps": round(self.commit_tps, 6),
            "baseline_rate": round(self.baseline_rate, 6),
            "dip_depth": round(self.dip_depth, 6),
            "recovery_ms": (None if self.recovery_ms is None
                            else round(self.recovery_ms, 6)),
            "recovered": self.recovered,
            "p99_before_ms": round(self.p99_before_ms, 6),
            "p99_during_ms": round(self.p99_during_ms, 6),
            "p99_inflation": round(self.p99_inflation, 6),
            "violations": list(self.violations),
        }


@dataclass
class ScenarioReport:
    """All arms of one scenario on one seed."""

    scenario: str
    version: int
    seed: int
    profile: str
    arms: List[ArmResult]

    def passed(self) -> bool:
        return all(arm.passed() for arm in self.arms)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "version": self.version,
            "seed": self.seed,
            "profile": self.profile,
            "passed": self.passed(),
            "arms": [arm.to_dict() for arm in self.arms],
        }


def build_config(scenario: Scenario, arm: Arm, profile: RunProfile,
                 seed: int, observe: bool = False) -> ExperimentConfig:
    """Resolve one (scenario, arm) cell into an experiment config."""
    warmup, duration = profile.warmup_ms, profile.duration_ms
    rate = profile.rate_tps * scenario.rate_scale
    tenants: Optional[Tuple[TenantSpec, ...]] = None
    if scenario.tenants:
        tenants = tuple(
            TenantSpec(
                name=shape.name,
                rate_tps=rate * shape.share,
                read_fraction=shape.read_fraction,
                modulation=shape.shape.modulation(warmup, duration))
            for shape in scenario.tenants)
    return ExperimentConfig(
        name=f"{scenario.name}-{arm.admission}-{arm.mode}",
        seed=seed,
        mode=arm.mode,
        topology=profile.topology,
        n_datacenters=profile.n_datacenters,
        n_items=profile.n_items,
        zipf_s=scenario.zipf_s,
        rate_tps=rate,
        timeout_ms=profile.timeout_ms,
        admission=arm.policy(),
        stats_mode="oracle",
        oracle_samples=profile.oracle_samples,
        warmup_ms=warmup,
        duration_ms=duration,
        drain_ms=profile.drain_ms,
        modulation=scenario.shape.modulation(warmup, duration),
        tenants=tenants,
        faults=scenario.fault_schedule(
            warmup, duration,
            keys=[item_key(index) for index in range(profile.n_items)]),
        observe=observe,
    )


def run_arm(scenario: Scenario, arm: Arm, profile: RunProfile, seed: int,
            check: bool = False, observe: bool = False) -> ArmResult:
    """Run one arm and extract its degradation/recovery readout."""
    config = build_config(scenario, arm, profile, seed, observe=observe)
    experiment = Experiment(config)
    recorder: Optional[HistoryRecorder] = None
    if check:
        recorder = HistoryRecorder()
        recorder.attach(experiment.cluster)
    result = experiment.run()
    violations: List[str] = []
    if recorder is not None:
        history = recorder.detach()
        violations = [f"{violation.code}: {violation.message}"
                      for violation in check_history(history)]

    total = profile.warmup_ms + profile.duration_ms
    fault_start, fault_end = scenario.disturbance_window(
        profile.warmup_ms, profile.duration_ms)
    records = result.metrics.all_records
    # Commit-rate series over the whole run (decision times); the
    # baseline skips the first half of warmup while the open system
    # ramps to equilibrium.
    commits = [record.decided_ms for record in records
               if record.committed and record.decided_ms is not None]
    series = binned_rate(commits, 0.0, total, profile.bin_ms)
    # Cap the baseline at the *sustainable* commit rate — offered rate
    # times the pre-fault commit fraction.  The fraction is a ratio,
    # so a lucky arrival stretch in the baseline window cannot set a
    # recovery bar above what the system can hold long-run.
    pre = [record for record in records
           if profile.warmup_ms / 2.0 <= record.issued_ms < fault_start]
    commit_fraction = (sum(record.committed is True for record in pre)
                       / len(pre)) if pre else 1.0
    offered = profile.rate_tps * scenario.rate_scale
    recovery = extract_recovery(
        series, fault_start, fault_end,
        baseline_start_ms=profile.warmup_ms / 2.0,
        threshold=RECOVERY_THRESHOLD, sustain_bins=3,
        baseline_cap=offered * commit_fraction)
    before = [record.response_ms for record in records
              if record.committed
              and profile.warmup_ms / 2.0 <= record.issued_ms < fault_start
              and record.response_ms is not None]
    during = [record.response_ms for record in records
              if record.committed
              and fault_start <= record.issued_ms < fault_end
              and record.response_ms is not None]
    return ArmResult(
        arm=arm.label,
        commit_tps=result.metrics.commit_tps(),
        baseline_rate=recovery.baseline_rate,
        dip_depth=recovery.dip_depth,
        recovery_ms=recovery.recovery_ms,
        recovered=recovery.recovered,
        p99_before_ms=quantile(before, 0.99),
        p99_during_ms=quantile(during, 0.99),
        violations=violations,
        obs=result.obs,
    )


def run_scenario(scenario: Scenario, profile: RunProfile, seed: int,
                 check: bool = False,
                 observe: bool = False) -> ScenarioReport:
    """Run every arm of one scenario on one seed."""
    return ScenarioReport(
        scenario=scenario.name,
        version=scenario.version,
        seed=seed,
        profile=profile.label,
        arms=[run_arm(scenario, arm, profile, seed,
                      check=check, observe=observe)
              for arm in arms_for(profile)])


# -- the recovery table -------------------------------------------------------

TABLE_HEADERS = ("scenario", "arm", "commit tps", "baseline/s",
                 "dip depth", "recover ms", "p99 before", "p99 during",
                 "p99 infl", "checks")


def table_rows(reports: Sequence[ScenarioReport]) -> List[Tuple[str, ...]]:
    rows: List[Tuple[str, ...]] = []
    for report in reports:
        for arm in report.arms:
            recover = (f"{arm.recovery_ms:.0f}" if arm.recovery_ms is not None
                       else "never")
            checks = ("-" if not arm.violations else
                      f"{len(arm.violations)} violation(s)")
            rows.append((
                report.scenario, arm.arm,
                f"{arm.commit_tps:.1f}", f"{arm.baseline_rate:.1f}",
                f"{arm.dip_depth:.2f}", recover,
                f"{arm.p99_before_ms:.0f}", f"{arm.p99_during_ms:.0f}",
                f"{arm.p99_inflation:.2f}", checks))
    return rows


def render_text(reports: Sequence[ScenarioReport]) -> str:
    rows = table_rows(reports)
    widths = [max(len(header), *(len(row[index]) for row in rows))
              if rows else len(header)
              for index, header in enumerate(TABLE_HEADERS)]
    lines = [
        "  ".join(header.ljust(widths[index])
                  for index, header in enumerate(TABLE_HEADERS)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown(reports: Sequence[ScenarioReport]) -> str:
    lines = [
        "| " + " | ".join(TABLE_HEADERS) + " |",
        "| " + " | ".join("---" for _ in TABLE_HEADERS) + " |",
    ]
    for row in table_rows(reports):
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_csv(reports: Sequence[ScenarioReport]) -> str:
    lines = [",".join(header.replace(" ", "_")
                      for header in TABLE_HEADERS)]
    for row in table_rows(reports):
        lines.append(",".join(row))
    return "\n".join(lines)


def reports_json(reports: Sequence[ScenarioReport]) -> str:
    return json.dumps([report.to_dict() for report in reports],
                      indent=2, sort_keys=True)


def reports_digest(reports: Sequence[ScenarioReport]) -> str:
    """sha256 over the canonical JSON — the determinism pin."""
    return hashlib.sha256(
        reports_json(reports).encode("utf-8")).hexdigest()
