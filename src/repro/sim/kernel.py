"""Heap-driven discrete-event simulation kernel.

The design follows the classic generator-based cooperative style (as
popularised by SimPy): a :class:`Process` wraps a Python generator that
``yield``\\ s :class:`Event` objects; the kernel resumes the generator
when the yielded event fires.  The kernel is deliberately small and
fully deterministic: ties in time are broken by a monotonically
increasing sequence number, so two runs with the same seeds produce
identical traces.

Hot-path notes
--------------
Every message a figure-scale experiment sends becomes at least one
:class:`Event` through this kernel, so the per-event constant factors
here bound the whole reproduction's wall-clock time.  Three deliberate
choices keep them small:

* every kernel class declares ``__slots__`` (no per-instance dict;
  attribute access compiles to a fixed-offset load),
* the failure-propagation flag ``_defused`` is a slotted attribute
  initialized in ``Event.__init__`` rather than a ``getattr`` probe in
  the event loop, and
* :meth:`Environment.run` inlines the body of :meth:`Environment.step`
  with the queue and ``heappop`` bound to locals — one Python frame per
  event instead of two.

``python -m repro.perf`` benchmarks this loop; regressions fail CI.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right as _bisect_right
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

_heappush = heapq.heappush
_heappop = heapq.heappop

_INF = float("inf")

#: Sentinel for an event that has not yet been given a value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three phases: *pending* (just created),
    *triggered* (given a value and scheduled on the event queue), and
    *processed* (its callbacks have run).  Waiting processes register
    themselves in :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        #: True once a waiter has taken responsibility for a failure;
        #: the event loop then will not re-raise it.  A plain slotted
        #: bool (not a getattr probe) — the loop reads it per event.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` virtual ms."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened Event.__init__ (no super() call): timeouts are the
        # single most common event the workload generators create.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self)


class Process(Event):
    """A running simulation process, wrapping a generator.

    The process itself is an event that triggers when the generator
    terminates: with the generator's return value on normal exit, or
    with the raised exception on failure.  Other processes may
    ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is an error; interrupting yourself
        is too (a process cannot be suspended and interrupted at once).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process is currently waiting on, then
        # schedule an immediate resume carrying the Interrupt.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup.callbacks.append(self._resume)
        wakeup._defused = True  # never propagate to the kernel
        self.env.schedule(wakeup, priority=Environment.PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Mark the failure as handled by this process.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}")
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if next_event.env is not env:
                raise SimulationError(
                    "yielded an event from a different environment")
            if next_event.callbacks is not None:
                # Event still pending/triggered: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop and feed its value directly.
            event = next_event

        env._active_process = None


class ConditionEvent(Event):
    """Base for events that fire when a set of child events *occur*.

    A child is considered to have occurred once it is *processed* (its
    callbacks have run), not merely triggered: a :class:`Timeout` holds
    its value from construction but only occurs when the clock reaches
    it.
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError(
                    "condition mixes events from different environments")
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _collect(self) -> dict:
        """Values of all children that have occurred so far."""
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires once every child event has occurred (or any child fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if all(child.processed for child in self.events):
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Fires as soon as the first child event occurs."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class TimerLane:
    """A batch of pre-sorted deadlines drained ahead of the event heap.

    Homogeneous timer floods — the aggregate workload engine's arrival
    batches, mass retry timers — do not need one heap entry (plus one
    :class:`Timeout` object and one generator resume) per deadline.  A
    lane holds the whole batch as a flat, already-sorted array of
    virtual timestamps; the event loop fires ``callback(index)`` for
    each entry when the clock reaches it, interleaved correctly with
    ordinary heap events.

    Ordering contract: a lane entry at time *t* fires after every heap
    event scheduled strictly before *t* and before every heap event
    scheduled strictly after *t*.  At exactly equal timestamps the
    heap wins — a lane entry ranks behind every already-queued event
    at its own timestamp (in particular behind the urgent stop event
    ``run(until=t)`` plants, matching :class:`Timeout` semantics at a
    window boundary).  Within one lane, entries fire in array order.

    Lanes are registered via :meth:`Environment.add_timer_lane` and
    remove themselves once drained.  A lane whose entries are no
    longer wanted is :meth:`cancel`\\ led; pending entries are simply
    never fired.  The kernel pays nothing for the feature while no
    lane is registered (one truthiness check per processed event,
    bounded by the kernel bench), and a registered lane survives
    across successive :meth:`Environment.run` windows exactly like
    queued timeouts do.
    """

    __slots__ = ("_deadlines", "_index", "_n", "_callback")

    def __init__(self, deadlines: Sequence[float],
                 callback: Callable[[int], None]):
        # A plain list of floats: scalar reads off a numpy array box a
        # np.float64 per access, which the drain loop would pay per
        # entry.  ``tolist()`` converts once at C speed.
        values: List[float] = (
            deadlines.tolist() if hasattr(deadlines, "tolist")
            else [float(value) for value in deadlines])
        for earlier, later in zip(values, values[1:]):
            if later < earlier:
                raise ValueError("lane deadlines must be sorted")
        self._deadlines = values
        self._index = 0
        self._n = len(values)
        self._callback = callback

    @property
    def exhausted(self) -> bool:
        """True once every entry has fired (or the lane was cancelled)."""
        return self._index >= self._n

    @property
    def remaining(self) -> int:
        return self._n - self._index if self._index < self._n else 0

    def head(self) -> float:
        """Deadline of the next entry, or ``inf`` when exhausted."""
        return self._deadlines[self._index] if self._index < self._n else _INF

    def cancel(self) -> None:
        """Drop all unfired entries; the loop reaps the lane lazily."""
        self._index = self._n

    def __repr__(self) -> str:
        return (f"<TimerLane {self.remaining}/{self._n} pending "
                f"at {id(self):#x}>")


#: WheelTimer lifecycle states (plain ints: compared in the fire loop).
_TIMER_PENDING = 0
_TIMER_FIRED = 1
_TIMER_CANCELLED = 2

_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1
#: Ticks spanned by the three bucket levels together (256**3); beyond
#: this a timer waits in the overflow list until the clock gets close.
_WHEEL_SPAN = _WHEEL_SLOTS ** 3


class WheelTimer:
    """Handle for one deadline armed on a :class:`TimerWheel`.

    The handle is what makes the wheel *cancelable*: holders call
    :meth:`cancel` when the thing they were guarding (an RPC reply, a
    Paxos decision, a transaction outcome) arrives first, and the
    wheel simply never runs the callback — no heap event was ever
    scheduled and no dead generator is ever resumed.  Cancelling an
    already-fired or already-cancelled timer is a no-op.
    """

    __slots__ = ("when", "callback", "_seq", "_tick", "_state", "_wheel")

    def __init__(self, when: float, callback: Callable[[], None],
                 seq: int, tick: int, wheel: "TimerWheel"):
        self.when = when
        self.callback = callback
        self._seq = seq
        self._tick = tick
        self._state = _TIMER_PENDING
        self._wheel = wheel

    def __lt__(self, other: "WheelTimer") -> bool:
        # Total order (when, arm sequence): same-deadline timers fire
        # in arm order, matching the heap's eid tie-break discipline.
        if self.when != other.when:
            return self.when < other.when
        return self._seq < other._seq

    @property
    def active(self) -> bool:
        """True while the timer may still fire."""
        return self._state == _TIMER_PENDING

    @property
    def fired(self) -> bool:
        return self._state == _TIMER_FIRED

    @property
    def cancelled(self) -> bool:
        return self._state == _TIMER_CANCELLED

    def cancel(self) -> None:
        """Drop the timer; O(1), the wheel reaps the entry lazily."""
        if self._state == _TIMER_PENDING:
            self._state = _TIMER_CANCELLED
            wheel = self._wheel
            wheel._live -= 1
            wheel.cancelled_total += 1

    def __repr__(self) -> str:
        state = ("pending", "fired", "cancelled")[self._state]
        return f"<WheelTimer {state} when={self.when} at {id(self):#x}>"


class TimerWheel:
    """Hierarchical timer wheel for cancelable one-shot deadlines.

    :class:`TimerLane` serves *homogeneous, pre-sorted* batches; the
    wheel serves the other timeout flood a commit protocol produces:
    heterogeneous deadlines armed one at a time (RPC expiries, round
    timeouts, transaction deadlines) of which the overwhelming
    majority are cancelled before they fire.  Three levels of 256
    buckets hold timers hashed by their deadline tick (1 tick =
    ``granularity_ms`` of virtual time, 1 ms by default); arming and
    cancelling are O(1) amortized, and a cancelled timer costs nothing
    beyond its bucket slot until the cursor sweeps past it.

    Ordering contract (mirrors :class:`TimerLane`): a live timer at
    time *t* fires after every heap event scheduled strictly before
    *t* and before every heap event strictly after *t*; at exactly
    equal timestamps the heap wins, then lanes, then the wheel, and a
    ``run(until=t)`` boundary stops *before* a wheel timer at exactly
    ``t`` (the timer survives into the next run window).  Same-tick
    timers fire in exact ``when`` order, ties broken by arm order.

    The wheel keeps a *stale-allowed* head (``_head`` is a lower
    bound on the earliest live deadline, repaired lazily when the
    event loop visits it), so cancellation never pays to re-scan
    buckets.  While nothing is armed the event loop pays one slotted
    attribute read per processed event — bounded by the kernel bench.
    """

    __slots__ = ("granularity_ms", "_levels", "_counts", "_overflow",
                 "_cursor", "_due", "_due_i", "_head", "_live", "_seq",
                 "armed_total", "cancelled_total", "fired_total")

    def __init__(self, granularity_ms: float = 1.0,
                 start_ms: float = 0.0):
        if granularity_ms <= 0:
            raise ValueError(f"granularity {granularity_ms} must be > 0")
        self.granularity_ms = float(granularity_ms)
        self._levels: List[List[List[WheelTimer]]] = [
            [[] for _ in range(_WHEEL_SLOTS)] for _ in range(3)]
        #: Entries per level (cancelled included until reaped): lets
        #: the cursor skip whole windows without touching 256 slots.
        self._counts = [0, 0, 0]
        self._overflow: List[WheelTimer] = []
        self._cursor = int(start_ms / self.granularity_ms)
        #: Sorted timers whose tick the cursor has reached, consumed
        #: from ``_due_i``; the prefix before it is spent (fired,
        #: cancelled, or skipped-cancelled) and never re-inspected.
        self._due: List[WheelTimer] = []
        self._due_i = 0
        self._head = _INF
        self._live = 0
        self._seq = 0
        self.armed_total = 0
        self.cancelled_total = 0
        self.fired_total = 0

    @property
    def live(self) -> int:
        """Number of armed timers that may still fire."""
        return self._live

    def arm(self, when: float, callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` to run at virtual time ``when``; O(1)."""
        tick = int(when / self.granularity_ms)
        timer = WheelTimer(when, callback, self._seq, tick, self)
        self._seq += 1
        if tick <= self._cursor:
            # Already inside the due window (arms from a firing
            # callback land here).  Insert after the consumed prefix —
            # an earlier cancelled-and-skipped entry may carry a later
            # deadline, and bisecting the whole list could then bury
            # the new timer behind the consume pointer.
            due = self._due
            due.insert(_bisect_right(due, timer, self._due_i), timer)
        else:
            self._place(timer, self._cursor)
        live = self._live
        self._live = live + 1
        self.armed_total += 1
        if not live or when < self._head:
            # First live timer after a fully-cancelled era: the stale
            # head may lie in the past, so reset it, never min() it.
            self._head = when
        return timer

    def next_deadline(self) -> float:
        """Exact earliest live deadline (``inf`` when none).

        Repairs the stale head, reaping spent due entries en route;
        used by ``peek``/``step`` and at run-window boundaries, while
        the inlined fast loops consult the cheap stale bound.
        """
        if not self._live:
            return _INF
        due = self._due
        i = self._due_i
        n = len(due)
        while i < n:
            timer = due[i]
            if timer._state == _TIMER_PENDING:
                self._due_i = i
                self._head = timer.when
                return timer.when
            i += 1
        self._due_i = n
        self._refill()
        return self._head

    def _fire_head(self) -> None:
        """Run the callback of the timer at the cached head.

        The event loop calls this with the clock already advanced to
        ``_head``.  If the head is stale (its timer was cancelled),
        this repairs the cache and fires nothing — the loop simply
        comes around again.  At most one timer fires per call, and the
        head is exact again before the callback runs (callbacks may
        arm or cancel freely).
        """
        due = self._due
        i = self._due_i
        n = len(due)
        target = self._head
        while i < n:
            timer = due[i]
            if timer._state != _TIMER_PENDING:
                i += 1
                continue
            if timer.when > target:
                # Stale head: the timer it pointed at was cancelled.
                self._due_i = i
                self._head = timer.when
                return
            i += 1
            self._due_i = i
            timer._state = _TIMER_FIRED
            self._live -= 1
            self.fired_total += 1
            j = i
            while j < n and due[j]._state != _TIMER_PENDING:
                j += 1
            if j < n:
                self._due_i = j
                self._head = due[j].when
            else:
                self._due_i = j
                self._refill()
            timer.callback()
            return
        self._due_i = i
        self._refill()

    # -- bucket machinery ---------------------------------------------

    def _place(self, timer: WheelTimer, cursor: int) -> None:
        """File a future timer into the level its distance selects."""
        tick = timer._tick
        delta = tick - cursor
        if delta < _WHEEL_SLOTS:
            self._levels[0][tick & _WHEEL_MASK].append(timer)
            self._counts[0] += 1
        elif delta < _WHEEL_SLOTS ** 2:
            self._levels[1][(tick >> 8) & _WHEEL_MASK].append(timer)
            self._counts[1] += 1
        elif delta < _WHEEL_SPAN:
            self._levels[2][(tick >> 16) & _WHEEL_MASK].append(timer)
            self._counts[2] += 1
        else:
            self._overflow.append(timer)

    def _cascade(self, level: int, cursor: int) -> None:
        """Re-file the slot the cursor just reached one level down.

        Timers whose tick equals the new cursor join the due list;
        cancelled entries are dropped here, which is the lazy-cancel
        reap point for bucketed timers.
        """
        slot_index = (cursor >> (8 * level)) & _WHEEL_MASK
        entries = self._levels[level][slot_index]
        if not entries:
            return
        self._levels[level][slot_index] = []
        self._counts[level] -= len(entries)
        due = self._due
        for timer in entries:
            if timer._state != _TIMER_PENDING:
                continue
            if timer._tick <= cursor:
                due.append(timer)
            else:
                self._place(timer, cursor)

    def _sift_overflow(self, cursor: int) -> None:
        """Re-file overflow timers now that the clock moved 256³ ticks."""
        pending = self._overflow
        if not pending:
            return
        self._overflow = []
        due = self._due
        for timer in pending:
            if timer._state != _TIMER_PENDING:
                continue
            if timer._tick <= cursor:
                due.append(timer)
            else:
                self._place(timer, cursor)

    def _refill(self) -> None:
        """Advance the cursor to the next live deadline, rebuilding the
        due list.  Only called once the previous due list is fully
        consumed.  Amortized O(1) per timer plus O(windows crossed)."""
        self._due = []
        self._due_i = 0
        if not self._live:
            self._head = _INF
            if (self._counts[0] or self._counts[1] or self._counts[2]
                    or self._overflow):
                # Only cancelled husks remain: drop them all at once
                # rather than letting the cursor chase them.
                self._levels = [
                    [[] for _ in range(_WHEEL_SLOTS)] for _ in range(3)]
                self._counts = [0, 0, 0]
                self._overflow = []
            return
        levels = self._levels
        counts = self._counts
        l0 = levels[0]
        while True:
            cursor = self._cursor
            window_end = cursor | _WHEEL_MASK
            if counts[0]:
                for tick in range(cursor + 1, window_end + 1):
                    slot = l0[tick & _WHEEL_MASK]
                    self._cursor = tick
                    if slot:
                        l0[tick & _WHEEL_MASK] = []
                        counts[0] -= len(slot)
                        live = [timer for timer in slot
                                if timer._state == _TIMER_PENDING]
                        if live:
                            live.sort()
                            self._due = live
                            self._head = live[0].when
                            return
            boundary = window_end + 1
            self._cursor = boundary
            if not (counts[0] or counts[1] or counts[2] or self._overflow):
                raise SimulationError("timer wheel lost a live timer")
            if (boundary >> 8) & _WHEEL_MASK == 0:
                if (boundary >> 16) & _WHEEL_MASK == 0:
                    self._sift_overflow(boundary)
                self._cascade(2, boundary)
            self._cascade(1, boundary)
            # Level-0 entries at exactly the new boundary tick were
            # placed before the cursor reached it; the window scan
            # above starts one past the boundary, so collect them now.
            slot = l0[boundary & _WHEEL_MASK]
            if slot:
                l0[boundary & _WHEEL_MASK] = []
                counts[0] -= len(slot)
                due = self._due
                for timer in slot:
                    if timer._state == _TIMER_PENDING:
                        due.append(timer)
            due = self._due
            if due:
                due.sort()
                self._head = due[0].when
                return

    def __repr__(self) -> str:
        return (f"<TimerWheel live={self._live} armed={self.armed_total} "
                f"cancelled={self.cancelled_total} "
                f"fired={self.fired_total} at {id(self):#x}>")


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(10)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 10.0
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "_lanes",
                 "_wheel", "tracer", "metrics", "spans", "process_wrapper")

    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Registered :class:`TimerLane` batches (usually zero or one).
        #: The event loop drains due lane entries ahead of the heap;
        #: an empty list keeps the feature free.
        self._lanes: List[TimerLane] = []
        #: Cancelable one-shot deadlines (RPC expiries, round and
        #: transaction timeouts) live here instead of the heap; while
        #: nothing is armed the loop pays one attribute read per event.
        self._wheel = TimerWheel(start_ms=self._now)
        #: Optional structured-event sink: a callable
        #: ``(ts_ms, etype, node, fields)`` installed by the history
        #: recorder (``repro.check``).  ``None`` keeps tracing free:
        #: instrumented components guard their ``trace`` calls with
        #: ``if env.tracer is not None`` so disabled runs pay only an
        #: attribute check per hook site.
        self.tracer: Optional[Callable[[float, str, str, dict], None]] = None
        #: Optional observability hooks (``repro.obs``), duck-typed so
        #: the kernel never imports that package: ``metrics`` is a
        #: MetricsRegistry, ``spans`` a SpanRecorder.  Both default to
        #: ``None`` and follow the same zero-cost contract as
        #: :attr:`tracer` — instrumented layers guard each site with an
        #: ``is not None`` check, verified by the ``obs`` perf bench.
        self.metrics: Optional[Any] = None
        self.spans: Optional[Any] = None
        #: Optional generator wrapper applied once per
        #: :meth:`process` call, same zero-cost contract as the hooks
        #: above (one ``is not None`` check at process creation, never
        #: in the event loop).  The atomicity sanitizer
        #: (``repro.check.atomicity``) uses it to interpose yield-point
        #: snapshots without the kernel importing that package.
        self.process_wrapper: Optional[
            Callable[[Generator], Generator]] = None

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def trace(self, etype: str, node: str = "", **fields: Any) -> None:
        """Emit one structured history event to the installed tracer.

        A no-op while :attr:`tracer` is ``None``; every instrumented
        layer (transport, Paxos, coordinator, storage) funnels its
        events through here so a recorder sees one totally ordered
        stream stamped with the virtual clock.
        """
        if self.tracer is not None:
            self.tracer(self._now, etype, node, fields)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` virtual ms."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        wrapper = self.process_wrapper
        if wrapper is not None:
            generator = wrapper(generator)
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def add_timer_lane(self, deadlines: Sequence[float],
                       callback: Callable[[int], None]) -> TimerLane:
        """Register a sorted batch of deadlines fired as ``callback(i)``.

        ``deadlines`` (a numpy array or any float sequence, sorted
        non-decreasing, all >= ``now``) is drained ahead of the event
        heap under the ordering contract documented on
        :class:`TimerLane`.  An empty batch returns an already
        exhausted lane without registering anything.
        """
        lane = TimerLane(deadlines, callback)
        if not lane.exhausted:
            if lane.head() < self._now:
                raise ValueError(
                    f"lane deadline {lane.head()} lies in the past "
                    f"(now={self._now})")
            self._lanes.append(lane)
        return lane

    @property
    def timer_wheel(self) -> TimerWheel:
        """The environment's cancelable-deadline wheel (always present)."""
        return self._wheel

    def arm_timer(self, deadline_ms: float,
                  callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` to run at virtual time ``deadline_ms``.

        Returns a :class:`WheelTimer` handle whose :meth:`~WheelTimer.
        cancel` drops the deadline in O(1) — the idiom for protocol
        timeouts that are almost always won by the event they guard.
        Unlike a heap :class:`Timeout`, a cancelled wheel timer never
        schedules anything and never keeps :meth:`run` alive.
        """
        if deadline_ms < self._now:
            raise ValueError(
                f"deadline {deadline_ms} lies in the past "
                f"(now={self._now})")
        return self._wheel.arm(deadline_ms, callback)

    def _peek_lane(self) -> Optional[Tuple[float, TimerLane]]:
        """Earliest live lane head, reaping exhausted lanes en route."""
        lanes = self._lanes
        best: Optional[TimerLane] = None
        best_when = _INF
        index = 0
        while index < len(lanes):
            lane = lanes[index]
            if lane._index >= lane._n:
                lanes.pop(index)
                continue
            when = lane._deadlines[lane._index]
            if when < best_when:
                best, best_when = lane, when
            index += 1
        return (best_when, best) if best is not None else None

    # -- scheduling & execution -------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` ms from now."""
        eid = self._eid + 1
        self._eid = eid
        _heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled occurrence (heap event, lane
        entry, or wheel timer), or ``inf`` if none."""
        when = self._queue[0][0] if self._queue else _INF
        if self._lanes:
            head = self._peek_lane()
            if head is not None and head[0] < when:
                when = head[0]
        if self._wheel._live:
            wheel_when = self._wheel.next_deadline()
            if wheel_when < when:
                return wheel_when
        return when

    def step(self) -> None:
        """Process the single next occurrence: the earliest lane entry
        or wheel timer if it beats the heap head (ties go to the heap,
        then to lanes), else the next queued event.

        :meth:`run` inlines this body (with heap/queue bound to locals)
        — keep the two in sync when changing event-loop semantics.
        """
        wheel = self._wheel
        if self._lanes:
            head = self._peek_lane()
            if head is not None and (
                    not self._queue or head[0] < self._queue[0][0]) and (
                    not wheel._live or head[0] <= wheel.next_deadline()):
                when, lane = head
                self._now = when
                index = lane._index
                lane._index = index + 1
                lane._callback(index)
                return
        if wheel._live:
            when = wheel.next_deadline()
            if not self._queue or when < self._queue[0][0]:
                self._now = when
                wheel._fire_head()
                return
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _priority, _eid, event = _heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: crash the simulation loudly rather
            # than letting errors pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if self.metrics is not None:
            # Instrumented runs take the metered loop; the fast loops
            # below stay byte-identical for the no-registry case, so
            # observability costs nothing when it is off.
            self._run_instrumented(until)
            return
        # Both branches inline step() with `queue`/`pop` as locals: the
        # loop runs once per simulated event, and dropping the extra
        # method call per event is a measurable share of figure-scale
        # wall time (see docs/performance.md).  Timer lanes cost one
        # truthiness check per event while none are registered; when
        # one is, due lane entries drain ahead of the heap (heap wins
        # exact-timestamp ties — see TimerLane's ordering contract).
        queue = self._queue
        pop = _heappop
        lanes = self._lanes
        peek_lane = self._peek_lane
        wheel = self._wheel
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"until={until} lies in the past (now={self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            self.schedule(stop, delay=until - self._now,
                          priority=self.PRIORITY_URGENT)
            while queue or lanes or wheel._live:
                if lanes:
                    head = peek_lane()
                    if head is not None and (
                            not queue or head[0] < queue[0][0]) and (
                            not wheel._live or head[0] <= wheel._head):
                        when, lane = head
                        self._now = when
                        index = lane._index
                        lane._index = index + 1
                        lane._callback(index)
                        continue
                if wheel._live:
                    # The cached head is a lower bound; a stale visit
                    # advances the clock to it and fires nothing, so
                    # the strict < below still stops before `until`.
                    when = wheel._head
                    if queue and when < queue[0][0]:
                        self._now = when
                        wheel._fire_head()
                        continue
                if not queue:
                    break
                if queue[0][3] is stop:
                    self._now = pop(queue)[0]
                    return
                when, _priority, _eid, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        else:
            while queue or lanes or wheel._live:
                if lanes:
                    head = peek_lane()
                    if head is not None and (
                            not queue or head[0] < queue[0][0]) and (
                            not wheel._live or head[0] <= wheel._head):
                        when, lane = head
                        self._now = when
                        index = lane._index
                        lane._index = index + 1
                        lane._callback(index)
                        continue
                if wheel._live:
                    when = wheel._head
                    if not queue or when < queue[0][0]:
                        self._now = when
                        wheel._fire_head()
                        continue
                if not queue:
                    break
                when, _priority, _eid, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value

    def _run_instrumented(self, until: Optional[float]) -> None:
        """The metered event loop: same semantics as :meth:`run`'s fast
        loops (it delegates to :meth:`step`), plus a processed-event
        count published as the ``sim.events`` counter even if the run
        raises."""
        metrics = self.metrics
        processed = 0
        try:
            if until is not None:
                if until < self._now:
                    raise ValueError(
                        f"until={until} lies in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self.schedule(stop, delay=until - self._now,
                              priority=self.PRIORITY_URGENT)
                queue = self._queue
                wheel = self._wheel
                while queue or self._lanes or wheel._live:
                    if queue and queue[0][3] is stop:
                        # The stop event wins exact-timestamp ties with
                        # lane entries and wheel timers; only a strictly
                        # earlier occurrence may still fire (via step()).
                        head = self._peek_lane() if self._lanes else None
                        if (head is None or head[0] >= queue[0][0]) and (
                                not wheel._live
                                or wheel.next_deadline() >= queue[0][0]):
                            self._now = _heappop(queue)[0]
                            return
                    self.step()
                    processed += 1
            else:
                wheel = self._wheel
                while self._queue or self._lanes or wheel._live:
                    if (not self._queue and not wheel._live
                            and self._peek_lane() is None):
                        break
                    self.step()
                    processed += 1
        finally:
            if processed:
                metrics.inc("sim.events", float(processed))
