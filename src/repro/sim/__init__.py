"""Deterministic discrete-event simulation kernel.

This package provides the virtual-time substrate on which the whole
reproduction runs: a heap-driven event loop (:class:`Environment`),
generator-based cooperating :class:`Process` objects, one-shot
:class:`Event` primitives, and seeded random-number streams
(:class:`RandomStreams`).

All simulated time is measured in **milliseconds** (floats).  Using
virtual time instead of wall-clock sleeps makes the latency-sensitive
PLANET experiments both fast and exactly reproducible.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    TimerLane,
    TimerWheel,
    WheelTimer,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Timeout",
    "TimerLane",
    "TimerWheel",
    "WheelTimer",
]
