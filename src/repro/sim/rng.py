"""Seeded, named random-number streams.

Every stochastic component of the simulator (network jitter, workload
arrivals, admission-control coin flips, ...) draws from its own named
stream, so adding a new random consumer never perturbs the draws seen
by existing ones.  Streams are derived deterministically from a single
master seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict


class RandomStreams:
    """A family of independent ``random.Random`` streams under one seed.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("network")
    >>> b = streams.get("workload")
    >>> a is streams.get("network")
    True
    """

    __slots__ = ("seed", "_streams", "_numpy_streams")

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, Any] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            # The one sanctioned construction site: every other stream
            # in the tree must be derived from this factory.
            stream = random.Random(derived)  # repro: allow[RNG002]
            self._streams[name] = stream
        return stream

    def numpy_generator(self, name: str) -> Any:
        """The seeded ``numpy.random.Generator`` for ``name``.

        The vectorized workload paths (``repro.workload.aggregate``)
        draw whole arrival batches in single numpy calls; those draws
        must obey the same discipline as the scalar streams — derived
        deterministically from the master seed, one independent stream
        per named consumer.  This factory is the single sanctioned
        construction site for numpy generators, mirroring :meth:`get`
        for ``random.Random``.  Names are namespaced separately from
        the scalar streams (the two kinds never alias).

        numpy is imported lazily so the bare kernel keeps its import
        cost; every workload already depends on it.
        """
        stream = self._numpy_streams.get(name)
        if stream is None:
            import numpy as np

            derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            # The sanctioned numpy construction site, the vectorized
            # twin of the random.Random factory above.
            stream = np.random.default_rng(derived)  # repro: allow[RNG002]
            self._numpy_streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulated client."""
        derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
        return RandomStreams(seed=derived)
