"""Geo-replicated network substrate.

Replaces the paper's five-region Amazon EC2 deployment with an explicit
model of inter-data-center message delays: per-pair latency
distributions (log-normal body plus heavy-tail spikes, as in the
paper's Figure 1), a :class:`Topology` describing the data centers, a
:class:`Transport` that delivers messages after sampled delays (with
optional fault injection), and a small request/response RPC layer.
"""

from repro.net.latency import (
    ConstantLatency,
    EmpiricalLatency,
    LatencyModel,
    LogNormalLatency,
    SpikingLatency,
)
from repro.net.topology import DataCenter, Topology, ec2_five_dc, uniform_topology
from repro.net.transport import Message, Transport
from repro.net.rpc import RpcEndpoint, RpcError, RpcTimeout

__all__ = [
    "ConstantLatency",
    "DataCenter",
    "EmpiricalLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "RpcEndpoint",
    "RpcError",
    "RpcTimeout",
    "SpikingLatency",
    "Topology",
    "Transport",
    "ec2_five_dc",
    "uniform_topology",
]
