"""Message delivery with sampled delays and fault injection.

Nodes register a handler under a string address; :meth:`Transport.send`
samples the one-way delay for the (source DC, destination DC) pair and
schedules delivery.  Links can be configured to drop messages or to be
partitioned for a time window — used by the failure-injection tests to
exercise PLANET's uncertainty guarantees.

``send`` is the single hottest function in a figure-scale run (every
Paxos phase, RPC, and statistics ping goes through it), so it avoids
allocation where it can: delivery events are recycled through a free
list instead of constructed per message, and per-link latency samplers
are bound once (:meth:`repro.net.latency.LatencyModel.bind`) rather
than re-resolved through the topology on every send.  Neither shortcut
may change the rng draw order — history digests pin that down.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.topology import Topology
from repro.obs.metrics import HistogramSeries, MetricsRegistry
from repro.sim import Environment, Event, RandomStreams


class _TransportObs:
    """Metric handles bound once per registry, not per send.

    The transport is the hottest instrumentation site in the tree;
    resolving ``transport.sent`` / ``transport.delay_ms`` through the
    registry's name dict — and formatting the per-link label string —
    on every message cost a measured ~50 % of send throughput when
    metrics were on.  This binds the series dicts (and, per link, the
    interned label string and histogram series) at first use, leaving
    one attribute load plus one dict update per counter on the hot
    path.
    """

    __slots__ = ("metrics", "sent", "delivered", "dropped",
                 "delay", "delay_series")

    def __init__(self, metrics: MetricsRegistry):
        self.metrics = metrics
        self.sent: Dict[str, float] = metrics.counter(
            "transport.sent").series
        self.delivered: Dict[str, float] = metrics.counter(
            "transport.delivered").series
        self.dropped: Dict[str, float] = metrics.counter(
            "transport.dropped").series
        self.delay = metrics.histogram("transport.delay_ms")
        #: (src_dc, dst_dc) -> bound HistogramSeries (label resolved
        #: and formatted once per link).
        self.delay_series: Dict[Tuple[int, int], HistogramSeries] = {}

    def delay_for(self, link: Tuple[int, int]) -> HistogramSeries:
        series = self.delay_series.get(link)
        if series is None:
            label = f"{link[0]}->{link[1]}"
            histogram = self.delay
            series = histogram.series.get(label)
            if series is None:
                series = HistogramSeries(histogram.bounds)
                histogram.series[label] = series
            self.delay_series[link] = series
        return series


class Message:
    """An addressed message in flight.

    ``kind`` is a short protocol tag (e.g. ``"phase2a"``); ``payload``
    is arbitrary protocol data.  ``msg_id`` is unique per simulation
    run and is used by the RPC layer to match responses to requests.
    Ids come from :meth:`Transport.next_msg_id` (or are chosen
    explicitly by tests): there is deliberately no process-global
    fallback counter, because any module-level sequence makes message
    ids — and therefore history digests — depend on how many runs the
    host process executed before this one.

    ``span`` is the sender's causal-tracing context, an opaque
    ``(trace_id, span_id)`` tuple (``repro.obs.spans.SpanContext``)
    that receivers use to parent their spans under the sender's; it is
    ``None`` whenever span tracing is off and deliberately excluded
    from equality and repr — it is observability metadata, not
    protocol state.
    """

    __slots__ = ("src", "dst", "kind", "payload", "msg_id", "reply_to",
                 "span")

    def __init__(self, src: str, dst: str, kind: str, payload: Any,
                 msg_id: int, reply_to: Optional[int] = None,
                 span: Optional[Tuple[str, str]] = None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.msg_id = msg_id
        self.reply_to = reply_to
        self.span = span

    def __repr__(self) -> str:
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"kind={self.kind!r}, payload={self.payload!r}, "
                f"msg_id={self.msg_id!r}, reply_to={self.reply_to!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.kind == other.kind and self.payload == other.payload
                and self.msg_id == other.msg_id
                and self.reply_to == other.reply_to)


class Transport:
    """Delivers messages between registered nodes with sampled delays."""

    __slots__ = ("env", "topology", "_rng", "_msg_ids", "_handlers",
                 "_locations", "_drop_prob", "_extra_delay", "_partitioned",
                 "_down", "_samplers", "_event_pool", "_obs", "sent",
                 "delivered", "dropped")

    def __init__(self, env: Environment, topology: Topology,
                 streams: RandomStreams):
        self.env = env
        self.topology = topology
        self._rng = streams.get("transport")
        # Per-transport id sequence: two runs built from the same seed
        # in one process must produce identical message ids (the check
        # subsystem compares their history digests byte for byte).
        self._msg_ids = itertools.count(1)
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._locations: Dict[str, int] = {}
        self._drop_prob: Dict[Tuple[int, int], float] = {}
        self._extra_delay: Dict[Tuple[int, int], float] = {}
        self._partitioned: Set[Tuple[int, int]] = set()
        self._down: Set[str] = set()
        #: Per-link bound samplers, built lazily on first send over a
        #: link.  All of them draw from ``self._rng`` in exactly the
        #: order ``model.sample`` would.
        self._samplers: Dict[Tuple[int, int], Callable[[], float]] = {}
        #: Recycled delivery events: a delivery event's lifecycle ends
        #: inside ``_deliver``, so the object (and its callback list)
        #: can be handed straight back to the next ``send``.
        self._event_pool: List[Event] = []
        #: Cached metric handles, bound to the registry installed on
        #: the kernel (rebound if a different registry appears later).
        self._obs: Optional[_TransportObs] = (
            _TransportObs(env.metrics) if env.metrics is not None else None)
        #: Counters for observability: messages sent/delivered/dropped.
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def _obs_for(self, metrics: MetricsRegistry) -> _TransportObs:
        """The handle cache for ``metrics`` (rebinding on change, so a
        registry installed or swapped after construction still works —
        the zero-cost guard remains ``env.metrics is not None``)."""
        obs = self._obs
        if obs is None or obs.metrics is not metrics:
            obs = _TransportObs(metrics)
            self._obs = obs
        return obs

    # -- registration ------------------------------------------------------

    def register(self, address: str, datacenter: int,
                 handler: Callable[[Message], None]) -> None:
        """Attach ``handler`` for messages addressed to ``address``."""
        if address in self._handlers:
            raise ValueError(f"address {address!r} already registered")
        if not 0 <= datacenter < len(self.topology):
            raise ValueError(f"unknown data center {datacenter}")
        self._handlers[address] = handler
        self._locations[address] = datacenter

    def location_of(self, address: str) -> int:
        """Data-center index of a registered address."""
        return self._locations[address]

    def next_msg_id(self) -> int:
        """A fresh run-local message id (deterministic per run)."""
        return next(self._msg_ids)

    # -- fault injection ----------------------------------------------------

    def set_drop_probability(self, src_dc: int, dst_dc: int,
                             probability: float) -> None:
        """Make the directed link src->dst lose messages independently."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        self._drop_prob[(src_dc, dst_dc)] = probability

    def set_extra_delay(self, src_dc: int, dst_dc: int,
                        extra_ms: float) -> None:
        """Add a fixed latency penalty on the directed link src->dst.

        Models a WAN latency spike (congestion, rerouting); the fault
        fuzzer opens and closes spike windows with this.  ``0`` clears
        the penalty.
        """
        if extra_ms < 0:
            raise ValueError(f"negative extra delay {extra_ms}")
        if extra_ms == 0:
            self._extra_delay.pop((src_dc, dst_dc), None)
        else:
            self._extra_delay[(src_dc, dst_dc)] = extra_ms

    def partition(self, dc_a: int, dc_b: int) -> None:
        """Cut both directions between two data centers."""
        self._partitioned.add((dc_a, dc_b))
        self._partitioned.add((dc_b, dc_a))

    def heal(self, dc_a: int, dc_b: int) -> None:
        """Undo :meth:`partition`."""
        self._partitioned.discard((dc_a, dc_b))
        self._partitioned.discard((dc_b, dc_a))

    def take_down(self, address: str) -> None:
        """Crash one node: all messages to and from it are lost."""
        if address not in self._handlers:
            raise ValueError(f"unknown address {address!r}")
        self._down.add(address)

    def bring_up(self, address: str) -> None:
        """Restart a crashed node (its in-memory state survived — the
        simulated process model is fail-stop with stable storage)."""
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    # -- sending -------------------------------------------------------------

    def send(self, src_dc: int, message: Message) -> None:
        """Fire-and-forget delivery after a sampled one-way delay.

        Messages to unknown addresses, across partitions, or unlucky on
        a lossy link are silently dropped (counted in ``self.dropped``)
        — exactly the behaviour a WAN gives an application.
        """
        self.sent += 1
        env = self.env
        if env.tracer is not None:
            env.trace("send", node=message.src, kind=message.kind,
                      dst=message.dst, msg_id=message.msg_id,
                      reply_to=message.reply_to)
        metrics = env.metrics
        obs = None
        if metrics is not None:
            obs = self._obs_for(metrics)
            series = obs.sent
            kind = message.kind
            series[kind] = series.get(kind, 0.0) + 1.0
        dst_dc = self._locations.get(message.dst)
        if dst_dc is None:
            self._drop(message, "unknown-address")
            return
        if self._down and (message.dst in self._down
                           or message.src in self._down):
            self._drop(message, "node-down")
            return
        link = (src_dc, dst_dc)
        if self._partitioned and link in self._partitioned:
            self._drop(message, "partition")
            return
        if self._drop_prob:
            drop = self._drop_prob.get(link, 0.0)
            if drop and self._rng.random() < drop:
                self._drop(message, "loss")
                return
        sampler = self._samplers.get(link)
        if sampler is None:
            sampler = self.topology.latency(src_dc, dst_dc).bind(self._rng)
            self._samplers[link] = sampler
        delay = sampler()
        if self._extra_delay:
            delay += self._extra_delay.get(link, 0.0)
        if obs is not None:
            obs.delay_for(link).observe(delay)
        # Schedule a bare event rather than a generator process (one
        # heap operation per message), recycling processed delivery
        # events through the pool (no allocation per message).
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = message
        else:
            event = Event(env)
            event._ok = True
            event._value = message
            event.callbacks.append(self._deliver)
        env.schedule(event, delay=delay)

    def _drop(self, message: Message, reason: str) -> None:
        self.dropped += 1
        if self.env.tracer is not None:
            self.env.trace("drop", node=message.src, kind=message.kind,
                           dst=message.dst, msg_id=message.msg_id,
                           reason=reason)
        metrics = self.env.metrics
        if metrics is not None:
            series = self._obs_for(metrics).dropped
            series[reason] = series.get(reason, 0.0) + 1.0

    def _deliver(self, event: Event) -> None:
        message: Message = event._value
        # The event's job is done: recycle it before dispatching, so a
        # handler that immediately sends can reuse it for its own
        # delivery.  The kernel's post-callback check only reads
        # ``_ok``/``_defused``, which recycling leaves True/False.
        event._value = None
        event.callbacks = [self._deliver]
        self._event_pool.append(event)
        handler = self._handlers.get(message.dst)
        if handler is None or message.dst in self._down:
            # Unregistered, or crashed while the message was in flight.
            self._drop(message, "down-in-flight")
            return
        self.delivered += 1
        if self.env.tracer is not None:
            self.env.trace("deliver", node=message.dst, kind=message.kind,
                           src=message.src, msg_id=message.msg_id)
        metrics = self.env.metrics
        if metrics is not None:
            series = self._obs_for(metrics).delivered
            kind = message.kind
            series[kind] = series.get(kind, 0.0) + 1.0
        handler(message)
