"""One-way message-delay distributions.

The paper's Figure 1 shows EC2 inter-region round trips with a stable
body around the propagation delay and occasional spikes exceeding
800 ms.  We model a one-way delay as a shifted log-normal "body" with a
rare multiplicative "spike" tail; an empirical variant replays a
measured histogram instead.

Sampling is on the transport's per-message hot path, so every model
also offers :meth:`LatencyModel.bind`: given the rng it will always be
sampled with, it returns a zero-argument closure with the distribution
parameters and the rng's methods pre-bound as locals.  A bound sampler
MUST consume exactly the same rng draws in the same order as
``sample`` — the deterministic-replay digests (``repro.check``) compare
runs byte for byte.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Callable, List, Sequence, Tuple


class LatencyModel(ABC):
    """A distribution of one-way message delays in milliseconds."""

    __slots__ = ()

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay (ms, strictly positive)."""

    @abstractmethod
    def mean(self) -> float:
        """Expected delay in ms (used for sanity checks and reports)."""

    def bind(self, rng: random.Random) -> Callable[[], float]:
        """A fast zero-argument sampler drawing from ``rng``.

        The default wraps :meth:`sample`; subclasses override it to
        pre-bind their parameters and the rng methods they use.
        """
        sample = self.sample
        return lambda: sample(rng)


class ConstantLatency(LatencyModel):
    """A fixed delay — useful for tests and analytic cross-checks."""

    __slots__ = ("delay_ms",)

    def __init__(self, delay_ms: float):
        if delay_ms < 0:
            raise ValueError(f"negative delay {delay_ms}")
        self.delay_ms = float(delay_ms)

    def sample(self, rng: random.Random) -> float:
        return self.delay_ms

    def bind(self, rng: random.Random) -> Callable[[], float]:
        delay = self.delay_ms
        return lambda: delay

    def mean(self) -> float:
        return self.delay_ms

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay_ms})"


class LogNormalLatency(LatencyModel):
    """Shifted log-normal delay: ``floor + LogNormal(mu, sigma)``.

    ``median_ms`` is the median of the *total* delay, so the log-normal
    part has median ``median_ms - floor_ms``.  ``sigma`` controls the
    relative spread (0.1–0.3 matches the tight bodies of Figure 1).
    """

    __slots__ = ("median_ms", "sigma", "floor_ms", "_mu")

    def __init__(self, median_ms: float, sigma: float = 0.15,
                 floor_ms: float = 0.0):
        if median_ms <= floor_ms:
            raise ValueError("median must exceed the floor")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self.floor_ms = float(floor_ms)
        self._mu = math.log(self.median_ms - self.floor_ms)

    def sample(self, rng: random.Random) -> float:
        return self.floor_ms + rng.lognormvariate(self._mu, self.sigma)

    def bind(self, rng: random.Random) -> Callable[[], float]:
        floor = self.floor_ms
        mu = self._mu
        sigma = self.sigma
        lognormvariate = rng.lognormvariate
        return lambda: floor + lognormvariate(mu, sigma)

    def mean(self) -> float:
        body = math.exp(self._mu + self.sigma ** 2 / 2.0)
        return self.floor_ms + body

    def __repr__(self) -> str:
        return (f"LogNormalLatency(median={self.median_ms}, "
                f"sigma={self.sigma}, floor={self.floor_ms})")


class SpikingLatency(LatencyModel):
    """Wraps a base model with rare multiplicative latency spikes.

    With probability ``spike_prob`` a message is delayed by the base
    sample times a factor drawn uniformly from ``spike_factor`` — this
    reproduces the >800 ms excursions of Figure 1 without disturbing
    the distribution body.
    """

    __slots__ = ("base", "spike_prob", "spike_factor")

    def __init__(self, base: LatencyModel, spike_prob: float = 0.001,
                 spike_factor: Tuple[float, float] = (4.0, 12.0)):
        if not 0.0 <= spike_prob <= 1.0:
            raise ValueError(f"spike_prob {spike_prob} outside [0, 1]")
        lo, hi = spike_factor
        if lo < 1.0 or hi < lo:
            raise ValueError(f"bad spike_factor range {spike_factor}")
        self.base = base
        self.spike_prob = float(spike_prob)
        self.spike_factor = (float(lo), float(hi))

    def sample(self, rng: random.Random) -> float:
        delay = self.base.sample(rng)
        if self.spike_prob and rng.random() < self.spike_prob:
            delay *= rng.uniform(*self.spike_factor)
        return delay

    def bind(self, rng: random.Random) -> Callable[[], float]:
        # Same draw order as sample(): base first, then the spike coin,
        # then (rarely) the spike factor.
        base = self.base.bind(rng)
        spike_prob = self.spike_prob
        lo, hi = self.spike_factor
        rng_random = rng.random
        uniform = rng.uniform

        def sampler() -> float:
            delay = base()
            if spike_prob and rng_random() < spike_prob:
                delay *= uniform(lo, hi)
            return delay

        return sampler

    def mean(self) -> float:
        lo, hi = self.spike_factor
        mean_factor = 1.0 + self.spike_prob * ((lo + hi) / 2.0 - 1.0)
        return self.base.mean() * mean_factor

    def __repr__(self) -> str:
        return (f"SpikingLatency({self.base!r}, p={self.spike_prob}, "
                f"factor={self.spike_factor})")


class EmpiricalLatency(LatencyModel):
    """Samples delays from a measured histogram of (delay_ms, weight).

    Useful to replay distributions collected by the statistics service
    (or to plug in real RTT traces if available).
    """

    __slots__ = ("_delays", "_cumulative", "_mean")

    def __init__(self, samples: Sequence[Tuple[float, float]]):
        points: List[Tuple[float, float]] = [
            (float(delay), float(weight)) for delay, weight in samples
        ]
        if not points:
            raise ValueError("empty histogram")
        if any(delay < 0 or weight < 0 for delay, weight in points):
            raise ValueError("negative delay or weight in histogram")
        total = sum(weight for _delay, weight in points)
        if total <= 0:
            raise ValueError("histogram has zero total weight")
        self._delays = [delay for delay, _weight in points]
        self._cumulative: List[float] = []
        acc = 0.0
        for _delay, weight in points:
            acc += weight / total
            self._cumulative.append(acc)
        self._mean = sum(d * w for d, w in points) / total

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        # Linear scan is fine: histograms are small (<=256 bins).
        for delay, cum in zip(self._delays, self._cumulative):
            if u <= cum:
                return delay
        return self._delays[-1]

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"EmpiricalLatency({len(self._delays)} bins)"
