"""Data centers and the inter-data-center latency matrix.

The :func:`ec2_five_dc` preset mirrors the paper's deployment: US-West
(N. California), US-East (Virginia), EU (Ireland), Tokyo, and
Singapore, with one-way delays set to half the round-trip times
publicly reported for EC2 inter-region links circa 2014 (Figure 1 of
the paper shows ~100 ms average RTTs with spikes beyond 800 ms).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    SpikingLatency,
)


class DataCenter:
    """A named replica site."""

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = name

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"DataCenter(index={self.index!r}, name={self.name!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataCenter):
            return NotImplemented
        return self.index == other.index and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.index, self.name))


class Topology:
    """A set of data centers plus a one-way latency model per pair.

    ``latency(a, b)`` returns the model for messages from data center
    ``a`` to data center ``b``; intra-data-center messages use a small
    constant local delay (the paper treats local round trips as
    insignificant).
    """

    __slots__ = ("datacenters", "_local", "_models")

    def __init__(self, names: Sequence[str],
                 pair_models: Dict[Tuple[int, int], LatencyModel],
                 local_delay_ms: float = 0.25):
        if not names:
            raise ValueError("a topology needs at least one data center")
        self.datacenters: List[DataCenter] = [
            DataCenter(index, name) for index, name in enumerate(names)
        ]
        self._local = ConstantLatency(local_delay_ms)
        self._models: Dict[Tuple[int, int], LatencyModel] = {}
        n = len(names)
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                model = pair_models.get((a, b)) or pair_models.get((b, a))
                if model is None:
                    raise ValueError(
                        f"no latency model for pair ({a}, {b})")
                self._models[(a, b)] = model

    def __len__(self) -> int:
        return len(self.datacenters)

    @property
    def names(self) -> List[str]:
        return [dc.name for dc in self.datacenters]

    def latency(self, src: int, dst: int) -> LatencyModel:
        """One-way latency model for messages ``src -> dst``."""
        if src == dst:
            return self._local
        return self._models[(src, dst)]

    def mean_rtt(self, a: int, b: int) -> float:
        """Expected round trip a -> b -> a in ms."""
        return self.latency(a, b).mean() + self.latency(b, a).mean()

    def index_of(self, name: str) -> int:
        for dc in self.datacenters:
            if dc.name == name:
                return dc.index
        raise KeyError(name)


#: Approximate 2014 EC2 inter-region round-trip times in milliseconds.
EC2_RTT_MS: Dict[Tuple[str, str], float] = {
    ("us-west", "us-east"): 80.0,
    ("us-west", "eu"): 170.0,
    ("us-west", "tokyo"): 120.0,
    ("us-west", "singapore"): 190.0,
    ("us-east", "eu"): 90.0,
    ("us-east", "tokyo"): 180.0,
    ("us-east", "singapore"): 250.0,
    ("eu", "tokyo"): 270.0,
    ("eu", "singapore"): 250.0,
    ("tokyo", "singapore"): 95.0,
}

EC2_REGIONS = ["us-west", "us-east", "eu", "tokyo", "singapore"]


def ec2_five_dc(sigma: float = 0.12, spike_prob: float = 0.0005,
                spike_factor: Tuple[float, float] = (4.0, 12.0),
                local_delay_ms: float = 0.25) -> Topology:
    """The paper's five-data-center EC2 deployment.

    One-way medians are half the pairwise RTTs; each link gets
    log-normal jitter and (by default, rare) spikes.  Pass
    ``spike_prob=0`` for a spike-free variant used in likelihood-model
    accuracy tests.
    """
    indices = {name: i for i, name in enumerate(EC2_REGIONS)}
    pair_models: Dict[Tuple[int, int], LatencyModel] = {}
    for (name_a, name_b), rtt in EC2_RTT_MS.items():
        one_way = rtt / 2.0
        model: LatencyModel = LogNormalLatency(
            median_ms=one_way, sigma=sigma, floor_ms=one_way * 0.8)
        if spike_prob > 0:
            model = SpikingLatency(model, spike_prob=spike_prob,
                                   spike_factor=spike_factor)
        a, b = indices[name_a], indices[name_b]
        pair_models[(a, b)] = model
    return Topology(EC2_REGIONS, pair_models, local_delay_ms=local_delay_ms)


def uniform_topology(n: int, one_way_ms: float = 40.0, sigma: float = 0.1,
                     local_delay_ms: float = 0.25,
                     spike_prob: float = 0.0) -> Topology:
    """A symmetric n-data-center topology with identical links.

    Handy for unit tests and for isolating protocol effects from
    topology asymmetry.
    """
    names = [f"dc{i}" for i in range(n)]
    pair_models: Dict[Tuple[int, int], LatencyModel] = {}
    for a in range(n):
        for b in range(a + 1, n):
            model: LatencyModel = LogNormalLatency(
                median_ms=one_way_ms, sigma=sigma, floor_ms=one_way_ms * 0.8)
            if spike_prob > 0:
                model = SpikingLatency(model, spike_prob=spike_prob)
            pair_models[(a, b)] = model
    return Topology(names, pair_models, local_delay_ms=local_delay_ms)
