"""Request/response RPC over the raw transport.

An :class:`RpcEndpoint` owns a transport address.  Outgoing calls
return a kernel event that fires with the response payload (or fails
with :class:`RpcTimeout`).  Incoming requests are dispatched to
registered handlers by message kind; a handler's return value is sent
back as the response.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.net.transport import Message, Transport
from repro.sim import Environment, Event, WheelTimer


class RpcError(RuntimeError):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """The response did not arrive within the caller's deadline."""


class RpcEndpoint:
    """A node's attachment point to the network.

    Handlers are plain callables ``handler(payload, src_address) ->
    response`` registered per message kind.  Handlers that need to wait
    (e.g. a leader running a Paxos round) should instead send their
    response later via :meth:`respond`; they signal this by returning
    :data:`NO_REPLY`.
    """

    #: Sentinel a handler returns when it will respond asynchronously.
    NO_REPLY = object()

    __slots__ = ("env", "transport", "address", "datacenter",
                 "service_time_ms", "service_overrides", "_handlers",
                 "_pending", "_timers", "_queue", "_serving",
                 "max_queue_depth", "current_span")

    def __init__(self, env: Environment, transport: Transport,
                 address: str, datacenter: int,
                 service_time_ms: float = 0.0,
                 service_overrides: Optional[Dict[str, float]] = None):
        if service_time_ms < 0:
            raise ValueError("negative service time")
        if service_overrides and any(v < 0 for v in
                                     service_overrides.values()):
            raise ValueError("negative service time override")
        self.env = env
        self.transport = transport
        self.address = address
        self.datacenter = datacenter
        #: Per-message processing cost.  When positive (or when any
        #: override is), incoming messages are served one at a time
        #: from a FIFO queue — the finite-capacity server model that
        #: lets overload experiments exhibit queueing and thrashing.
        #: ``service_overrides`` prices specific message kinds
        #: differently (e.g. a disk-bound ``phase2a``); replies use the
        #: base cost.
        self.service_time_ms = float(service_time_ms)
        self.service_overrides = dict(service_overrides or {})
        self._handlers: Dict[str, Callable[[Any, str], Any]] = {}
        self._pending: Dict[int, Event] = {}
        #: Wheel timers guarding in-flight calls, keyed by msg_id; the
        #: reply path cancels them, so a call that gets its response
        #: before the deadline never touches the event heap at all.
        self._timers: Dict[int, WheelTimer] = {}
        self._queue: Deque[Message] = deque()
        self._serving = False
        #: High-water mark of the service queue (observability).
        self.max_queue_depth = 0
        #: The span context of the request currently being dispatched
        #: (``None`` outside a handler, or when the sender attached no
        #: span).  Handlers read this to parent their own spans under
        #: the remote caller's.
        self.current_span: Optional[Tuple[str, str]] = None
        transport.register(address, datacenter, self._on_message)

    # -- server side --------------------------------------------------------

    def on(self, kind: str, handler: Callable[[Any, str], Any]) -> None:
        """Register ``handler`` for incoming requests of ``kind``."""
        if kind in self._handlers:
            raise ValueError(f"handler for {kind!r} already registered")
        self._handlers[kind] = handler

    def respond(self, request: Message, payload: Any) -> None:
        """Send an asynchronous response to ``request``.

        The response rides in the request's span context, so the
        caller's trace shows the reply leg too.
        """
        self.transport.send(self.datacenter, Message(
            src=self.address, dst=request.src, kind=f"{request.kind}.reply",
            payload=payload, msg_id=self.transport.next_msg_id(),
            reply_to=request.msg_id, span=request.span))

    # -- client side --------------------------------------------------------

    def call(self, dst: str, kind: str, payload: Any,
             timeout_ms: Optional[float] = None,
             span: Optional[Tuple[str, str]] = None) -> Event:
        """Send a request; the returned event fires with the response.

        With ``timeout_ms`` set, the event instead *fails* with
        :class:`RpcTimeout` if no response arrives in time.  Without a
        timeout the event may never fire (e.g. across a partition) —
        callers combine it with their own deadline events.  ``span``
        is the caller's span context; it rides on the message so the
        receiver can stitch its spans under the caller's trace.

        Deadlines are armed on the kernel's cancelable timer wheel:
        the common case (reply before deadline) cancels the timer in
        O(1) and never schedules a heap event or spawns an expiry
        process.  The ``rpc_timeout`` perf bench pins that.
        """
        message = Message(src=self.address, dst=dst, kind=kind,
                          payload=payload,
                          msg_id=self.transport.next_msg_id(), span=span)
        result = self.env.event()
        self._pending[message.msg_id] = result
        self.transport.send(self.datacenter, message)
        if timeout_ms is not None:
            msg_id = message.msg_id
            self._timers[msg_id] = self.env.arm_timer(
                self.env.now + timeout_ms,
                lambda: self._expire(msg_id, timeout_ms))
        return result

    def cast(self, dst: str, kind: str, payload: Any,
             span: Optional[Tuple[str, str]] = None) -> None:
        """One-way message with no response expected."""
        self.transport.send(self.datacenter, Message(
            src=self.address, dst=dst, kind=kind, payload=payload,
            msg_id=self.transport.next_msg_id(), span=span))

    # -- internals ------------------------------------------------------------

    def _expire(self, msg_id: int, timeout_ms: float) -> None:
        """Wheel callback: the deadline passed with no reply."""
        self._timers.pop(msg_id, None)
        event = self._pending.pop(msg_id, None)
        if event is not None and not event.triggered:
            event.fail(RpcTimeout(f"no response within {timeout_ms} ms"))

    def _service_time_for(self, message: Message) -> float:
        if message.reply_to is not None:
            return self.service_time_ms
        return self.service_overrides.get(message.kind,
                                          self.service_time_ms)

    def _on_message(self, message: Message) -> None:
        if self.service_time_ms <= 0 and not self.service_overrides:
            self._dispatch(message)
            return
        self._queue.append(message)
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        if not self._serving:
            self._serving = True
            self.env.process(self._serve())

    def _serve(self):
        """Drain the FIFO queue, one service time per message."""
        while self._queue:
            cost = self._service_time_for(self._queue[0])
            if cost > 0:
                yield self.env.timeout(cost)
            self._dispatch(self._queue.popleft())
        self._serving = False

    def _dispatch(self, message: Message) -> None:
        if message.reply_to is not None:
            timer = self._timers.pop(message.reply_to, None)
            if timer is not None:
                timer.cancel()
            event = self._pending.pop(message.reply_to, None)
            if event is not None and not event.triggered:
                event.succeed(message.payload)
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            return  # unknown kinds are dropped, like a real server
        self.current_span = message.span
        try:
            response = handler(message.payload, message.src)
        finally:
            self.current_span = None
        if response is not RpcEndpoint.NO_REPLY:
            self.respond(message, response)
