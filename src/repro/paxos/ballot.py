"""Totally ordered Paxos ballot numbers."""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Ballot:
    """A (round number, proposer id) pair ordered lexicographically.

    The proposer id breaks ties between distinct leaders proposing in
    the same numbered round, as in the classic Paxos formulation.
    """

    number: int
    proposer: str

    def __lt__(self, other: "Ballot") -> bool:
        if not isinstance(other, Ballot):
            return NotImplemented
        return (self.number, self.proposer) < (other.number, other.proposer)

    def next(self, proposer: str) -> "Ballot":
        """The smallest ballot for ``proposer`` larger than this one."""
        return Ballot(self.number + 1, proposer)

    def as_int(self) -> int:
        """A coarse integer key (round number) for compact storage."""
        return self.number
