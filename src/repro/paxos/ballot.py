"""Totally ordered Paxos ballot numbers, with fast/classic ranks."""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

#: Sentinel proposer id of *fast* ballots (MDCC fast ballots: any
#: client may propose directly to the acceptors).  ``"*"`` sorts below
#: every real node address, so a classic ballot at the same round
#: number always outranks the fast ballot of that round — the record
#: master's classic-mode recovery fences in-flight fast proposals
#: without needing a higher round number.
FAST_PROPOSER = "*"


@total_ordering
@dataclass(frozen=True)
class Ballot:
    """A (round number, proposer id) pair ordered lexicographically.

    The proposer id breaks ties between distinct leaders proposing in
    the same numbered round, as in the classic Paxos formulation.
    Fast ballots carry the :data:`FAST_PROPOSER` sentinel instead of a
    node address; they are owned by no single proposer.
    """

    number: int
    proposer: str

    def __lt__(self, other: "Ballot") -> bool:
        if not isinstance(other, Ballot):
            return NotImplemented
        return (self.number, self.proposer) < (other.number, other.proposer)

    def next(self, proposer: str) -> "Ballot":
        """The smallest ballot for ``proposer`` larger than this one."""
        return Ballot(self.number + 1, proposer)

    def as_int(self) -> int:
        """A coarse integer key (round number) for compact storage."""
        return self.number

    @property
    def is_fast(self) -> bool:
        """True for fast ballots (clients propose straight to acceptors)."""
        return self.proposer == FAST_PROPOSER

    @classmethod
    def fast(cls, number: int = 0) -> "Ballot":
        """The fast ballot of round ``number``."""
        return cls(number, FAST_PROPOSER)


def fast_quorum_size(n_replicas: int) -> int:
    """The fast-quorum size ⌈3N/4⌉ of MDCC fast ballots.

    Any two fast quorums intersect in more than N/2 acceptors, which
    is what lets a classic recovery round learn a possibly fast-chosen
    value from any majority.
    """
    if n_replicas < 1:
        raise ValueError("need at least one replica")
    return -(-3 * n_replicas // 4)
