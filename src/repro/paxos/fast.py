"""Client-side execution of one MDCC fast-ballot round.

The transaction manager fans a :class:`FastPhase2a` out to *every*
acceptor of the record — no leader hop — and resolves as soon as the
outcome is determined:

* ``chosen``   — ⌈3N/4⌉ acceptors voted the option ACCEPTED at the same
  instance: the option is learned in two message delays (one fewer
  than the classic propose → leader → phase2a → phase2b chain);
* ``rejected`` — ⌈3N/4⌉ acceptors voted the option REJECTED at the same
  instance (conflict window open or floor violated everywhere): the
  abort is equally fast-learned;
* ``fallback`` — no instance can still reach a fast quorum.  The vote
  set tells why: acceptors scattered the value across different
  instances (``collision`` — a concurrent proposer raced us), mixed
  verdicts at one instance (``conflict``), classic promises fenced the
  fast ballot (``fenced``), or the round simply timed out under loss
  (``timeout``).  The caller then recovers through the record master's
  classic path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.net.rpc import RpcEndpoint
from repro.paxos.acceptor import ballot_key
from repro.paxos.ballot import fast_quorum_size
from repro.paxos.messages import FastPhase2a, FastPhase2b
from repro.sim import Environment, Event


class FastRoundOutcome:
    """How one fast round ended: ``status`` plus supporting detail."""

    __slots__ = ("status", "reason", "seq", "votes", "fenced")

    def __init__(self, status: str, reason: str, seq: int = -1,
                 votes: int = 0, fenced: int = 0):
        self.status = status      # "chosen" | "rejected" | "fallback"
        self.reason = reason      # quorum | collision | conflict | fenced | timeout
        self.seq = seq            # winning instance for chosen/rejected
        self.votes = votes
        self.fenced = fenced


class FastRound:
    """One fast-ballot round over a record's full replica group.

    ``result`` is a kernel event that succeeds with a
    :class:`FastRoundOutcome`; it never fails (timeouts resolve to a
    ``fallback`` outcome so the caller always recovers via classic).

    >>> round_ = FastRound(env, endpoint, replicas, fast2a)
    >>> outcome = yield round_.result
    """

    def __init__(self, env: Environment, endpoint: RpcEndpoint,
                 replicas: Sequence[str], fast2a: FastPhase2a,
                 quorum: Optional[int] = None,
                 timeout_ms: Optional[float] = None,
                 parent_span: Optional[Tuple[str, str]] = None,
                 on_first_vote=None):
        self.env = env
        self.endpoint = endpoint
        self.fast2a = fast2a
        self.replicas = list(replicas)
        self.quorum = (quorum if quorum is not None
                       else fast_quorum_size(len(self.replicas)))
        if not 1 <= self.quorum <= len(self.replicas):
            raise ValueError(
                f"fast quorum {self.quorum} impossible "
                f"with {len(self.replicas)} replicas")
        self.result: Event = env.event()
        self.on_first_vote = on_first_vote
        # Per-instance tallies of option-accepting / option-rejecting
        # fast votes, plus the count of classic-fenced refusals.
        self._accepts: Dict[int, int] = {}
        self._rejects: Dict[int, int] = {}
        self.fenced = 0
        self.votes = 0
        self._started_ms = env.now
        if env.tracer is not None:
            env.trace("fast_round_start", node=endpoint.address,
                      key=fast2a.key, ballot=ballot_key(fast2a.ballot),
                      quorum=self.quorum, n_replicas=len(self.replicas))
        self.span = None
        span_ctx = parent_span
        if env.spans is not None and parent_span is not None:
            self.span = env.spans.child(
                parent_span, "paxos.fast_round", endpoint.address, env.now,
                f"{fast2a.key}/{ballot_key(fast2a.ballot)}",
                key=fast2a.key, ballot=ballot_key(fast2a.ballot),
                quorum=self.quorum)
            span_ctx = self.span.ctx
        for replica in self.replicas:
            call = endpoint.call(replica, "fast2a", fast2a, span=span_ctx)
            call.callbacks.append(self._on_vote)
        # Deadline on the cancelable wheel; a decided round cancels it
        # (see PaxosRound — same idiom, same reason).
        self._timer = (env.arm_timer(env.now + timeout_ms,
                                     lambda: self._expire(timeout_ms))
                       if timeout_ms is not None else None)

    def _finish(self, outcome: FastRoundOutcome) -> None:
        env = self.env
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if env.tracer is not None:
            env.trace("fast_round_decided", node=self.endpoint.address,
                      key=self.fast2a.key, seq=outcome.seq,
                      ballot=ballot_key(self.fast2a.ballot),
                      status=outcome.status, reason=outcome.reason,
                      votes=self.votes, fenced=self.fenced)
        if env.metrics is not None:
            env.metrics.inc("paxos.fast_rounds", label=outcome.reason)
            env.metrics.observe("paxos.fast_round_ms",
                                env.now - self._started_ms)
        if self.span is not None:
            self.span.finish(env.now, status=outcome.status,
                             reason=outcome.reason, votes=self.votes)
        self.result.succeed(outcome)

    def _on_vote(self, event: Event) -> None:
        if self.result.triggered or not event.ok:
            return
        vote: FastPhase2b = event.value
        self.votes += 1
        if self.on_first_vote is not None and self.votes == 1:
            self.on_first_vote()
        if not vote.accepted:
            self.fenced += 1
        else:
            from repro.storage.option import Decision
            tally = (self._accepts if vote.decision is Decision.ACCEPTED
                     else self._rejects)
            tally[vote.seq] = tally.get(vote.seq, 0) + 1
            if tally[vote.seq] >= self.quorum:
                status = ("chosen" if tally is self._accepts
                          else "rejected")
                self._finish(FastRoundOutcome(
                    status, "quorum", seq=vote.seq,
                    votes=self.votes, fenced=self.fenced))
                return
        # Can *any* instance still reach a fast quorum?  Unheard
        # acceptors can at best all pile onto the current leading
        # instance-and-verdict tally.
        remaining = len(self.replicas) - self.votes
        best = max(max(self._accepts.values(), default=0),
                   max(self._rejects.values(), default=0))
        if best + remaining < self.quorum:
            self._finish(FastRoundOutcome(
                "fallback", self._fallback_reason(),
                votes=self.votes, fenced=self.fenced))

    def _fallback_reason(self) -> str:
        if self.fenced:
            return "fenced"
        instances = set(self._accepts) | set(self._rejects)
        if len(instances) > 1:
            return "collision"
        return "conflict"

    def _expire(self, timeout_ms: float) -> None:
        """Wheel callback: the fast round hit its deadline undecided."""
        if not self.result.triggered:
            self._finish(FastRoundOutcome(
                "fallback", "timeout",
                votes=self.votes, fenced=self.fenced))
