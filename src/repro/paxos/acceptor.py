"""Acceptor-side Paxos logic, shared by all storage nodes.

Storage nodes keep one :class:`AcceptorState` per record; the state is
independent of the record's application value so that the consensus
layer stays cleanly separated from storage semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.paxos.ballot import Ballot
from repro.paxos.messages import FastPhase2a, FastPhase2b, Phase2a, Phase2b

#: Observer signature for acceptor instrumentation: ``(etype, fields)``.
AcceptorObserver = Callable[[str, Dict[str, Any]], None]


def ballot_key(ballot: Optional[Ballot]) -> Optional[Tuple[int, str]]:
    """A ballot as a comparable, serializable ``(number, proposer)``
    tuple — the form history events carry (see ``repro.check``)."""
    if ballot is None:
        return None
    return (ballot.number, ballot.proposer)


@dataclass
class AcceptorState:
    """Promised ballot plus the accepted value per Paxos instance.

    Only the most recent ``keep_instances`` accepted instances are
    retained (log truncation): learned options are immediately acted
    on by the leader, so old instances exist purely for audit and
    would otherwise grow without bound on hot records.
    """

    promised: Optional[Ballot] = None
    # seq -> (ballot, payload)
    accepted: Dict[int, Tuple[Ballot, Any]] = field(default_factory=dict)
    keep_instances: int = 32

    def highest_accepted_seq(self) -> int:
        return max(self.accepted, default=-1)

    def truncate(self) -> None:
        """Drop accepted instances beyond the retention horizon."""
        if len(self.accepted) <= self.keep_instances:
            return
        horizon = self.highest_accepted_seq() - self.keep_instances
        for seq in [s for s in self.accepted if s <= horizon]:
            del self.accepted[seq]


def handle_phase1a(state: AcceptorState, ballot: Ballot) -> Tuple[bool, Optional[Ballot]]:
    """Phase-1 promise for a mastership takeover.

    Returns ``(promised?, previously_promised_ballot)``.  On success
    the acceptor will reject any phase2a below ``ballot`` — fencing
    out the old leader.
    """
    if state.promised is not None and ballot < state.promised:
        return False, state.promised
    previous = state.promised
    state.promised = ballot
    return True, previous


def handle_phase2a(state: AcceptorState, message: Phase2a,
                   observer: Optional[AcceptorObserver] = None) -> Phase2b:
    """Run the acceptor's phase-2 vote and mutate ``state``.

    Accepts iff the message ballot is at least the promised ballot
    (classic Paxos acceptance rule); accepting also raises the promise
    so a stale leader cannot later win the same instance.

    ``observer`` (when given) receives one ``("phase2b", fields)``
    call per vote — the history recorder's acceptor-side hook.
    """
    existing = state.accepted.get(message.seq)
    if state.promised is not None and message.ballot < state.promised:
        vote = Phase2b(key=message.key, seq=message.seq,
                       ballot=message.ballot, accepted=False,
                       promised=state.promised)
    elif (existing is not None and existing[0].is_fast
            and not message.ballot.is_fast
            and getattr(existing[1], "txid", None)
            != getattr(message.payload, "txid", None)):
        # A fast value already occupies this instance.  A classic
        # proposal of a *different* value must not overwrite it: the
        # fast value may be chosen (⌈3N/4⌉ fast quorums leave at most
        # ⌊N/4⌋ acceptors free of it, short of any classic majority),
        # so refusing here is what keeps at most one value chosen per
        # instance across fast/classic transitions (CHK008).
        vote = Phase2b(key=message.key, seq=message.seq,
                       ballot=message.ballot, accepted=False,
                       promised=state.promised)
    else:
        state.promised = message.ballot
        state.accepted[message.seq] = (message.ballot, message.payload)
        state.truncate()
        vote = Phase2b(key=message.key, seq=message.seq,
                       ballot=message.ballot, accepted=True,
                       promised=state.promised)
    if observer is not None:
        payload = message.payload
        observer("phase2b", {
            "key": message.key, "seq": message.seq,
            "ballot": ballot_key(message.ballot),
            "accepted": vote.accepted,
            "promised": ballot_key(vote.promised),
            "txid": getattr(payload, "txid", ""),
            "decision": getattr(getattr(payload, "decision", None),
                                "value", ""),
        })
    return vote


def handle_fast2a(state: AcceptorState, message: FastPhase2a,
                  decision: Any,
                  observer: Optional[AcceptorObserver] = None
                  ) -> FastPhase2b:
    """Run the acceptor's *fast* vote and mutate ``state``.

    A fast ballot is votable while the acceptor has not promised
    anything above it — any classic promise or accept fences all later
    fast proposals of that round (the fast→classic transition is
    monotone per key, CHK009).  The acceptor assigns the value to the
    next free instance of its own log; ``decision`` is the caller's
    local option verdict (the storage node evaluates conflict windows
    and floors exactly like a classic leader would).

    The vote is traced as an ordinary ``phase2b`` event so the offline
    invariant catalogue sees fast and classic votes uniformly.
    """
    txid = getattr(message.payload, "txid", "")
    if state.promised is not None and message.ballot < state.promised:
        vote = FastPhase2b(key=message.key, seq=-1, ballot=message.ballot,
                           txid=txid, accepted=False,
                           promised=state.promised)
    else:
        state.promised = message.ballot
        seq = state.highest_accepted_seq() + 1
        state.accepted[seq] = (message.ballot, message.payload)
        state.truncate()
        vote = FastPhase2b(key=message.key, seq=seq, ballot=message.ballot,
                           txid=txid, accepted=True, decision=decision,
                           promised=state.promised)
    if observer is not None:
        observer("phase2b", {
            "key": message.key, "seq": vote.seq,
            "ballot": ballot_key(message.ballot),
            "accepted": vote.accepted,
            "promised": ballot_key(vote.promised),
            "txid": txid,
            "decision": getattr(decision, "value", "") if vote.accepted
            else "",
        })
    return vote
