"""Acceptor-side Paxos logic, shared by all storage nodes.

Storage nodes keep one :class:`AcceptorState` per record; the state is
independent of the record's application value so that the consensus
layer stays cleanly separated from storage semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.paxos.ballot import Ballot
from repro.paxos.messages import Phase2a, Phase2b


@dataclass
class AcceptorState:
    """Promised ballot plus the accepted value per Paxos instance.

    Only the most recent ``keep_instances`` accepted instances are
    retained (log truncation): learned options are immediately acted
    on by the leader, so old instances exist purely for audit and
    would otherwise grow without bound on hot records.
    """

    promised: Optional[Ballot] = None
    # seq -> (ballot, payload)
    accepted: Dict[int, Tuple[Ballot, Any]] = field(default_factory=dict)
    keep_instances: int = 32

    def highest_accepted_seq(self) -> int:
        return max(self.accepted, default=-1)

    def truncate(self) -> None:
        """Drop accepted instances beyond the retention horizon."""
        if len(self.accepted) <= self.keep_instances:
            return
        horizon = self.highest_accepted_seq() - self.keep_instances
        for seq in [s for s in self.accepted if s <= horizon]:
            del self.accepted[seq]


def handle_phase1a(state: AcceptorState, ballot: Ballot) -> Tuple[bool, Optional[Ballot]]:
    """Phase-1 promise for a mastership takeover.

    Returns ``(promised?, previously_promised_ballot)``.  On success
    the acceptor will reject any phase2a below ``ballot`` — fencing
    out the old leader.
    """
    if state.promised is not None and ballot < state.promised:
        return False, state.promised
    previous = state.promised
    state.promised = ballot
    return True, previous


def handle_phase2a(state: AcceptorState, message: Phase2a) -> Phase2b:
    """Run the acceptor's phase-2 vote and mutate ``state``.

    Accepts iff the message ballot is at least the promised ballot
    (classic Paxos acceptance rule); accepting also raises the promise
    so a stale leader cannot later win the same instance.
    """
    if state.promised is not None and message.ballot < state.promised:
        return Phase2b(key=message.key, seq=message.seq,
                       ballot=message.ballot, accepted=False,
                       promised=state.promised)
    state.promised = message.ballot
    state.accepted[message.seq] = (message.ballot, message.payload)
    state.truncate()
    return Phase2b(key=message.key, seq=message.seq, ballot=message.ballot,
                   accepted=True, promised=state.promised)
