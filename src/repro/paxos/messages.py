"""Wire payloads of the per-record Paxos rounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.paxos.ballot import Ballot


@dataclass(frozen=True)
class Phase2a:
    """Leader -> acceptors: accept ``payload`` for instance ``seq``.

    ``payload`` carries the MDCC option (transaction id, update, and
    the leader's accept/reject decision); Paxos itself treats it
    opaquely.
    """

    key: str
    seq: int
    ballot: Ballot
    payload: Any


@dataclass(frozen=True)
class Phase2b:
    """Acceptor -> leader: vote on a phase2a.

    ``accepted`` is False when the acceptor has promised a higher
    ballot; ``promised`` then carries that ballot so the leader can
    re-propose above it.
    """

    key: str
    seq: int
    ballot: Ballot
    accepted: bool
    promised: Ballot = None  # type: ignore[assignment]


@dataclass(frozen=True)
class FastPhase2a:
    """Client -> every acceptor: fast-ballot proposal for one record.

    Unlike :class:`Phase2a` there is no instance number and no leader
    decision — each acceptor assigns the next free instance of its own
    log and evaluates the option against its local record state.  The
    clients of one record agreeing on the instance is exactly what a
    fast quorum certifies; disagreement is a collision.
    """

    key: str
    ballot: Ballot
    payload: Any  # OptionPayload with decision unset by the proposer


@dataclass(frozen=True)
class FastPhase2b:
    """Acceptor -> client: vote on a fast proposal.

    ``accepted`` is False when the acceptor is fenced by a classic
    promise (``promised`` then carries it and ``seq`` is -1); otherwise
    ``seq`` is the instance this acceptor placed the value at and
    ``decision`` its local option verdict (accepted/rejected option —
    both are valid fast votes, mirroring the classic leader's rule).
    """

    key: str
    seq: int
    ballot: Ballot
    txid: str
    accepted: bool
    decision: Any = None  # storage.option.Decision when accepted
    promised: Ballot = None  # type: ignore[assignment]
