"""Wire payloads of the per-record Paxos rounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.paxos.ballot import Ballot


@dataclass(frozen=True)
class Phase2a:
    """Leader -> acceptors: accept ``payload`` for instance ``seq``.

    ``payload`` carries the MDCC option (transaction id, update, and
    the leader's accept/reject decision); Paxos itself treats it
    opaquely.
    """

    key: str
    seq: int
    ballot: Ballot
    payload: Any


@dataclass(frozen=True)
class Phase2b:
    """Acceptor -> leader: vote on a phase2a.

    ``accepted`` is False when the acceptor has promised a higher
    ballot; ``promised`` then carries that ballot so the leader can
    re-propose above it.
    """

    key: str
    seq: int
    ballot: Ballot
    accepted: bool
    promised: Ballot = None  # type: ignore[assignment]
