"""Per-record Multi-Paxos used by the MDCC classic protocol.

MDCC learns one *option* per record update through a Paxos round: the
record leader sends ``phase2a`` to all storage replicas and waits for a
majority of ``phase2b`` acknowledgements (the stable-leader Multi-Paxos
fast path — phase 1 is implicit in mastership).  Ballot monotonicity is
still enforced by the acceptors so that a mastership change cannot
split a round.
"""

from repro.paxos.ballot import Ballot
from repro.paxos.messages import Phase2a, Phase2b
from repro.paxos.acceptor import AcceptorState, ballot_key, handle_phase2a
from repro.paxos.round import PaxosRound, PaxosRoundTimeout

__all__ = [
    "AcceptorState",
    "Ballot",
    "PaxosRound",
    "PaxosRoundTimeout",
    "Phase2a",
    "Phase2b",
    "ballot_key",
    "handle_phase2a",
]
