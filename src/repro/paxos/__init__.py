"""Per-record Multi-Paxos used by the MDCC classic protocol, plus the
fast-ballot extension.

MDCC learns one *option* per record update through a Paxos round: the
record leader sends ``phase2a`` to all storage replicas and waits for a
majority of ``phase2b`` acknowledgements (the stable-leader Multi-Paxos
fast path — phase 1 is implicit in mastership).  Ballot monotonicity is
still enforced by the acceptors so that a mastership change cannot
split a round.

Under *fast ballots* the transaction manager skips the leader hop and
proposes straight to every acceptor (:class:`FastRound`) under a
⌈3N/4⌉ quorum; colliding proposals are recovered through the record
master's classic path.
"""

from repro.paxos.ballot import Ballot, FAST_PROPOSER, fast_quorum_size
from repro.paxos.messages import FastPhase2a, FastPhase2b, Phase2a, Phase2b
from repro.paxos.acceptor import (
    AcceptorState,
    ballot_key,
    handle_fast2a,
    handle_phase2a,
)
from repro.paxos.round import PaxosRound, PaxosRoundTimeout
from repro.paxos.fast import FastRound, FastRoundOutcome

__all__ = [
    "AcceptorState",
    "Ballot",
    "FAST_PROPOSER",
    "FastPhase2a",
    "FastPhase2b",
    "FastRound",
    "FastRoundOutcome",
    "PaxosRound",
    "PaxosRoundTimeout",
    "Phase2a",
    "Phase2b",
    "ballot_key",
    "fast_quorum_size",
    "handle_fast2a",
    "handle_phase2a",
]
