"""Leader-side execution of one phase-2 round.

The leader fans a :class:`Phase2a` out to every replica and resolves as
soon as the outcome is decided: a majority of accepts wins the round, a
blocking minority of rejections loses it.  Lost messages simply leave
the round open; callers that need liveness bound it with
``timeout_ms``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.net.rpc import RpcEndpoint
from repro.paxos.acceptor import ballot_key
from repro.paxos.messages import Phase2a, Phase2b
from repro.sim import Environment, Event


class PaxosRoundTimeout(RuntimeError):
    """The round did not decide within the caller's deadline."""


class PaxosRound:
    """One phase-2 round over a replica group.

    ``result`` is a kernel event that succeeds with ``True`` (quorum of
    accepts), ``False`` (quorum impossible), or fails with
    :class:`PaxosRoundTimeout`.

    >>> round_ = PaxosRound(env, endpoint, replicas, phase2a, quorum=3)
    >>> won = yield round_.result
    """

    def __init__(self, env: Environment, endpoint: RpcEndpoint,
                 replicas: Sequence[str], phase2a: Phase2a, quorum: int,
                 timeout_ms: Optional[float] = None,
                 parent_span: Optional[Tuple[str, str]] = None):
        if not 1 <= quorum <= len(replicas):
            raise ValueError(
                f"quorum {quorum} impossible with {len(replicas)} replicas")
        self.env = env
        self.endpoint = endpoint
        self.phase2a = phase2a
        self.quorum = quorum
        self.replicas = list(replicas)
        self.result: Event = env.event()
        self.accepts = 0
        self.rejects = 0
        self._started_ms = env.now
        if env.tracer is not None:
            env.trace("round_start", node=endpoint.address,
                      key=phase2a.key, seq=phase2a.seq,
                      ballot=ballot_key(phase2a.ballot), quorum=quorum,
                      n_replicas=len(self.replicas))
        # The round span hangs off the caller's context (typically a
        # storage option span that itself descends from the
        # coordinator's stage chain); fan-out calls carry the round's
        # own context so replica-side phase2b spans parent under it.
        self.span = None
        span_ctx = parent_span
        if env.spans is not None and parent_span is not None:
            self.span = env.spans.child(
                parent_span, "paxos.round", endpoint.address, env.now,
                f"{phase2a.key}/{phase2a.seq}/{ballot_key(phase2a.ballot)}",
                key=phase2a.key, seq=phase2a.seq,
                ballot=ballot_key(phase2a.ballot), quorum=quorum)
            span_ctx = self.span.ctx
        for replica in self.replicas:
            call = endpoint.call(replica, "phase2a", phase2a,
                                 span=span_ctx)
            call.callbacks.append(self._on_vote)
        # The round deadline lives on the cancelable timer wheel: a
        # decided round cancels it, so the common case never schedules
        # a heap event for a timeout that will not fire.
        self._timer = (env.arm_timer(env.now + timeout_ms,
                                     lambda: self._expire(timeout_ms))
                       if timeout_ms is not None else None)

    def _trace_outcome(self, won: bool, reason: str) -> None:
        env = self.env
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if env.tracer is not None:
            env.trace("round_decided", node=self.endpoint.address,
                      key=self.phase2a.key, seq=self.phase2a.seq,
                      ballot=ballot_key(self.phase2a.ballot), won=won,
                      accepts=self.accepts, rejects=self.rejects,
                      reason=reason)
        if env.metrics is not None:
            env.metrics.inc("paxos.rounds", label=reason)
            env.metrics.observe("paxos.round_ms",
                                env.now - self._started_ms)
        if self.span is not None:
            self.span.finish(env.now, won=won, reason=reason,
                             accepts=self.accepts, rejects=self.rejects)

    def _on_vote(self, event: Event) -> None:
        if self.result.triggered or not event.ok:
            return
        vote: Phase2b = event.value
        if vote.accepted:
            self.accepts += 1
        else:
            self.rejects += 1
        if self.accepts >= self.quorum:
            self._trace_outcome(True, "quorum")
            self.result.succeed(True)
        elif self.rejects > len(self.replicas) - self.quorum:
            self._trace_outcome(False, "blocked")
            self.result.succeed(False)

    def _expire(self, timeout_ms: float) -> None:
        """Wheel callback: the round deadline passed undecided."""
        if not self.result.triggered:
            self._trace_outcome(False, "timeout")
            self.result.fail(PaxosRoundTimeout(
                f"round undecided after {timeout_ms} ms "
                f"({self.accepts} accepts / {self.rejects} rejects)"))
