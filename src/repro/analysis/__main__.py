"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit status: 0 when the tree is clean, 1 when any finding (error or
warning) survives suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Type

from repro.analysis.base import Checker, all_checkers
from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.runner import analyze_paths
from repro.analysis.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("AST-based determinism and protocol-invariant "
                     "checks for the repro codebase."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-file analysis "
             "(0 = one per CPU; default %(default)s)")
    parser.add_argument(
        "--checker", action="append", metavar="NAME",
        help="run only the named checker (repeatable); "
             "see --list-checkers")
    parser.add_argument(
        "--no-suppress", action="store_true",
        help="ignore '# repro: allow[...]' suppression comments")
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker and error-code catalogue and exit")
    return parser


def _catalogue() -> str:
    lines: List[str] = []
    for name, cls in all_checkers().items():
        lines.append(f"{name}  (scope: {', '.join(cls.scope) or 'all'})")
        for code in sorted(cls.codes):
            lines.append(f"  {code}  {cls.codes[code]}")
    return "\n".join(lines)


def _select(names: Sequence[str]) -> List[Type[Checker]]:
    registry = all_checkers()
    unknown = [name for name in names if name not in registry]
    if unknown:
        known = ", ".join(registry)
        raise SystemExit(
            f"unknown checker(s): {', '.join(unknown)} (known: {known})")
    return [registry[name] for name in names]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_checkers:
        print(_catalogue())
        return 0
    try:
        checkers = _select(args.checker) if args.checker else None
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    jobs = args.jobs
    if jobs == 0:
        from repro.harness.parallel import default_pool_size
        jobs = default_pool_size()
    try:
        report = analyze_paths(
            args.paths, checkers=checkers,
            respect_suppressions=not args.no_suppress, jobs=jobs)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report.diagnostics,
                          files_analyzed=report.files_analyzed,
                          suppressed=report.suppressed))
    elif args.format == "sarif":
        print(render_sarif(report.diagnostics,
                           files_analyzed=report.files_analyzed,
                           suppressed=report.suppressed))
    else:
        if report.diagnostics:
            print(render_text(report.diagnostics))
        print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
