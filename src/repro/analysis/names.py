"""Resolving dotted call targets through a module's imports.

Checkers need to know that ``dt.datetime.now()`` is really
``datetime.datetime.now`` and that a bare ``randint(1, 6)`` came from
``from random import randint``.  :class:`ImportMap` records every
alias a module binds (including function-local imports) and rewrites a
``Name``/``Attribute`` chain to its fully qualified dotted form.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class ImportMap:
    """Maps local names to the qualified names they were imported as."""

    def __init__(self, tree: ast.AST, module: str = "") -> None:
        #: local binding -> fully qualified dotted name
        self.aliases: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds the root package ``a``.
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name)

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package: str) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk ``level - 1`` packages up from the
        # importing module's package.  Without a known package the
        # target cannot be resolved; skip rather than guess.
        if not package:
            return None
        parts = package.split(".")
        cut = node.level - 1
        if cut > len(parts):
            return None
        kept = parts[: len(parts) - cut]
        if node.module:
            kept.append(node.module)
        return ".".join(kept)

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a ``Name``/``Attribute`` chain.

        The chain's root is rewritten through the alias table; builtins
        and local variables resolve to themselves.
        """
        parts = dotted_parts(node)
        if parts is None:
            return None
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root, *parts[1:]])
