"""File discovery and checker execution.

The runner walks the given paths in sorted order (the linter itself
must be deterministic), parses each ``*.py`` file, derives its dotted
module name, and feeds it to every checker whose scope matches.  After
the last file, project-level checks run (protocol completeness needs
the whole picture).

Module naming: a file under a ``src/`` directory is named by its path
below it (``src/repro/net/rpc.py`` -> ``repro.net.rpc``); otherwise a
path containing a ``repro`` package is named from there; otherwise the
bare stem.  A file may override this with a directive in its first few
lines::

    # repro: module=repro.sim.fixture_clock

which is how test fixtures place themselves inside a checker's scope.

Directories named ``fixtures`` (deliberate-violation corpora),
``__pycache__``, and hidden directories are skipped when walking;
explicitly listed files are always analyzed.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.base import Checker, SourceFile, all_checkers
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.names import ImportMap
from repro.analysis.suppressions import Suppressions

#: Directory basenames pruned while walking (never applied to paths the
#: caller names explicitly).
EXCLUDED_DIRS = frozenset({
    "__pycache__", "fixtures", "build", "dist", ".git", ".hg", ".tox",
    ".venv", "venv", "node_modules",
})

_MODULE_DIRECTIVE = re.compile(
    r"^#\s*repro:\s*module=([A-Za-z_][A-Za-z0-9_.]*)\s*$")

#: How many leading lines may carry a ``module=`` directive.
_DIRECTIVE_WINDOW = 10


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``*.py`` files under ``paths`` in deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if name not in EXCLUDED_DIRS
                    and not name.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")


def module_name_for(path: str, source: str = "") -> str:
    """The dotted module name a file will be analyzed as."""
    for line in source.splitlines()[:_DIRECTIVE_WINDOW]:
        match = _MODULE_DIRECTIVE.match(line.strip())
        if match:
            return match.group(1)
    normalized = os.path.normpath(path)
    parts = list(os.path.splitdrive(normalized)[1].split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[anchor + 1:]
        if tail:
            return ".".join(tail)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return parts[-1] if parts else "unknown"


@dataclass
class AnalysisReport:
    """Everything one run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_analyzed: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def summary(self) -> str:
        return (f"{len(self.diagnostics)} finding(s) "
                f"({self.errors} error(s), {self.warnings} warning(s)) "
                f"in {self.files_analyzed} file(s); "
                f"{self.suppressed} suppressed")


@dataclass
class _Loaded:
    file: SourceFile
    suppressions: Optional[Suppressions]


#: Diagnostic code for files the runner itself could not analyze.
PARSE_CODE = "PARSE"


def _load_path(path: str, respect_suppressions: bool) -> "_Loaded":
    """Read and parse one file (raises on I/O or syntax errors)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    module = module_name_for(path, source)
    return _Loaded(
        file=SourceFile(path=path, module=module, source=source,
                        tree=tree, imports=ImportMap(tree, module)),
        suppressions=(Suppressions.scan(source, tree)
                      if respect_suppressions else None))


def _parse_diagnostic(path: str, exc: Exception) -> Diagnostic:
    line = getattr(exc, "lineno", None) or 1
    return Diagnostic(
        path=path, line=int(line), col=0, code=PARSE_CODE,
        message=f"could not analyze file: {exc}",
        severity=Severity.ERROR, checker="runner")


def _run(loaded: Sequence[_Loaded],
         checker_types: Sequence[Type[Checker]],
         pre_diagnostics: Sequence[Diagnostic]) -> AnalysisReport:
    checkers = [cls() for cls in checker_types]
    report = AnalysisReport(files_analyzed=len(loaded))
    report.diagnostics.extend(pre_diagnostics)
    by_path: Dict[str, Suppressions] = {}
    for item in loaded:
        if item.suppressions is not None:
            by_path[item.file.path] = item.suppressions

    def emit(diagnostic: Diagnostic) -> None:
        suppressions = by_path.get(diagnostic.path)
        if suppressions is not None and suppressions.is_suppressed(diagnostic):
            report.suppressed += 1
        else:
            report.diagnostics.append(diagnostic)

    for item in loaded:
        for checker in checkers:
            if not checker.applies_to(item.file.module):
                continue
            for diagnostic in checker.check_file(item.file):
                emit(diagnostic)
    for checker in checkers:
        for diagnostic in checker.check_project():
            emit(diagnostic)
    report.diagnostics.sort(key=lambda d: d.sort_key)
    return report


@dataclass
class _FileOutcome:
    """One file's worth of per-file analysis, as a worker returns it.

    Everything here crosses the process boundary by pickle: the
    ``_Loaded`` payload (source, AST, suppressions) so the parent can
    feed project-level checkers, plus the already-filtered per-file
    diagnostics and the suppression count they incurred.
    """

    loaded: Optional[_Loaded]
    diagnostics: List[Diagnostic]
    suppressed: int


_ScanTask = Tuple[str, Tuple[Type[Checker], ...], bool]


def _scan_one(task: _ScanTask) -> _FileOutcome:
    """Pool-worker body: parse one file, run its per-file checks.

    Project-level checks (``check_project``) are *not* run here — a
    worker only ever sees its own shard, so whole-program checkers run
    in the parent over the merged file set.  ``check_file`` calls on
    project checkers still happen (their per-file diagnostics, if any,
    belong to this file); the throwaway accumulation state dies with
    the worker.
    """
    path, checker_types, respect_suppressions = task
    try:
        loaded = _load_path(path, respect_suppressions)
    except (OSError, SyntaxError, ValueError) as exc:
        return _FileOutcome(loaded=None,
                            diagnostics=[_parse_diagnostic(path, exc)],
                            suppressed=0)
    diagnostics: List[Diagnostic] = []
    suppressed = 0
    for cls in checker_types:
        checker = cls()
        if not checker.applies_to(loaded.file.module):
            continue
        for diagnostic in checker.check_file(loaded.file):
            if (loaded.suppressions is not None
                    and loaded.suppressions.is_suppressed(diagnostic)):
                suppressed += 1
            else:
                diagnostics.append(diagnostic)
    return _FileOutcome(loaded=loaded, diagnostics=diagnostics,
                        suppressed=suppressed)


def _is_project_checker(cls: Type[Checker]) -> bool:
    return cls.check_project is not Checker.check_project


def _analyze_parallel(files: Sequence[str],
                      checker_types: Sequence[Type[Checker]],
                      respect_suppressions: bool,
                      jobs: int) -> AnalysisReport:
    """The sharded runner: per-file work in a pool, project checks here.

    Output is byte-identical to the serial runner: results merge in
    input order, project diagnostics pass through the same suppression
    filter, and the final sort is the same ``sort_key`` sort.
    """
    from repro.harness.parallel import parallel_map

    tasks: List[_ScanTask] = [
        (path, tuple(checker_types), respect_suppressions)
        for path in files]
    outcomes = parallel_map(_scan_one, tasks, processes=jobs, chunksize=4)

    report = AnalysisReport(files_analyzed=len(files))
    loaded: List[_Loaded] = []
    for outcome in outcomes:
        report.diagnostics.extend(outcome.diagnostics)
        report.suppressed += outcome.suppressed
        if outcome.loaded is not None:
            loaded.append(outcome.loaded)

    by_path: Dict[str, Suppressions] = {
        item.file.path: item.suppressions for item in loaded
        if item.suppressions is not None}
    for cls in checker_types:
        if not _is_project_checker(cls):
            continue
        checker = cls()
        for item in loaded:
            if checker.applies_to(item.file.module):
                # Re-feed for accumulation only; the per-file output of
                # this checker was already emitted by the worker.
                for _ in checker.check_file(item.file):
                    pass
        for diagnostic in checker.check_project():
            suppressions = by_path.get(diagnostic.path)
            if (suppressions is not None
                    and suppressions.is_suppressed(diagnostic)):
                report.suppressed += 1
            else:
                report.diagnostics.append(diagnostic)
    report.diagnostics.sort(key=lambda d: d.sort_key)
    return report


def analyze_paths(paths: Sequence[str],
                  checkers: Optional[Sequence[Type[Checker]]] = None,
                  respect_suppressions: bool = True,
                  jobs: int = 1) -> AnalysisReport:
    """Analyze files and directories; the CLI's engine.

    ``jobs > 1`` shards the parse + per-file checker work across a
    worker pool (:mod:`repro.harness.parallel`); project-level checks
    still run once, in this process, over the merged file set, so the
    report is identical to the serial run.
    """
    checker_types = (list(checkers) if checkers is not None
                     else list(all_checkers().values()))
    files = list(iter_python_files(paths))
    if jobs > 1 and len(files) > 1:
        return _analyze_parallel(files, checker_types,
                                 respect_suppressions, jobs)
    loaded: List[_Loaded] = []
    pre: List[Diagnostic] = []
    for path in files:
        try:
            loaded.append(_load_path(path, respect_suppressions))
        except (OSError, SyntaxError, ValueError) as exc:
            pre.append(_parse_diagnostic(path, exc))
    report = _run(loaded, checker_types, pre)
    report.files_analyzed = len(loaded) + len(pre)
    return report


def analyze_source(source: str, path: str = "<memory>",
                   module: Optional[str] = None,
                   checkers: Optional[Sequence[Type[Checker]]] = None,
                   respect_suppressions: bool = True) -> List[Diagnostic]:
    """Analyze one in-memory module; the test-suite's engine."""
    checker_types = (list(checkers) if checkers is not None
                     else list(all_checkers().values()))
    tree = ast.parse(source, filename=path)
    resolved = module if module is not None else module_name_for(path, source)
    loaded = _Loaded(
        file=SourceFile(path=path, module=resolved, source=source,
                        tree=tree, imports=ImportMap(tree, resolved)),
        suppressions=(Suppressions.scan(source, tree)
                      if respect_suppressions else None))
    return _run([loaded], checker_types, []).diagnostics
