"""RNG-discipline checks: randomness is injected, never improvised.

The convention (see ``repro.sim.rng`` and the ``sample(self, rng)``
signatures throughout ``repro.net.latency`` / ``repro.workload``): a
stochastic function takes an explicit ``random.Random`` and the only
place streams are *constructed* is the seeded
:class:`~repro.sim.rng.RandomStreams` factory.  Ad-hoc construction
forks an unregistered stream — reordering draws and quietly decoupling
components from the master seed.

Codes
-----
RNG001
    RNG constructed with no seed: seeded from OS entropy, so every run
    differs.
RNG002
    Ad-hoc (even seeded) RNG construction outside the RandomStreams
    factory.
RNG003
    Call into numpy's module-global RNG.
RNG004
    RNG constructed in a default argument: evaluated once at import,
    the stream is shared by every caller.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.diagnostics import Diagnostic

CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.RandomState",
    "numpy.random.default_rng",
    "numpy.random.Generator",
})

#: numpy.random attributes that are types/factories, not global draws.
_NUMPY_NON_DRAWS = frozenset({
    "RandomState", "Generator", "default_rng", "SeedSequence",
    "BitGenerator", "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
})


@register
class RngDisciplineChecker(Checker):
    """Every stochastic component draws from an injected stream."""

    name = "rng-discipline"
    codes = {
        "RNG001": "RNG constructed without a seed",
        "RNG002": "ad-hoc RNG construction outside the stream factory",
        "RNG003": "module-global numpy RNG call",
        "RNG004": "RNG constructed in a default argument",
    }
    scope = ("repro",)

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        in_default: Set[int] = set()
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    diagnostics.extend(
                        self._check_default(file, default, in_default))
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call) or id(node) in in_default:
                continue
            qualname = file.imports.qualname(node.func)
            if qualname is None:
                continue
            if qualname in CONSTRUCTORS:
                if not node.args and not node.keywords:
                    diagnostics.append(self.at(
                        file.path, node, "RNG001",
                        f"{qualname}() with no seed draws its state from "
                        "OS entropy; every run will differ"))
                else:
                    diagnostics.append(self.at(
                        file.path, node, "RNG002",
                        f"ad-hoc {qualname}(...) forks a stream outside "
                        "the seeded RandomStreams factory; inject an rng "
                        "instead"))
            elif (qualname.startswith("numpy.random.")
                    and qualname.rsplit(".", 1)[1] not in _NUMPY_NON_DRAWS):
                diagnostics.append(self.at(
                    file.path, node, "RNG003",
                    f"{qualname}() uses numpy's module-global RNG; use a "
                    "Generator built from the master seed"))
        return diagnostics

    def _check_default(self, file: SourceFile, default: ast.expr,
                       in_default: Set[int]) -> Iterable[Diagnostic]:
        for node in ast.walk(default):
            if (isinstance(node, ast.Call)
                    and file.imports.qualname(node.func) in CONSTRUCTORS):
                in_default.add(id(node))
                yield self.at(
                    file.path, node, "RNG004",
                    "an RNG in a default argument is built once at import "
                    "and shared by every caller; default to None and "
                    "require an explicit stream")
