"""Protocol-completeness checks across the whole analyzed tree.

The RPC fabric drops messages with no registered handler on the floor
(like a real server, see ``RpcEndpoint._dispatch``) — so a typo'd kind
string in a ``call``/``cast`` wedges a protocol silently.  Likewise, a
transaction state nobody ever transitions into means the state machine
and the paper's §3.1 have drifted apart.  Both are cross-module
properties, so this checker accumulates per-file facts and judges them
in :meth:`check_project`.

Run it over the *full* tree (``python -m repro.analysis src``): on a
single file, sends whose handlers live in another module would be
reported as unhandled.

Codes
-----
PROTO001
    A message kind is sent (``endpoint.call``/``cast``) but no
    endpoint anywhere registers a handler for it.
PROTO002
    A handler is registered for a kind that is never sent (dead
    handler; warning).
PROTO003
    A member of a ``*State`` enum is never referenced outside its
    defining module: unreachable in any transition.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.names import dotted_parts

#: Enum base classes that make a ``*State`` class a state machine.
_ENUM_BASES = frozenset({
    "enum.Enum", "enum.IntEnum", "enum.Flag", "enum.IntFlag",
    "Enum", "IntEnum", "Flag", "IntFlag",
})


@dataclass(frozen=True)
class _Site:
    path: str
    line: int
    col: int

    def node(self) -> ast.AST:
        placeholder = ast.Pass()
        placeholder.lineno = self.line
        placeholder.col_offset = self.col
        return placeholder


@register
class ProtocolChecker(Checker):
    """Cross-checks message kinds and state-machine reachability."""

    name = "protocol"
    codes = {
        "PROTO001": "message kind sent but never handled",
        "PROTO002": "handler registered for a kind never sent",
        "PROTO003": "state enum member unreachable outside its module",
    }
    scope = ("repro",)

    def __init__(self) -> None:
        self._handlers: Dict[str, List[_Site]] = {}
        self._sends: Dict[str, List[_Site]] = {}
        #: enum class name -> (defining module, {member: site})
        self._enums: Dict[str, Tuple[str, Dict[str, _Site]]] = {}
        #: (owner name, attribute) -> modules referencing it
        self._attr_uses: Dict[Tuple[str, str], Set[str]] = {}
        #: bare class-name references -> modules
        self._name_uses: Dict[str, Set[str]] = {}

    # -- per-file collection ---------------------------------------------------

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        consumed: Set[int] = set()
        annotation_nodes = self._annotation_nodes(file.tree)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                self._collect_endpoint_call(file, node)
            elif isinstance(node, ast.ClassDef):
                self._collect_state_enum(file, node)
            elif isinstance(node, ast.Attribute) and id(node) not in consumed:
                parts = dotted_parts(node)
                if parts is None:
                    continue
                for child in ast.walk(node):
                    consumed.add(id(child))
                for owner, attribute in zip(parts, parts[1:]):
                    self._attr_uses.setdefault(
                        (owner, attribute), set()).add(file.module)
                # A chain *ending* in an uppercase name passes the class
                # itself around: treat every member as referenced.
                if (parts[-1][:1].isupper()
                        and id(node) not in annotation_nodes):
                    self._name_uses.setdefault(
                        parts[-1], set()).add(file.module)
            elif isinstance(node, ast.Name) and id(node) not in consumed:
                if (node.id[:1].isupper()
                        and id(node) not in annotation_nodes):
                    self._name_uses.setdefault(
                        node.id, set()).add(file.module)
        return ()

    @staticmethod
    def _annotation_nodes(tree: ast.Module) -> Set[int]:
        """Node ids inside type annotations.

        Naming a class in an annotation does not make its members
        reachable — only real value references do.
        """
        roots: List[Optional[ast.expr]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                roots.append(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                roots.append(node.returns)
            elif isinstance(node, ast.arg):
                roots.append(node.annotation)
        ids: Set[int] = set()
        for root in roots:
            if root is not None:
                for node in ast.walk(root):
                    ids.add(id(node))
        return ids

    def _collect_endpoint_call(self, file: SourceFile,
                               node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in ("on", "call", "cast"):
            return
        receiver = dotted_parts(node.func.value)
        if not receiver or not receiver[-1].endswith("endpoint"):
            return
        kind_index = 0 if method == "on" else 1
        if len(node.args) <= kind_index:
            return
        kind_node = node.args[kind_index]
        if not (isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)):
            return  # dynamic kind: out of static reach
        site = _Site(file.path, kind_node.lineno, kind_node.col_offset)
        bucket = self._handlers if method == "on" else self._sends
        bucket.setdefault(kind_node.value, []).append(site)

    def _collect_state_enum(self, file: SourceFile,
                            node: ast.ClassDef) -> None:
        if not node.name.endswith("State"):
            return
        base_names = {file.imports.qualname(base) for base in node.bases}
        if not (base_names & _ENUM_BASES):
            return
        members: Dict[str, _Site] = {}
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if (isinstance(target, ast.Name)
                            and not target.id.startswith("_")):
                        members[target.id] = _Site(
                            file.path, target.lineno, target.col_offset)
        if members:
            self._enums[node.name] = (file.module, members)

    # -- project-level verdicts ---------------------------------------------------

    def check_project(self) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for kind in sorted(self._sends):
            if kind in self._handlers:
                continue
            for site in self._sends[kind]:
                diagnostics.append(self.at(
                    site.path, site.node(), "PROTO001",
                    f"message kind {kind!r} is sent here but no endpoint "
                    "registers a handler for it; the RPC layer will drop "
                    "it silently"))
        for kind in sorted(self._handlers):
            if kind in self._sends:
                continue
            for site in self._handlers[kind]:
                diagnostics.append(self.at(
                    site.path, site.node(), "PROTO002",
                    f"handler for kind {kind!r} is registered but nothing "
                    "in the tree sends it",
                    severity=Severity.WARNING))
        for class_name in sorted(self._enums):
            defining_module, members = self._enums[class_name]
            wildcard = self._name_uses.get(class_name, set())
            if wildcard - {defining_module}:
                continue  # the class itself is passed around: all reachable
            for member in sorted(members):
                uses = self._attr_uses.get((class_name, member), set())
                if uses - {defining_module}:
                    continue
                site = members[member]
                diagnostics.append(self.at(
                    site.path, site.node(), "PROTO003",
                    f"state {class_name}.{member} is never referenced "
                    f"outside {defining_module}; it is unreachable in "
                    "any transition"))
        return diagnostics
