"""The built-in checker wave; importing this package registers them."""

from repro.analysis.checkers import determinism  # noqa: F401
from repro.analysis.checkers import perf  # noqa: F401
from repro.analysis.checkers import protocol  # noqa: F401
from repro.analysis.checkers import rng  # noqa: F401
from repro.analysis.checkers import simgen  # noqa: F401
from repro.analysis.flow import checkers as flow_checkers  # noqa: F401
