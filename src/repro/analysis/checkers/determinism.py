"""Determinism checks: same seeds must mean identical traces.

The simulation's virtual clock is ``Environment.now`` and its only
entropy is the seeded :class:`repro.sim.rng.RandomStreams` family.
Anything else — wall clock, the process-global ``random`` module, OS
entropy, object identity, or hash-order iteration — silently varies
between runs and invalidates every benchmark downstream.

Codes
-----
DET001
    Wall-clock read (``time.time``, ``datetime.now``, ...).
DET002
    Call into the process-global ``random`` module state.
DET003
    OS entropy source (``os.urandom``, ``uuid.uuid4``, ``secrets``).
DET004
    Sort key built from ``id()``/``hash()`` — interpreter-run
    dependent ordering.
DET005
    Order-sensitive iteration over a ``set``/``frozenset``.

For DET005 note the asymmetry with dicts: CPython dicts preserve
insertion order (guaranteed since 3.7), so iterating a dict populated
deterministically is deterministic; sets never make that promise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.names import ImportMap

WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.localtime",
    "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

GLOBAL_RANDOM = frozenset({
    f"random.{name}" for name in (
        "random", "uniform", "randint", "randrange", "getrandbits",
        "choice", "choices", "shuffle", "sample", "betavariate",
        "binomialvariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "triangular", "seed",
        "setstate",
    )
})

ENTROPY_SOURCES = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: Builtins whose ``key=`` argument orders the result.
_ORDERING_CALLS = frozenset({"sorted", "min", "max"})

#: ``list(s)``/``tuple(s)``/... materialize the set's hash order.
_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_annotation(node: ast.AST, imports: ImportMap) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    qualname = imports.qualname(node)
    return qualname in {
        "set", "frozenset", "Set", "FrozenSet",
        "typing.Set", "typing.FrozenSet", "typing.AbstractSet",
        "typing.MutableSet",
    }


class _SetOrderVisitor(ast.NodeVisitor):
    """Flags order-sensitive consumption of set-typed expressions.

    Local type inference is deliberately simple and conservative: a
    name counts as set-typed only when *every* assignment to it in the
    enclosing scope is a set expression, so rebinding a set to its
    ``sorted(...)`` form clears the taint.  ``self.<attr>`` names
    assigned a set anywhere in the module (the ``self._active: set``
    idiom) are tracked too.
    """

    def __init__(self, checker: "DeterminismChecker", file: SourceFile):
        self._checker = checker
        self._file = file
        self._imports = file.imports
        self.diagnostics: List[Diagnostic] = []
        self._self_set_attrs = self._collect_self_attrs(file.tree)
        #: Stack of {name: is-set-everywhere} scopes; [0] is module scope.
        self._scopes: List[Dict[str, bool]] = [
            self._scope_bindings(file.tree)]

    # -- scope bookkeeping --------------------------------------------------

    def _collect_self_attrs(self, tree: ast.Module) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
                if (_is_set_annotation(node.annotation, self._imports)
                        and isinstance(node.target, ast.Attribute)
                        and isinstance(node.target.value, ast.Name)
                        and node.target.value.id == "self"):
                    attrs.add(node.target.attr)
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and value is not None
                        and self._is_set_literal(value)):
                    attrs.add(target.attr)
        return attrs

    def _scope_bindings(self, scope: ast.AST) -> Dict[str, bool]:
        bindings: Dict[str, bool] = {}
        for node in self._walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        is_set = self._is_set_literal(node.value)
                        previous = bindings.get(target.id, True)
                        bindings[target.id] = previous and is_set
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    is_set = (
                        _is_set_annotation(node.annotation, self._imports)
                        or (node.value is not None
                            and self._is_set_literal(node.value)))
                    previous = bindings.get(node.target.id, True)
                    bindings[node.target.id] = previous and is_set
            elif isinstance(node, (ast.For, ast.AugAssign, ast.withitem)):
                # Loop targets and augmented assignment taint nothing,
                # but a name rebound by them is no longer known-set.
                target = getattr(node, "target", None) or getattr(
                    node, "optional_vars", None)
                if isinstance(target, ast.Name):
                    bindings[target.id] = False
        return {name: True for name, is_set in bindings.items() if is_set}

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a function/module body without entering nested defs."""
        body = getattr(scope, "body", [])
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- set-expression predicate -------------------------------------------

    def _is_set_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self._imports.qualname(node.func) in {"set", "frozenset"}
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        if self._is_set_literal(node):
            return True
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return True
            return False
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr in self._self_set_attrs
        return False

    # -- flagged constructs ---------------------------------------------------

    def _flag(self, node: ast.AST, what: str) -> None:
        self.diagnostics.append(self._checker.at(
            self._file.path, node, "DET005",
            f"{what} iterates a set in hash order; wrap it in sorted() "
            "or use an insertion-ordered structure"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(self._scope_bindings(node))
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "this for loop")
        self.generic_visit(node)

    def _check_comprehension(
            self, node: Union[ast.ListComp, ast.DictComp]) -> None:
        for generator in node.generators:
            if self._is_set_expr(generator.iter):
                self._flag(generator.iter, "this comprehension")
        self.generic_visit(node)

    # SetComp/GeneratorExp outputs are order-free or consumer-dependent;
    # only comprehensions with ordered outputs are flagged.
    visit_ListComp = _check_comprehension  # type: ignore[assignment]
    visit_DictComp = _check_comprehension  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        qualname = self._imports.qualname(node.func)
        if (qualname in _MATERIALIZERS and len(node.args) == 1
                and not node.keywords
                and self._is_set_expr(node.args[0])):
            self._flag(node, f"{qualname}() over a set")
        self.generic_visit(node)


@register
class DeterminismChecker(Checker):
    """Forbids every known source of run-to-run nondeterminism."""

    name = "determinism"
    codes = {
        "DET001": "wall-clock read inside deterministic code",
        "DET002": "use of the process-global random module state",
        "DET003": "OS entropy source",
        "DET004": "ordering by id()/hash()",
        "DET005": "order-sensitive iteration over a set",
    }
    scope = ("repro",)
    # repro.perf measures wall time by design; it is host-side code
    # that never runs inside a simulation.
    exclude = Checker.exclude + ("repro.perf",)

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        imports = file.imports
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = imports.qualname(node.func)
            if qualname in WALL_CLOCK:
                diagnostics.append(self.at(
                    file.path, node, "DET001",
                    f"{qualname}() reads the wall clock; simulation time "
                    "is Environment.now"))
            elif qualname in GLOBAL_RANDOM:
                diagnostics.append(self.at(
                    file.path, node, "DET002",
                    f"{qualname}() draws from the process-global stream; "
                    "use an injected random.Random "
                    "(see repro.sim.rng.RandomStreams)"))
            elif (qualname in ENTROPY_SOURCES
                    or (qualname or "").startswith("secrets.")):
                diagnostics.append(self.at(
                    file.path, node, "DET003",
                    f"{qualname} is an OS entropy source; derive all "
                    "randomness from the seeded RandomStreams family"))
            diagnostics.extend(self._check_sort_key(file, node, imports))
        visitor = _SetOrderVisitor(self, file)
        visitor.visit(file.tree)
        diagnostics.extend(visitor.diagnostics)
        return diagnostics

    def _check_sort_key(self, file: SourceFile, node: ast.Call,
                        imports: ImportMap) -> Iterable[Diagnostic]:
        qualname = imports.qualname(node.func)
        is_ordering = qualname in _ORDERING_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort")
        if not is_ordering:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            for name in ast.walk(keyword.value):
                if isinstance(name, ast.Name) and name.id in ("id", "hash"):
                    yield self.at(
                        file.path, node, "DET004",
                        f"sort key uses {name.id}(); object identity and "
                        "hashes vary between interpreter runs")
                    break
