"""Hot-path layout check: kernel/transport classes must be slotted.

The event loop allocates one :class:`~repro.sim.kernel.Event` (or a
subclass) per scheduled occurrence and one ``Message`` per network
hop — millions of instances per experiment.  A per-instance
``__dict__`` costs both allocation time and cache locality, and the
microbenchmarks (``python -m repro.perf``) showed ~1.8× kernel
throughput from removing it.  This pass keeps the property from
silently eroding as classes are added.

Codes
-----
PERF001
    A class under ``repro.sim`` or ``repro.net`` declares no
    ``__slots__``.
PERF002
    A direct ``np.convolve`` / ``np.fft.*`` call outside
    ``repro.core.histograms``.  All PMF algebra must route through
    :class:`~repro.core.histograms.Pmf` operations so the spectrum
    cache, tail-tolerance policy, and exactness pins apply uniformly
    — a stray hand-rolled convolution silently forfeits all three.

Exempt without an escape comment (PERF001): exception classes
(instantiated on failure paths, never hot) and typing-level bases
(``Protocol``, ``NamedTuple``, ``TypedDict``, ``Enum`` variants) whose
metaclasses manage layout themselves.  Anything else that genuinely
must carry a ``__dict__`` takes a ``# repro: allow[PERF001]`` with a
reason; likewise a deliberate raw spectral call outside the histogram
module takes ``# repro: allow[PERF002]``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.diagnostics import Diagnostic

#: Base-class names whose subclasses manage their own layout (or are
#: never instance-heavy): typing constructs and enums.
_EXEMPT_BASES = frozenset({
    "Protocol", "typing.Protocol",
    "NamedTuple", "typing.NamedTuple",
    "TypedDict", "typing.TypedDict",
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "enum.Enum", "enum.IntEnum", "enum.StrEnum", "enum.Flag",
    "enum.IntFlag",
    "Exception", "BaseException",
})


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            if (isinstance(statement.target, ast.Name)
                    and statement.target.id == "__slots__"):
                return True
    return False


def _is_exception(node: ast.ClassDef, file: SourceFile) -> bool:
    """Heuristic: subclasses Exception directly, or is named like one."""
    for base in node.bases:
        qualname = file.imports.qualname(base) or ""
        if qualname in ("Exception", "BaseException") or qualname.endswith(
                ("Error", "Exception", "Warning")):
            return True
    return node.name.endswith(("Error", "Exception", "Warning"))


@register
class SlotsChecker(Checker):
    """Keeps hot-path instance layouts ``__dict__``-free."""

    name = "perf"
    codes = {
        "PERF001": "hot-path class without __slots__",
    }
    scope = ("repro.sim", "repro.net")

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _declares_slots(node):
                continue
            if _is_exception(node, file):
                continue
            if self._has_exempt_base(node, file):
                continue
            diagnostics.append(self.at(
                file.path, node, "PERF001",
                f"class {node.name} under {file.module} has no __slots__; "
                "hot-path instances must not carry a per-instance "
                "__dict__ (add __slots__ or '# repro: allow[PERF001]' "
                "with a reason)"))
        return diagnostics

    @staticmethod
    def _has_exempt_base(node: ast.ClassDef, file: SourceFile) -> bool:
        for base in node.bases:
            qualname = file.imports.qualname(base)
            if qualname in _EXEMPT_BASES:
                return True
        return False


#: Raw spectral entry points that bypass the ``Pmf`` algebra layer.
_RAW_PMF_CALLS = frozenset({"numpy.convolve"})
_RAW_PMF_PREFIXES = ("numpy.fft.",)


@register
class PmfOpsChecker(Checker):
    """Keeps PMF spectral algebra behind the ``Pmf`` layer."""

    name = "perf_pmf"
    codes = {
        "PERF002": "raw convolution/FFT call outside the Pmf layer",
    }
    #: The histogram module *is* the Pmf layer — the one place raw
    #: ``np.convolve`` / ``np.fft`` calls belong.
    exclude = Checker.exclude + ("repro.core.histograms",)

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = file.imports.qualname(node.func)
            if qualname is None:
                continue
            if (qualname in _RAW_PMF_CALLS
                    or qualname.startswith(_RAW_PMF_PREFIXES)):
                diagnostics.append(self.at(
                    file.path, node, "PERF002",
                    f"direct {qualname}() outside repro.core.histograms; "
                    "PMF algebra must go through Pmf operations "
                    "(convolve/mixture/convolution_mixture) so spectrum "
                    "caching and tail-tolerance policy apply (or "
                    "'# repro: allow[PERF002]' with a reason)"))
        return diagnostics
