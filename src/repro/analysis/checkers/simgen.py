"""Sim-process discipline: kernel processes are well-formed generators.

``Environment.process`` drives a *generator* that yields
:class:`~repro.sim.kernel.Event` objects.  Passing a plain function
crashes at start-up; yielding a non-event crashes mid-run with a
``SimulationError``; calling blocking stdlib I/O stalls the host while
virtual time stands still.  All three are detectable before a tick
runs.

Codes
-----
SIM001
    ``env.process(f(...))`` where ``f`` contains no ``yield``.
SIM002
    A kernel process yields an obvious non-event (bare ``yield``,
    constant, or container literal).
SIM003
    Blocking host I/O (``time.sleep``, ``open``, ``socket``, ...)
    inside simulation code.  ``repro.harness`` and the check CLI are
    exempt: they run on the host side and legitimately write reports.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.analysis.base import Checker, SourceFile, register, within
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.names import dotted_parts

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "input", "open",
    "io.open", "os.fork", "os.wait",
})

BLOCKING_PREFIXES = (
    "socket.", "subprocess.", "urllib.", "requests.", "http.client.",
    "shutil.", "multiprocessing.", "threading.",
)

#: Host-side packages exempt from the blocking-I/O rule.  The check
#: CLI is host-side too: it writes failing fuzz traces to disk, the
#: benchmark harness writes reports and prints progress, and the
#: observability exporters save/load artifact files after a run.
_HOST_SIDE = ("repro.harness", "repro.check.__main__", "repro.perf",
              "repro.obs")


def _walk_own_body(function: _FunctionDef) -> Iterator[ast.AST]:
    """Walk a function's statements without entering nested defs."""
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(function: _FunctionDef) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _walk_own_body(function))


@register
class SimProcessChecker(Checker):
    """Statically validates functions handed to ``env.process``."""

    name = "sim-process"
    codes = {
        "SIM001": "process target is not a generator",
        "SIM002": "kernel process yields a non-event value",
        "SIM003": "blocking host I/O inside simulation code",
    }
    scope = ("repro",)

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        functions = self._functions_by_name(file.tree)
        targets: Dict[int, _FunctionDef] = {}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            self._check_process_call(file, node, functions, targets,
                                     diagnostics)
            if not any(within(file.module, pkg) for pkg in _HOST_SIDE):
                self._check_blocking(file, node, diagnostics)
        for target in sorted(targets.values(), key=lambda f: f.lineno):
            self._check_yields(file, target, diagnostics)
        return diagnostics

    # -- collection -----------------------------------------------------------

    @staticmethod
    def _functions_by_name(
            tree: ast.Module) -> Dict[str, List[_FunctionDef]]:
        functions: Dict[str, List[_FunctionDef]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, []).append(node)
        return functions

    # -- SIM001 ----------------------------------------------------------------

    def _check_process_call(self, file: SourceFile, node: ast.Call,
                            functions: Dict[str, List[_FunctionDef]],
                            targets: Dict[int, _FunctionDef],
                            diagnostics: List[Diagnostic]) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"):
            return
        receiver = dotted_parts(node.func.value)
        if not receiver or receiver[-1] not in ("env", "environment"):
            return
        if not node.args:
            return
        argument = node.args[0]
        if not isinstance(argument, ast.Call):
            return  # a pre-built generator object: nothing to resolve
        callee: Optional[str] = None
        if isinstance(argument.func, ast.Name):
            callee = argument.func.id
        elif (isinstance(argument.func, ast.Attribute)
                and isinstance(argument.func.value, ast.Name)
                and argument.func.value.id == "self"):
            callee = argument.func.attr
        if callee is None:
            return
        candidates = functions.get(callee, [])
        if not candidates:
            return  # defined elsewhere; out of this file's reach
        if not any(_is_generator(candidate) for candidate in candidates):
            diagnostics.append(self.at(
                file.path, argument, "SIM001",
                f"{callee}() contains no yield; env.process() needs a "
                "generator, this call would crash at start-up"))
            return
        for candidate in candidates:
            targets[candidate.lineno] = candidate

    # -- SIM002 -----------------------------------------------------------------

    def _check_yields(self, file: SourceFile, function: _FunctionDef,
                      diagnostics: List[Diagnostic]) -> None:
        for node in _walk_own_body(function):
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if value is None:
                diagnostics.append(self.at(
                    file.path, node, "SIM002",
                    f"bare yield in kernel process {function.name}() "
                    "yields None; processes may only yield Event objects"))
            elif isinstance(value, (ast.Constant, ast.Tuple, ast.List,
                                    ast.Dict, ast.Set, ast.JoinedStr)):
                diagnostics.append(self.at(
                    file.path, node, "SIM002",
                    f"kernel process {function.name}() yields a literal; "
                    "processes may only yield Event objects"))

    # -- SIM003 -------------------------------------------------------------------

    def _check_blocking(self, file: SourceFile, node: ast.Call,
                        diagnostics: List[Diagnostic]) -> None:
        qualname = file.imports.qualname(node.func)
        if qualname is None:
            return
        if (qualname in BLOCKING_CALLS
                or qualname.startswith(BLOCKING_PREFIXES)):
            diagnostics.append(self.at(
                file.path, node, "SIM003",
                f"{qualname}() blocks the host process; simulation code "
                "must wait on virtual time (env.timeout) instead"))
