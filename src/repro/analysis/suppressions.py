"""Inline suppression comments.

A finding can be silenced at its line, for a whole function, or for a
whole file:

- ``# repro: allow[DET001]`` on the flagged line suppresses that code
  there; several codes may be listed: ``allow[DET001,RNG002]``.
- ``# repro: allow[*]`` suppresses every code on the line.
- ``# repro: allow-fn[RACE001]`` on a function's ``def`` line (or any
  of its decorator lines) suppresses the code through the whole
  function body; ``allow-fn[*]`` silences the function entirely.
- ``# repro: allow-file[RNG002]`` (conventionally near the top of the
  file) suppresses the code file-wide; ``allow-file[*]`` silences the
  whole file.

Suppressions are matched against the *reported* line of a diagnostic,
which for multi-line statements is the line the statement starts on.
For decorated functions the decorator lines and the ``def`` line form
one alias group: an ``allow[...]`` on any of them covers diagnostics
reported at any other (a checker may anchor its finding at the
decorator while the natural place to write the escape is the ``def``
line, or vice versa).

The scan is textual, so a marker is recognised even inside a string
literal — do not spell the marker in test data you want linted.  The
function-scope and alias features additionally need the parsed tree;
when the runner has one it passes it to :meth:`Suppressions.scan`,
otherwise the source is parsed on the spot (and unparseable files
simply get no function-aware behaviour — the per-line and per-file
markers still work).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

_MARKER = re.compile(r"#\s*repro:\s*(allow|allow-file|allow-fn)\[([^\]]+)\]")


def _function_groups(
        tree: ast.AST) -> List[Tuple[Set[int], int, int]]:
    """(alias lines, span start, span end) per function definition.

    The alias lines are the decorator lines plus the ``def`` line; the
    span covers the whole definition including decorators.
    """
    groups: List[Tuple[Set[int], int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        alias_lines = {d.lineno for d in node.decorator_list}
        alias_lines.add(node.lineno)
        end = getattr(node, "end_lineno", None) or node.lineno
        groups.append((alias_lines, min(alias_lines), end))
    return groups


class Suppressions:
    """The suppression markers of one source file."""

    def __init__(self) -> None:
        self.file_codes: Set[str] = set()
        self.line_codes: Dict[int, Set[str]] = {}
        #: (start line, end line, codes) function-scope suppressions.
        self.span_codes: List[Tuple[int, int, Set[str]]] = []

    @classmethod
    def scan(cls, source: str,
             tree: Optional[ast.AST] = None) -> "Suppressions":
        result = cls()
        fn_markers: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            for kind, codes in _MARKER.findall(line):
                names = {code.strip() for code in codes.split(",")
                         if code.strip()}
                if kind == "allow-file":
                    result.file_codes.update(names)
                elif kind == "allow-fn":
                    fn_markers.setdefault(lineno, set()).update(names)
                else:
                    result.line_codes.setdefault(lineno, set()).update(names)

        if tree is None:
            try:
                tree = ast.parse(source)
            except (SyntaxError, ValueError):
                tree = None
        if tree is not None:
            groups = _function_groups(tree)
            result._alias_decorator_lines(groups)
            result._attach_fn_markers(groups, fn_markers)
        elif fn_markers:
            # No tree to resolve spans against: degrade to line scope
            # so the marker at least covers its own line.
            for lineno, names in fn_markers.items():
                result.line_codes.setdefault(lineno, set()).update(names)
        return result

    def _alias_decorator_lines(
            self, groups: List[Tuple[Set[int], int, int]]) -> None:
        """``allow[...]`` on a decorator or ``def`` line covers both."""
        for alias_lines, _start, _end in groups:
            union: Set[str] = set()
            for line in alias_lines:
                union.update(self.line_codes.get(line, ()))
            if union:
                for line in alias_lines:
                    self.line_codes.setdefault(line, set()).update(union)

    def _attach_fn_markers(
            self, groups: List[Tuple[Set[int], int, int]],
            fn_markers: Dict[int, Set[str]]) -> None:
        """Resolve each ``allow-fn`` marker to its function's span.

        The marker belongs to the *innermost* function whose span
        contains it; markers outside any function degrade to line
        scope.
        """
        for lineno, names in sorted(fn_markers.items()):
            best: Optional[Tuple[Set[int], int, int]] = None
            for group in groups:
                alias_lines, start, end = group
                if lineno in alias_lines or start <= lineno <= end:
                    if best is None or (start, -end) > (best[1], -best[2]):
                        best = group
            if best is None:
                self.line_codes.setdefault(lineno, set()).update(names)
            else:
                self.span_codes.append((best[1], best[2], set(names)))

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        if "*" in self.file_codes or diagnostic.code in self.file_codes:
            return True
        at_line = self.line_codes.get(diagnostic.line)
        if at_line is not None and (
                "*" in at_line or diagnostic.code in at_line):
            return True
        for start, end, codes in self.span_codes:
            if (start <= diagnostic.line <= end
                    and ("*" in codes or diagnostic.code in codes)):
                return True
        return False
