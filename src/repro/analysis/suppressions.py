"""Inline suppression comments.

A finding can be silenced at its line or for a whole file:

- ``# repro: allow[DET001]`` on the flagged line suppresses that code
  there; several codes may be listed: ``allow[DET001,RNG002]``.
- ``# repro: allow[*]`` suppresses every code on the line.
- ``# repro: allow-file[RNG002]`` (conventionally near the top of the
  file) suppresses the code file-wide; ``allow-file[*]`` silences the
  whole file.

Suppressions are matched against the *reported* line of a diagnostic,
which for multi-line statements is the line the statement starts on.
The scan is textual, so the marker is recognised even inside a string
literal — do not spell the marker in test data you want linted.
"""

from __future__ import annotations

import re
from typing import Dict, Set

from repro.analysis.diagnostics import Diagnostic

_MARKER = re.compile(r"#\s*repro:\s*(allow|allow-file)\[([^\]]+)\]")


class Suppressions:
    """The suppression markers of one source file."""

    def __init__(self) -> None:
        self.file_codes: Set[str] = set()
        self.line_codes: Dict[int, Set[str]] = {}

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        result = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            for kind, codes in _MARKER.findall(line):
                names = {code.strip() for code in codes.split(",")
                         if code.strip()}
                if kind == "allow-file":
                    result.file_codes.update(names)
                else:
                    result.line_codes.setdefault(lineno, set()).update(names)
        return result

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        if "*" in self.file_codes or diagnostic.code in self.file_codes:
            return True
        at_line = self.line_codes.get(diagnostic.line)
        if at_line is None:
            return False
        return "*" in at_line or diagnostic.code in at_line
