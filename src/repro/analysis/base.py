"""Checker base class, the per-file source bundle, and the registry.

A checker is instantiated once per analysis run.  It sees every
analyzed file through :meth:`Checker.check_file` and may draw
project-wide conclusions in :meth:`Checker.check_project` after the
last file (used by the protocol-completeness pass, which must match
message sends in one module against handlers in another).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Type

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.names import ImportMap


@dataclass
class SourceFile:
    """One parsed module handed to every applicable checker."""

    path: str
    module: str
    source: str
    tree: ast.Module
    imports: ImportMap


def within(module: str, prefix: str) -> bool:
    """True if ``module`` is ``prefix`` or nested inside it."""
    return module == prefix or module.startswith(prefix + ".")


class Checker:
    """Base class for one analysis pass.

    Subclasses set ``name`` (the registry key), ``codes`` (error code
    -> one-line description, the catalogue rendered by
    ``--list-checkers``), and optionally ``scope``: module prefixes the
    checker applies to (empty means every module).  ``exclude`` wins
    over ``scope``; by default the analysis package does not lint
    itself (its tables are full of the very names it hunts for).
    """

    name: str = ""
    codes: Mapping[str, str] = {}
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ("repro.analysis",)

    def applies_to(self, module: str) -> bool:
        if any(within(module, prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(within(module, prefix) for prefix in self.scope)

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        return ()

    def check_project(self) -> Iterable[Diagnostic]:
        return ()

    # -- convenience -------------------------------------------------------

    def at(self, path: str, node: ast.AST, code: str, message: str,
           severity: Severity = Severity.ERROR) -> Diagnostic:
        """Build a diagnostic anchored to ``node``."""
        if code not in self.codes:
            raise ValueError(f"{self.name}: unknown code {code!r}")
        return Diagnostic(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            severity=severity,
            checker=self.name,
        )


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls!r} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> Dict[str, Type[Checker]]:
    """The registry, importing the built-in checker wave on first use."""
    import repro.analysis.checkers  # noqa: F401  (import registers them)

    return dict(sorted(_REGISTRY.items()))
