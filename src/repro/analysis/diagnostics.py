"""Diagnostic records and output rendering.

Every checker finding is a :class:`Diagnostic` anchored to one source
location.  The canonical text form is ``path:line: CODE message`` so
editors and CI annotators can jump straight to the offending line; the
JSON form carries the same fields machine-readably.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings break the reproducibility or protocol contract
    outright.  ``WARNING`` findings are advisory (e.g. dead handlers)
    but still make the CLI exit non-zero so they cannot accumulate
    silently.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    checker: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        tag = "" if self.severity is Severity.ERROR else f" [{self.severity.value}]"
        return f"{self.path}:{self.line}: {self.code} {self.message}{tag}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "checker": self.checker,
        }


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """The one-line-per-finding form consumed by humans and editors."""
    return "\n".join(diag.format() for diag in diagnostics)


def render_json(diagnostics: Iterable[Diagnostic], *,
                files_analyzed: int = 0, suppressed: int = 0) -> str:
    """A stable machine-readable report (``--format=json``)."""
    diags: List[Diagnostic] = list(diagnostics)
    payload: Dict[str, Any] = {
        "version": 1,
        "findings": [diag.to_dict() for diag in diags],
        "summary": {
            "total": len(diags),
            "errors": sum(1 for d in diags if d.severity is Severity.ERROR),
            "warnings": sum(
                1 for d in diags if d.severity is Severity.WARNING),
            "files_analyzed": files_analyzed,
            "suppressed": suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
