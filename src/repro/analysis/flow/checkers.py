"""Interprocedural flow checkers: RACE001, RACE002, FLOW001.

These are project checkers: they accumulate every in-scope file and
run once over the whole program with a :class:`FlowEngine`, because
the hazards they hunt are invisible per file — whether a ``self.*``
attribute can change under a suspended coroutine depends on which
*other* methods write it and whether the kernel can interleave them.

All three report only with interprocedural evidence attached (the
competing write site, the registered handler, the taint path), which
keeps the project sweep quiet on single-owner state.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import CFGNode
from repro.analysis.flow.dataflow import (
    ForwardAnalysis,
    assigned_names,
    solve_forward,
)
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    FunctionNode,
    MUTATOR_METHODS,
    iter_own_nodes,
)

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _self_attr_read(expr: ast.AST) -> Optional[str]:
    """``self.<attr>`` as a plain attribute load, else None."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and isinstance(expr.ctx, ast.Load)):
        return expr.attr
    return None


def _attrs_read_in(expr: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` loaded anywhere inside ``expr``."""
    attrs: Set[str] = set()
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPES):
            continue
        attr = _self_attr_read(node)
        if attr is not None:
            attrs.add(attr)
        stack.extend(ast.iter_child_nodes(node))
    return attrs


class _FlowChecker(Checker):
    """Shared accumulate-then-analyze scaffolding."""

    def __init__(self) -> None:
        self._files: List[SourceFile] = []

    def check_file(self, file: SourceFile) -> Iterable[Diagnostic]:
        self._files.append(file)
        return ()

    def engine(self) -> FlowEngine:
        return FlowEngine(self._files)


# -- RACE001: stale-after-yield ------------------------------------------------

#: Lattice element: (local name, source attribute, "fresh" | "stale").
_Binding = Tuple[str, str, str]
_RaceState = FrozenSet[_Binding]


class _StaleAfterYield(ForwardAnalysis[_RaceState]):
    """Tracks locals snapshotting ``self.*``; yields make them stale."""

    def initial(self, cfg: object) -> _RaceState:
        return frozenset()

    def bottom(self, cfg: object) -> _RaceState:
        return frozenset()

    def join(self, left: _RaceState, right: _RaceState) -> _RaceState:
        return left | right

    def transfer(self, node: CFGNode, state: _RaceState) -> _RaceState:
        if node.stmt is None:
            return state
        result = set(state)
        if node.is_yield:
            # Crossing the interleaving boundary: every cached
            # snapshot may now disagree with the live attribute.
            result = {(var, attr, "stale") for var, attr, _ in result}
        snapshot = _snapshot_binding(node.stmt)
        killed = set(assigned_names(node.stmt))
        if killed:
            result = {entry for entry in result if entry[0] not in killed}
        if snapshot is not None:
            var, attr = snapshot
            result.add((var, attr, "fresh"))
        return frozenset(result)


def _snapshot_binding(stmt: ast.stmt) -> Optional[Tuple[str, str]]:
    """``v = self.attr`` with a single plain Name target."""
    if (isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        attr = _self_attr_read(stmt.value)
        if attr is not None:
            return stmt.targets[0].id, attr
    return None


def _name_loads(stmt: ast.stmt) -> List[ast.Name]:
    """Plain Name loads evaluated by this statement's own expressions."""
    loads: List[ast.Name] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPES):
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.append(node)
        # Compound statements: only their header expressions evaluate
        # at this CFG node; body statements have their own nodes.
        if isinstance(node, (ast.If, ast.While)):
            stack.append(node.test)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            stack.append(node.iter)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            stack.extend(item.context_expr for item in node.items)
        elif isinstance(node, ast.Try):
            continue
        else:
            stack.extend(ast.iter_child_nodes(node))
    return loads


@register
class StaleReadChecker(_FlowChecker):
    """RACE001: a ``self.*`` snapshot read before a yield, used after."""

    name = "flow-stale-read"
    codes = {
        "RACE001": ("local caches shared self.* state across a yield "
                    "point while another method can mutate it"),
    }
    scope = ("repro",)

    def check_project(self) -> Iterable[Diagnostic]:
        engine = self.engine()
        findings: List[Diagnostic] = []
        for cls, method in engine.symbols.generator_methods():
            if not engine.is_interleaving_root(cls, method):
                continue
            findings.extend(self._check_method(engine, cls, method))
        return findings

    def _check_method(self, engine: FlowEngine, cls: ClassInfo,
                      method: FunctionInfo) -> Iterable[Diagnostic]:
        cfg = engine.cfg(method)
        if not cfg.yield_nodes():
            return
        result = solve_forward(cfg, _StaleAfterYield())
        reported: Set[Tuple[str, str, int]] = set()
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            stale = {(var, attr) for var, attr, status in result.at(node)
                     if status == "stale"}
            if not stale:
                continue
            for load in _name_loads(node.stmt):
                for var, attr in sorted(stale):
                    if load.id != var:
                        continue
                    writers = cls.writes_outside(attr, method.name)
                    if not writers:
                        continue
                    key = (var, attr, load.lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    first = writers[0]
                    yield self.at(
                        method.path, load, "RACE001",
                        f"'{var}' caches self.{attr} from before a yield "
                        f"point; {cls.name}.{first.method}() (line "
                        f"{first.line}) can mutate it while this process "
                        f"is suspended — re-read self.{attr} after "
                        f"resuming or take ownership before yielding")


# -- RACE002: check-then-act across a yield ------------------------------------


@register
class CheckThenActChecker(_FlowChecker):
    """RACE002: guard tested before a yield, mutation applied after."""

    name = "flow-check-then-act"
    codes = {
        "RACE002": ("guard condition tested before a yield gates a "
                    "mutation applied after it without re-checking"),
    }
    scope = ("repro",)

    def check_project(self) -> Iterable[Diagnostic]:
        engine = self.engine()
        findings: List[Diagnostic] = []
        for cls, method in engine.symbols.generator_methods():
            if not engine.is_interleaving_root(cls, method):
                continue
            findings.extend(self._check_method(cls, method))
        return findings

    def _check_method(self, cls: ClassInfo,
                      method: FunctionInfo) -> Iterable[Diagnostic]:
        for node in iter_own_nodes(method.node):
            if not isinstance(node, ast.If):
                continue
            guarded = {attr for attr in _attrs_read_in(node.test)
                       if cls.writes_outside(attr, method.name)}
            if not guarded:
                continue
            yield from self._check_branch(cls, method, node.body, guarded)

    def _check_branch(self, cls: ClassInfo, method: FunctionInfo,
                      body: List[ast.stmt],
                      guarded: Set[str]) -> Iterable[Diagnostic]:
        events = _branch_events(body, guarded)
        first_yield: Optional[int] = None
        rechecked: Set[str] = set()
        reported: Set[Tuple[str, int]] = set()
        for line, kind, attr, node in events:
            if kind == "yield":
                if first_yield is None:
                    first_yield = line
                # A later yield re-opens the window for attrs checked
                # only before the earlier one.
                rechecked.clear()
                continue
            if first_yield is None:
                continue
            if kind == "recheck" and attr is not None:
                rechecked.add(attr)
            elif (kind == "write" and attr in guarded
                    and attr not in rechecked and attr is not None):
                key = (attr, line)
                if key in reported:
                    continue
                reported.add(key)
                first = cls.writes_outside(attr, method.name)[0]
                yield self.at(
                    method.path, node, "RACE002",
                    f"self.{attr} was checked before the yield at line "
                    f"{first_yield} but is mutated here without "
                    f"re-checking; {cls.name}.{first.method}() (line "
                    f"{first.line}) can invalidate the guard while "
                    f"this process is suspended")


def _branch_events(
    body: List[ast.stmt], guarded: Set[str],
) -> List[Tuple[int, str, Optional[str], ast.AST]]:
    """(line, kind, attr, node) events inside a guarded branch.

    Kinds: ``yield`` (interleaving boundary), ``recheck`` (a test
    reading the attr), ``write`` (a mutation of the attr).  Sorted by
    source line so check-then-act ordering falls out of iteration.
    """
    events: List[Tuple[int, str, Optional[str], ast.AST]] = []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPES):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            events.append((node.lineno, "yield", None, node))
        elif isinstance(node, (ast.If, ast.While)):
            for attr in _attrs_read_in(node.test):
                events.append((node.lineno, "recheck", attr, node))
        elif isinstance(node, ast.Assert):
            for attr in _attrs_read_in(node.test):
                events.append((node.lineno, "recheck", attr, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                events.extend(_write_events(target, node))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            events.extend(_write_events(node.target, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                events.extend(_write_events(target, node))
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                attr = _self_attr_target(node.func.value)
                if attr is not None:
                    events.append((node.lineno, "write", attr, node))
        stack.extend(ast.iter_child_nodes(node))
    events.sort(key=lambda event: event[0])
    return events


def _self_attr_target(expr: ast.AST) -> Optional[str]:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


def _write_events(
    target: ast.expr, node: ast.stmt,
) -> List[Tuple[int, str, Optional[str], ast.AST]]:
    attr = _self_attr_target(target)
    if attr is None and isinstance(target, ast.Subscript):
        attr = _self_attr_target(target.value)
    if attr is None:
        return []
    return [(node.lineno, "write", attr, node)]


# -- FLOW001: env/RNG handles escaping into global state -----------------------

#: Parameter/attribute names that denote kernel or RNG handles.
SOURCE_NAMES = frozenset({
    "env", "environment", "rng", "streams", "random_streams",
    "_env", "_rng", "_streams",
})

#: Constructor names whose instances are per-run handles.
SOURCE_CONSTRUCTORS = frozenset({"Environment", "RandomStreams"})

#: Methods on a tainted receiver that return another tainted handle.
SOURCE_METHODS = frozenset({"get", "stream", "fork"})


@register
class GlobalHandleChecker(_FlowChecker):
    """FLOW001: Environment/RNG handle stored in module-level state."""

    name = "flow-global-handle"
    codes = {
        "FLOW001": ("Environment or RNG handle flows into module-level "
                    "or global state, outliving its run"),
    }
    scope = ("repro",)

    def check_project(self) -> Iterable[Diagnostic]:
        engine = self.engine()
        summaries = _tainted_returns(engine)
        findings: List[Diagnostic] = []
        for file in self._files:
            findings.extend(self._check_module_scope(engine, file, summaries))
            for qualname in sorted(engine.symbols.by_qualname):
                info = engine.symbols.by_qualname[qualname]
                if info.path != file.path:
                    continue
                findings.extend(
                    self._check_function(engine, file, info, summaries))
        return findings

    def _check_module_scope(
        self, engine: FlowEngine, file: SourceFile,
        summaries: Set[str],
    ) -> Iterable[Diagnostic]:
        taint = _Taint(engine, file, summaries, params=frozenset())
        for stmt in file.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not taint.tainted(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    yield self.at(
                        file.path, stmt, "FLOW001",
                        f"module-level '{target.id}' captures an "
                        f"Environment/RNG handle; per-run handles must "
                        f"stay inside the run that created them")

    def _check_function(
        self, engine: FlowEngine, file: SourceFile, info: FunctionInfo,
        summaries: Set[str],
    ) -> Iterable[Diagnostic]:
        function = info.node
        module_globals = engine.symbols.module_globals.get(file.module, set())
        declared_global: Set[str] = set()
        for node in iter_own_nodes(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        taint = _Taint(engine, file, summaries,
                       params=_source_params(function))
        statements = sorted(
            (node for node in iter_own_nodes(function)
             if isinstance(node, ast.stmt)),
            key=lambda stmt: (stmt.lineno, stmt.col_offset))
        for stmt in statements:
            taint.propagate(stmt)
            yield from self._check_sinks(
                file, info, stmt, taint, declared_global, module_globals)

    def _check_sinks(
        self, file: SourceFile, info: FunctionInfo, stmt: ast.stmt,
        taint: "_Taint", declared_global: Set[str],
        module_globals: Set[str],
    ) -> Iterable[Diagnostic]:
        if isinstance(stmt, ast.Assign) and taint.tainted(stmt.value):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    yield self.at(
                        file.path, stmt, "FLOW001",
                        f"'{target.id}' is declared global in "
                        f"{info.name}() and receives an Environment/RNG "
                        f"handle; the handle outlives its run")
                elif (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_globals):
                    yield self.at(
                        file.path, stmt, "FLOW001",
                        f"module-level container "
                        f"'{target.value.id}' receives an "
                        f"Environment/RNG handle in {info.name}(); "
                        f"the handle outlives its run")
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (isinstance(call.func, ast.Attribute)
                    and call.func.attr in MUTATOR_METHODS
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id in module_globals
                    and any(taint.tainted(arg) for arg in call.args)):
                yield self.at(
                    file.path, stmt, "FLOW001",
                    f"module-level container '{call.func.value.id}' "
                    f"receives an Environment/RNG handle in "
                    f"{info.name}(); the handle outlives its run")


def _source_params(function: FunctionNode) -> FrozenSet[str]:
    args = function.args
    params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return frozenset(param.arg for param in params
                     if param.arg in SOURCE_NAMES)


class _Taint:
    """Straight-line local taint inside one scope."""

    def __init__(self, engine: FlowEngine, file: SourceFile,
                 summaries: Set[str], params: FrozenSet[str]) -> None:
        self.engine = engine
        self.file = file
        self.summaries = summaries
        self.locals: Set[str] = set(params)

    def propagate(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_tainted = self.tainted(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value_tainted:
                        self.locals.add(target.id)
                    else:
                        self.locals.discard(target.id)
        elif (isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and isinstance(stmt.target, ast.Name)):
            if self.tainted(stmt.value):
                self.locals.add(stmt.target.id)
            else:
                self.locals.discard(stmt.target.id)

    def tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.locals or expr.id in SOURCE_NAMES
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if (isinstance(base, ast.Name) and base.id == "self"
                    and expr.attr in SOURCE_NAMES):
                return True
            return False
        if isinstance(expr, ast.Call):
            return self._tainted_call(expr)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self.tainted(element) for element in expr.elts)
        if isinstance(expr, ast.IfExp):
            return self.tainted(expr.body) or self.tainted(expr.orelse)
        return False

    def _tainted_call(self, call: ast.Call) -> bool:
        qualname = self.file.imports.qualname(call.func)
        if qualname is not None:
            tail = qualname.rsplit(".", 1)[-1]
            if tail in SOURCE_CONSTRUCTORS:
                return True
        if isinstance(call.func, ast.Name):
            if call.func.id in SOURCE_CONSTRUCTORS:
                return True
            target = self.engine.symbols.resolve_call(
                self.file.module, call.func.id)
            if target is not None and target.qualname in self.summaries:
                return True
        if isinstance(call.func, ast.Attribute):
            if (call.func.attr in SOURCE_METHODS
                    and self.tainted(call.func.value)):
                return True
        return False


def _tainted_returns(engine: FlowEngine) -> Set[str]:
    """Qualnames of functions whose return value is a tainted handle.

    Iterated to fixpoint so ``make_env() -> wrap() -> Environment()``
    chains resolve through any call depth.
    """
    summaries: Set[str] = set()
    files = {file.path: file for file in engine.files}
    changed = True
    while changed:
        changed = False
        for qualname in sorted(engine.symbols.by_qualname):
            if qualname in summaries:
                continue
            info = engine.symbols.by_qualname[qualname]
            file = files.get(info.path)
            if file is None:
                continue
            taint = _Taint(engine, file, summaries,
                           params=_source_params(info.node))
            for node in iter_own_nodes(info.node):
                if (isinstance(node, ast.Return)
                        and node.value is not None
                        and taint.tainted(node.value)):
                    summaries.add(qualname)
                    changed = True
                    break
    return summaries
