"""Project call graph, including simulator-specific edge kinds.

Besides ordinary direct calls, two edge kinds matter for a discrete
event simulator and would be missed by a vanilla resolver:

* **process edges** — ``env.process(self._loop(...))`` (or
  ``environment.process`` / ``self.env.process``) makes ``_loop`` a
  concurrently scheduled coroutine; it is the root of an interleaving,
  not a plain call;
* **rpc edges** — ``endpoint.on("kind", self._handler)`` registers a
  handler, and every ``endpoint.call("kind", ...)`` /
  ``endpoint.cast("kind", ...)`` site becomes an edge to each handler
  registered for that kind, project-wide.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.names import dotted_parts
from repro.analysis.flow.symbols import (
    FunctionInfo,
    SymbolTable,
    iter_own_nodes,
)

#: Receiver names that denote the simulation kernel handle.
ENV_NAMES = frozenset({"env", "environment"})

#: ``endpoint.<method>(dst, "kind", ...)`` send methods: the message
#: kind is the second positional argument (after the destination).
SEND_METHODS = {"call": 1, "cast": 1}


@dataclass(frozen=True)
class CallEdge:
    """One resolved edge in the call graph."""

    caller: str
    callee: str
    kind: str  # "call" | "process" | "rpc"
    line: int


@dataclass
class CallGraph:
    """All resolved edges plus the process-target and handler indexes."""

    edges: List[CallEdge] = field(default_factory=list)
    #: qualnames of functions spawned as kernel processes.
    process_targets: Set[str] = field(default_factory=set)
    #: message kind -> handler qualnames registered for it.
    handlers: Dict[str, Set[str]] = field(default_factory=dict)
    _out: Dict[str, List[CallEdge]] = field(default_factory=dict)
    _in: Dict[str, List[CallEdge]] = field(default_factory=dict)

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)
        if edge.kind == "process":
            self.process_targets.add(edge.callee)

    def callees(self, qualname: str) -> List[CallEdge]:
        return list(self._out.get(qualname, []))

    def callers(self, qualname: str) -> List[CallEdge]:
        return list(self._in.get(qualname, []))

    def reachable_from(self, qualname: str) -> Set[str]:
        """Transitive callee closure (including the root)."""
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._out.get(current, []):
                stack.append(edge.callee)
        return seen

    def is_process_root(self, qualname: str) -> bool:
        return qualname in self.process_targets


def _receiver_tail(call: ast.Call) -> Optional[str]:
    """Last dotted component of the call receiver, if any."""
    if not isinstance(call.func, ast.Attribute):
        return None
    parts = dotted_parts(call.func.value)
    return parts[-1] if parts else None


def _callee_name(node: ast.expr) -> Optional[str]:
    """Bare callee name of a Name or ``self.method`` expression."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call site of every indexed function."""
    graph = CallGraph()
    sends: List[CallEdge] = []  # provisional kind-keyed send sites

    for qualname in sorted(table.by_qualname):
        caller = table.by_qualname[qualname]
        for node in iter_own_nodes(caller.node):
            if not isinstance(node, ast.Call):
                continue
            _resolve_call_site(table, graph, sends, caller, node)

    # Stitch rpc edges: each send site fans out to every handler
    # registered for its kind anywhere in the project.
    for send in sends:
        for handler in sorted(graph.handlers.get(send.callee, ())):
            graph.add(CallEdge(caller=send.caller, callee=handler,
                               kind="rpc", line=send.line))
    return graph


def _resolve_call_site(table: SymbolTable, graph: CallGraph,
                       sends: List[CallEdge], caller: FunctionInfo,
                       node: ast.Call) -> None:
    line = node.lineno
    receiver = _receiver_tail(node)
    attr = node.func.attr if isinstance(node.func, ast.Attribute) else None

    # env.process(self._loop(...)) — process-spawn edge.
    if receiver in ENV_NAMES and attr == "process" and node.args:
        inner = node.args[0]
        if isinstance(inner, ast.Call):
            name = _callee_name(inner.func)
            target = table.resolve_call(caller.module, name,
                                        caller.class_name) if name else None
            if target is not None:
                graph.add(CallEdge(caller=caller.qualname,
                                   callee=target.qualname,
                                   kind="process", line=line))
        return

    # endpoint.on("kind", self._handler) — handler registration.
    if (receiver is not None and receiver.endswith("endpoint")
            and attr == "on" and len(node.args) >= 2
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        handler_name = _callee_name(node.args[1])
        target = table.resolve_call(caller.module, handler_name,
                                    caller.class_name) if handler_name else None
        if target is not None:
            graph.handlers.setdefault(
                node.args[0].value, set()).add(target.qualname)
        return

    # endpoint.call/cast("kind", ...) — rpc send site (stitched later).
    if (receiver is not None and receiver.endswith("endpoint")
            and attr in SEND_METHODS):
        kind_index = SEND_METHODS[attr]
        if (len(node.args) > kind_index
                and isinstance(node.args[kind_index], ast.Constant)):
            kind = node.args[kind_index].value
            if isinstance(kind, str):
                sends.append(CallEdge(caller=caller.qualname, callee=kind,
                                      kind="rpc", line=line))
        return

    # Plain direct call: bare name or self.method.
    name = _callee_name(node.func)
    if name is None:
        return
    target = table.resolve_call(caller.module, name, caller.class_name)
    if target is not None:
        graph.add(CallEdge(caller=caller.qualname, callee=target.qualname,
                           kind="call", line=line))
