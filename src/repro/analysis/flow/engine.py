"""The whole-program analysis engine.

A :class:`FlowEngine` is built once per project sweep from the parsed
:class:`~repro.analysis.base.SourceFile` set, and gives the flow
checkers a shared symbol table, call graph, and CFG cache.  Building
is cheap relative to parsing (one extra pass per file), so project
checkers that need it construct it on demand in ``check_project``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.base import SourceFile
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.symbols import ClassInfo, FunctionInfo, SymbolTable


class FlowEngine:
    """Symbol table + call graph + CFG cache over one file set."""

    def __init__(self, files: Iterable[SourceFile]) -> None:
        self.files: List[SourceFile] = list(files)
        self.symbols = SymbolTable()
        for file in self.files:
            self.symbols.add_file(file)
        self.callgraph: CallGraph = build_call_graph(self.symbols)
        self._cfgs: Dict[str, CFG] = {}

    def cfg(self, function: FunctionInfo) -> CFG:
        """The (cached) control-flow graph of one function."""
        cached = self._cfgs.get(function.qualname)
        if cached is None:
            cached = build_cfg(function.node)
            self._cfgs[function.qualname] = cached
        return cached

    def file_for(self, function: FunctionInfo) -> Optional[SourceFile]:
        for file in self.files:
            if file.path == function.path:
                return file
        return None

    def is_interleaving_root(self, cls: ClassInfo,
                             function: FunctionInfo) -> bool:
        """May the kernel interleave other work while this runs?

        True when the function is spawned as a kernel process
        (directly, or transitively reachable from one) or belongs to a
        class that registers RPC handlers — both mean other handlers
        and processes can run at each of its yield points.
        """
        if self.callgraph.is_process_root(function.qualname):
            return True
        if cls.handler_kinds:
            return True
        for target in self.callgraph.process_targets:
            if function.qualname in self.callgraph.reachable_from(target):
                return True
        return False
