"""Whole-program dataflow engine for the repro static analysis.

The per-file checkers of :mod:`repro.analysis.checkers` are syntactic:
they judge one AST at a time.  This package adds the project-wide
machinery an *interleaving-sensitive* analysis needs:

* :mod:`~repro.analysis.flow.symbols` — a project-wide symbol table:
  every class, function, and method, plus an index of which methods
  mutate which ``self.*`` attribute (the interprocedural evidence the
  race rules rest on);
* :mod:`~repro.analysis.flow.callgraph` — the call graph, including
  the two edge kinds a simulator grows that a vanilla resolver misses:
  ``env.process(self._loop(...))`` process-spawn edges and
  ``endpoint.on("kind", self._handler)`` RPC-registration edges
  stitched to their ``call``/``cast`` send sites;
* :mod:`~repro.analysis.flow.cfg` — per-function control-flow graphs
  with every ``yield``/``await`` marked as an **interleaving
  boundary**: the kernel may run arbitrary other handlers while a
  process is suspended there;
* :mod:`~repro.analysis.flow.dataflow` — a forward worklist framework
  (reaching definitions, the stale-after-yield lattice, taint);
* :mod:`~repro.analysis.flow.checkers` — the RACE001/RACE002/FLOW001
  rules built on top (registered with the normal checker registry).

See ``docs/analysis.md`` ("The flow engine") for the rule catalogue
and the static-finding -> dynamic-witness workflow with
:class:`repro.check.AtomicityGuard`.
"""

from repro.analysis.flow.callgraph import CallEdge, CallGraph, build_call_graph
from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.flow.dataflow import (
    DataflowResult,
    ForwardAnalysis,
    ReachingDefinitions,
    solve_forward,
)
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.symbols import (
    AttributeWrite,
    ClassInfo,
    FunctionInfo,
    SymbolTable,
)

__all__ = [
    "AttributeWrite",
    "CFG",
    "CFGNode",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "DataflowResult",
    "FlowEngine",
    "ForwardAnalysis",
    "FunctionInfo",
    "ReachingDefinitions",
    "SymbolTable",
    "build_call_graph",
    "build_cfg",
    "solve_forward",
]
