"""Per-function control-flow graphs with interleaving boundaries.

Nodes are statements (plus synthetic entry/exit).  A node whose
statement *evaluates* a ``yield``, ``yield from``, or ``await`` in the
function's own frame is flagged ``is_yield`` — at that point the
simulation kernel may run arbitrary other processes and handlers, so
any shared state read earlier may be stale afterwards.

Edges are conservative where Python's dynamic control flow makes
precision expensive:

* every statement inside a ``try`` body gets an edge to each handler
  head (any statement may raise);
* ``finally`` bodies are linked both on the normal path and from the
  try/handler bodies;
* ``break``/``continue`` resolve through an explicit loop-context
  stack; loops carry a back-edge from the body tail to the header and
  a fall-through edge to ``orelse``/exit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_YIELDING = (ast.Yield, ast.YieldFrom, ast.Await)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _any_yield(roots: Sequence[ast.AST]) -> bool:
    stack: List[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(node, _YIELDING):
            return True
        if isinstance(node, _SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _stmt_yields(stmt: ast.stmt) -> bool:
    """Does evaluating *this node itself* suspend the frame?

    For compound statements only the header expressions count — body
    statements get their own CFG nodes.  ``async for``/``async with``
    headers always suspend (``__anext__``/``__aenter__`` are awaited).
    """
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        return True
    if isinstance(stmt, (ast.While, ast.If)):
        return _any_yield([stmt.test])
    if isinstance(stmt, ast.For):
        return _any_yield([stmt.iter])
    if isinstance(stmt, ast.With):
        return _any_yield([item.context_expr for item in stmt.items])
    if isinstance(stmt, ast.Try):
        return False
    return _any_yield([stmt])


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit) in a function's CFG."""

    index: int
    stmt: Optional[ast.stmt]
    is_yield: bool = False
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    @property
    def label(self) -> str:
        if self.stmt is None:
            return "entry" if self.index == 0 else "exit"
        name = type(self.stmt).__name__
        return f"{name}@{self.line}" + ("!yield" if self.is_yield else "")


@dataclass
class CFG:
    """Control-flow graph of one function."""

    function: FunctionNode
    nodes: List[CFGNode]

    ENTRY = 0
    EXIT = 1

    @property
    def entry(self) -> CFGNode:
        return self.nodes[self.ENTRY]

    @property
    def exit(self) -> CFGNode:
        return self.nodes[self.EXIT]

    def yield_nodes(self) -> List[CFGNode]:
        return [node for node in self.nodes if node.is_yield]

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry (deterministic)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(self.ENTRY, 0)]
        while stack:
            index, child = stack[-1]
            if index not in seen:
                seen.add(index)
            succs = self.nodes[index].succs
            if child < len(succs):
                stack[-1] = (index, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(index)
        order.reverse()
        return order


class _Builder:
    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.nodes: List[CFGNode] = [
            CFGNode(index=CFG.ENTRY, stmt=None),
            CFGNode(index=CFG.EXIT, stmt=None),
        ]
        # (header index, after-loop frontier) for break/continue.
        self.loops: List[Tuple[int, List[int]]] = []
        # Handler/finally heads active for the statements being built:
        # any statement inside the try body may raise into them.
        self.raise_targets: List[List[int]] = []

    def add_node(self, stmt: ast.stmt) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt,
                       is_yield=_stmt_yields(stmt))
        self.nodes.append(node)
        for targets in self.raise_targets:
            for target in targets:
                self.link(node.index, target)
        return node.index

    def link(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def link_all(self, srcs: Sequence[int], dst: int) -> None:
        for src in srcs:
            self.link(src, dst)

    def build(self) -> CFG:
        frontier = self.block(self.function.body, [CFG.ENTRY])
        self.link_all(frontier, CFG.EXIT)
        return CFG(function=self.function, nodes=self.nodes)

    def block(self, stmts: Sequence[ast.stmt],
              frontier: List[int]) -> List[int]:
        """Wire a statement sequence; return the live out-frontier."""
        for stmt in stmts:
            if not frontier:
                break
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(self, stmt: ast.stmt,
                  frontier: List[int]) -> List[int]:
        if isinstance(stmt, (ast.If,)):
            return self.if_stmt(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self.loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self.try_stmt(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            index = self.add_node(stmt)
            self.link_all(frontier, index)
            return self.block(stmt.body, [index])

        index = self.add_node(stmt)
        self.link_all(frontier, index)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.link(index, CFG.EXIT)
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1][1].append(index)
                return []
            return [index]
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.link(index, self.loops[-1][0])
                return []
            return [index]
        return [index]

    def if_stmt(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        test = self.add_node(stmt)
        self.link_all(frontier, test)
        out = self.block(stmt.body, [test])
        if stmt.orelse:
            out += self.block(stmt.orelse, [test])
        else:
            out.append(test)
        return out

    def loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
             frontier: List[int]) -> List[int]:
        header = self.add_node(stmt)
        self.link_all(frontier, header)
        after: List[int] = []
        self.loops.append((header, after))
        body_out = self.block(stmt.body, [header])
        self.loops.pop()
        self.link_all(body_out, header)  # back-edge
        out = list(after)
        if stmt.orelse:
            out += self.block(stmt.orelse, [header])
        else:
            out.append(header)
        return out

    def try_stmt(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        handler_heads: List[int] = []
        handler_outs: List[int] = []
        # Pre-build handler head nodes so try-body statements can raise
        # into them; bodies are wired after the try body.
        pending: List[Tuple[ast.ExceptHandler, int]] = []
        for handler in stmt.handlers:
            head = CFGNode(index=len(self.nodes), stmt=handler_stmt(handler),
                           is_yield=False)
            self.nodes.append(head)
            handler_heads.append(head.index)
            pending.append((handler, head.index))

        self.raise_targets.append(list(handler_heads))
        body_out = self.block(stmt.body, list(frontier))
        self.raise_targets.pop()

        for handler, head in pending:
            handler_outs += self.block(handler.body, [head])

        body_out += self.block(stmt.orelse, body_out) if stmt.orelse else []
        merged = body_out + handler_outs
        if stmt.finalbody:
            # The finally runs on every path out of the try: normal,
            # handled, and (approximately) raising mid-body.  Link every
            # try-body node to the finally head for the raising paths.
            finally_head = len(self.nodes)
            out = self.block(stmt.finalbody, merged or list(frontier))
            if len(self.nodes) > finally_head:
                head_index = finally_head
                for node in self.nodes:
                    if (node.stmt is not None
                            and node.index < head_index
                            and self._inside(stmt, node.stmt)):
                        self.link(node.index, head_index)
            return out
        return merged

    @staticmethod
    def _inside(container: ast.Try, stmt: ast.stmt) -> bool:
        for child in ast.walk(container):
            if child is stmt:
                return True
        return False


def handler_stmt(handler: ast.ExceptHandler) -> ast.stmt:
    """A placeholder statement carrying the handler's location."""
    placeholder = ast.Pass()
    placeholder.lineno = handler.lineno
    placeholder.col_offset = handler.col_offset
    return placeholder


def build_cfg(function: FunctionNode) -> CFG:
    """Build the control-flow graph for one function definition."""
    return _Builder(function).build()
