"""Forward dataflow framework over :mod:`repro.analysis.flow.cfg`.

A :class:`ForwardAnalysis` supplies the lattice (initial value, join,
transfer); :func:`solve_forward` iterates a worklist in reverse
postorder until fixpoint and reports the iteration count so tests can
pin convergence behaviour on loops and recursion fixtures.

Two analyses ship here:

* :class:`ReachingDefinitions` — classic may-reach sets of
  ``(name, line)`` definition sites;
* the stale-after-yield lattice used by RACE001 lives in
  :mod:`repro.analysis.flow.checkers`; it reuses this solver.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Generic, List, Tuple, TypeVar

from repro.analysis.flow.cfg import CFG, CFGNode

L = TypeVar("L")


class ForwardAnalysis(Generic[L]):
    """Lattice + transfer function for a forward may-analysis."""

    def initial(self, cfg: CFG) -> L:
        """Value entering the function (state at the entry node)."""
        raise NotImplementedError

    def bottom(self, cfg: CFG) -> L:
        """Identity of ``join`` — the state of an unvisited node."""
        raise NotImplementedError

    def join(self, left: L, right: L) -> L:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: L) -> L:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[L]):
    """Per-node in/out states plus solver telemetry."""

    cfg: CFG
    in_states: Dict[int, L]
    out_states: Dict[int, L]
    iterations: int

    def at(self, node: CFGNode) -> L:
        return self.in_states[node.index]


def solve_forward(cfg: CFG, analysis: ForwardAnalysis[L],
                  max_iterations: int = 10_000) -> DataflowResult[L]:
    """Iterate to fixpoint in deterministic reverse postorder."""
    order = cfg.rpo()
    position = {index: rank for rank, index in enumerate(order)}
    in_states: Dict[int, L] = {
        index: analysis.bottom(cfg) for index in range(len(cfg.nodes))}
    out_states: Dict[int, L] = {
        index: analysis.bottom(cfg) for index in range(len(cfg.nodes))}
    in_states[CFG.ENTRY] = analysis.initial(cfg)

    worklist = list(order)
    queued = set(worklist)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow failed to converge after {max_iterations} steps")
        index = worklist.pop(0)
        queued.discard(index)
        node = cfg.nodes[index]
        state = in_states[index]
        for pred in node.preds:
            state = analysis.join(state, out_states[pred])
        in_states[index] = state
        new_out = analysis.transfer(node, state)
        if new_out != out_states[index]:
            out_states[index] = new_out
            for succ in node.succs:
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
            worklist.sort(key=lambda i: position.get(i, len(position)))
    return DataflowResult(cfg=cfg, in_states=in_states,
                          out_states=out_states, iterations=iterations)


# -- reaching definitions ----------------------------------------------------

Definition = Tuple[str, int]
DefSet = FrozenSet[Definition]


def assigned_names(stmt: ast.stmt) -> List[str]:
    """Local names (re)bound by this statement."""
    names: List[str] = []

    def targets_of(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                targets_of(element)
        elif isinstance(target, ast.Starred):
            targets_of(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets_of(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets_of(item.optional_vars)
    return names


class ReachingDefinitions(ForwardAnalysis[DefSet]):
    """May-reach sets of ``(name, definition line)`` pairs.

    Parameters count as definitions at the ``def`` line.
    """

    def initial(self, cfg: CFG) -> DefSet:
        args = cfg.function.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        line = cfg.function.lineno
        return frozenset((param.arg, line) for param in params)

    def bottom(self, cfg: CFG) -> DefSet:
        return frozenset()

    def join(self, left: DefSet, right: DefSet) -> DefSet:
        return left | right

    def transfer(self, node: CFGNode, state: DefSet) -> DefSet:
        if node.stmt is None:
            return state
        killed = set(assigned_names(node.stmt))
        if not killed:
            return state
        survivors = {d for d in state if d[0] not in killed}
        survivors.update((name, node.line) for name in killed)
        return frozenset(survivors)
