"""Project-wide symbol table.

One :class:`SymbolTable` accumulates every analyzed file and answers
the questions the interprocedural rules ask: which functions exist
(by qualified and bare name), which class does a method belong to,
which methods *write* which ``self.*`` attribute, and which names a
module binds at module scope.

Qualified names follow the runtime convention:
``repro.mdcc.coordinator.TransactionManager._run`` for a method,
``repro.check.runner.run_check`` for a module-level function.  Nested
functions are named through their parents
(``module.outer.<locals>.inner``) but are not indexed by bare name —
they are unreachable from other modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.base import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names on a ``self.attr`` receiver that mutate the attribute
#: in place.  Used as interprocedural mutation evidence: a reader in
#: one coroutine and any of these in another method is a potential
#: interleaved write.
MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "extend", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def iter_own_nodes(function: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's body without entering nested defs/lambdas."""
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator(function: FunctionNode) -> bool:
    """True if the function's own body contains a yield (or await)."""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await))
               for node in iter_own_nodes(function))


@dataclass(frozen=True)
class AttributeWrite:
    """One mutation of ``self.<attr>`` inside a method.

    ``kind`` distinguishes rebinding (``assign``/``augassign``/
    ``delete``), container stores (``setitem``), and in-place mutator
    calls (``mutate``, e.g. ``self.queue.append(...)``).
    """

    attr: str
    method: str
    line: int
    kind: str


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    module: str
    path: str
    node: FunctionNode
    class_name: Optional[str] = None
    is_generator: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition plus its per-attribute write index."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> every method-side write site, in source order.
    attr_writes: Dict[str, List[AttributeWrite]] = field(default_factory=dict)
    #: message kinds this class registers RPC handlers for
    #: (``endpoint.on("kind", self._handler)`` anywhere in a method).
    handler_kinds: Set[str] = field(default_factory=set)

    def writes_outside(self, attr: str,
                       *methods: str) -> List[AttributeWrite]:
        """Writes to ``attr`` in methods other than the named ones.

        ``__init__``/``__post_init__`` are always excluded: they run
        before any process of the instance is scheduled, so their
        writes cannot interleave with a yield.
        """
        excluded = set(methods) | {"__init__", "__post_init__"}
        return [write for write in self.attr_writes.get(attr, [])
                if write.method not in excluded]


def _self_attr_writes(method: FunctionNode) -> List[AttributeWrite]:
    """All ``self.<attr>`` mutations in one method's own body."""
    writes: List[AttributeWrite] = []

    def note(attr: str, node: ast.AST, kind: str) -> None:
        writes.append(AttributeWrite(attr=attr, method=method.name,
                                     line=getattr(node, "lineno", 0),
                                     kind=kind))

    def self_attr(expr: ast.AST) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return expr.attr
        return None

    for node in iter_own_nodes(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self_attr(target)
                if attr is not None:
                    note(attr, node, "assign")
                elif isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                    if attr is not None:
                        note(attr, node, "setitem")
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
            attr = self_attr(target)
            if attr is not None:
                note(attr, node,
                     "augassign" if isinstance(node, ast.AugAssign)
                     else "assign")
            elif isinstance(target, ast.Subscript):
                attr = self_attr(target.value)
                if attr is not None:
                    note(attr, node, "setitem")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = self_attr(target)
                if attr is not None:
                    note(attr, node, "delete")
                elif isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                    if attr is not None:
                        note(attr, node, "setitem")
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                attr = self_attr(node.func.value)
                if attr is not None:
                    note(attr, node, "mutate")
    writes.sort(key=lambda write: (write.line, write.attr))
    return writes


def _handler_kinds(method: FunctionNode) -> Set[str]:
    """Message kinds registered via ``*endpoint.on("kind", ...)``."""
    kinds: Set[str] = set()
    for node in iter_own_nodes(method):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "on"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            kinds.add(node.args[0].value)
    return kinds


class SymbolTable:
    """Everything the project defines, indexed for the flow rules."""

    def __init__(self) -> None:
        #: bare function/method name -> all definitions with that name.
        self.functions: Dict[str, List[FunctionInfo]] = {}
        #: fully qualified name -> definition.
        self.by_qualname: Dict[str, FunctionInfo] = {}
        #: bare class name -> all definitions with that name.
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: module -> names bound at module scope (assignments and
        #: ``global``-declared rebinding targets; the FLOW sinks).
        self.module_globals: Dict[str, Set[str]] = {}
        #: modules already added (guards against double registration).
        self._seen_modules: Set[str] = set()

    # -- construction ------------------------------------------------------

    def add_file(self, file: SourceFile) -> None:
        """Index one parsed module."""
        if file.module in self._seen_modules:
            return
        self._seen_modules.add(file.module)
        bound = self.module_globals.setdefault(file.module, set())
        for stmt in file.tree.body:
            self._collect_module_binding(stmt, bound)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(file, stmt, class_info=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(file, stmt)

    @staticmethod
    def _collect_module_binding(stmt: ast.stmt, bound: Set[str]) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)

    def _add_class(self, file: SourceFile, node: ast.ClassDef) -> None:
        info = ClassInfo(qualname=f"{file.module}.{node.name}",
                         name=node.name, module=file.module,
                         path=file.path, node=node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(file, stmt, class_info=info)
                info.methods[method.name] = method
                for write in _self_attr_writes(stmt):
                    info.attr_writes.setdefault(write.attr, []).append(write)
                info.handler_kinds.update(_handler_kinds(stmt))
        self.classes.setdefault(node.name, []).append(info)

    def _add_function(self, file: SourceFile, node: FunctionNode,
                      class_info: Optional[ClassInfo]) -> FunctionInfo:
        if class_info is not None:
            qualname = f"{class_info.qualname}.{node.name}"
            class_name: Optional[str] = class_info.name
        else:
            qualname = f"{file.module}.{node.name}"
            class_name = None
        info = FunctionInfo(qualname=qualname, name=node.name,
                            module=file.module, path=file.path, node=node,
                            class_name=class_name,
                            is_generator=is_generator(node))
        self.functions.setdefault(node.name, []).append(info)
        self.by_qualname[qualname] = info
        return info

    # -- queries ------------------------------------------------------------

    def method(self, class_name: str, method_name: str) -> Optional[FunctionInfo]:
        """The first definition of ``ClassName.method`` in the project."""
        for info in self.classes.get(class_name, []):
            method = info.methods.get(method_name)
            if method is not None:
                return method
        return None

    def resolve_call(self, module: str, callee: str,
                     class_name: Optional[str] = None) -> Optional[FunctionInfo]:
        """Best-effort resolution of a bare callee name at a call site.

        Prefers a method of the caller's own class, then a function in
        the caller's module, then a unique project-wide match.
        """
        if class_name is not None:
            method = self.method(class_name, callee)
            if method is not None:
                return method
        candidates = self.functions.get(callee, [])
        same_module = [info for info in candidates if info.module == module
                       and info.class_name is None]
        if same_module:
            return same_module[0]
        free = [info for info in candidates if info.class_name is None]
        if len(free) == 1:
            return free[0]
        return None

    def generator_methods(self) -> List[Tuple[ClassInfo, FunctionInfo]]:
        """Every generator method, in deterministic order."""
        pairs: List[Tuple[ClassInfo, FunctionInfo]] = []
        for name in sorted(self.classes):
            for info in self.classes[name]:
                for method_name in sorted(info.methods):
                    method = info.methods[method_name]
                    if method.is_generator:
                        pairs.append((info, method))
        return pairs
