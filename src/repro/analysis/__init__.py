"""AST-based static analysis for the repro codebase.

The simulator's reproducibility contract — same seeds, byte-identical
traces — and the MDCC protocol's invariants are enforced *statically*
here, before a single simulation tick runs: a registry of AST checkers
scans the tree for wall-clock reads, global RNG state, hash-order
iteration, broken sim-process discipline, and unhandled message kinds.

Run ``python -m repro.analysis src`` from the repository root; see
``docs/analysis.md`` for the checker catalogue, error-code rationale,
and suppression syntax.
"""

from repro.analysis.base import (
    Checker,
    SourceFile,
    all_checkers,
    register,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.runner import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_name_for,
)
from repro.analysis.suppressions import Suppressions

__all__ = [
    "AnalysisReport",
    "Checker",
    "Diagnostic",
    "Severity",
    "SourceFile",
    "Suppressions",
    "all_checkers",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "module_name_for",
    "register",
    "render_json",
    "render_text",
]
