"""SARIF 2.1.0 output (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the lingua
franca of code-scanning UIs: GitHub's code-scanning upload, VS Code's
SARIF viewer, and most CI annotators consume it directly.  One run of
the analyzer becomes one ``run`` object whose ``tool.driver`` carries
the full rule catalogue (so viewers can show rule help without a
result present) and whose ``results`` list the surviving diagnostics.

The output is deterministic: rules sort by id, results keep the
runner's ``sort_key`` order, and the JSON serializes with sorted keys —
two identical analyses produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.analysis.base import all_checkers
from repro.analysis.diagnostics import Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: ``Severity`` -> SARIF ``level``.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_catalogue() -> List[Dict[str, Any]]:
    """Every registered code as a SARIF ``reportingDescriptor``."""
    rules: Dict[str, Dict[str, Any]] = {}
    for checker_name, cls in all_checkers().items():
        for code, description in cls.codes.items():
            rules[code] = {
                "id": code,
                "shortDescription": {"text": description},
                "properties": {"checker": checker_name},
            }
    # The runner's own parse-failure pseudo-rule.
    rules["PARSE"] = {
        "id": "PARSE",
        "shortDescription": {"text": "file could not be parsed"},
        "properties": {"checker": "runner"},
    }
    return [rules[code] for code in sorted(rules)]


def _result(diagnostic: Diagnostic, rule_index: Dict[str, int]
            ) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": diagnostic.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": diagnostic.line,
                    # SARIF columns are 1-based; ours are 0-based.
                    "startColumn": diagnostic.col + 1,
                },
            },
        }],
    }
    if diagnostic.code in rule_index:
        entry["ruleIndex"] = rule_index[diagnostic.code]
    return entry


def render_sarif(diagnostics: Iterable[Diagnostic], *,
                 files_analyzed: int = 0, suppressed: int = 0) -> str:
    """The full SARIF log for one analysis run, as a JSON string."""
    rules = _rule_catalogue()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    log: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "rules": rules,
                },
            },
            "results": [_result(diag, rule_index) for diag in diagnostics],
            "properties": {
                "filesAnalyzed": files_analyzed,
                "suppressed": suppressed,
            },
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
