"""Measurement plumbing: timing, RSS, report files, regression compare.

Kept separate from the benchmark bodies (:mod:`repro.perf.benches`) so
the compare logic can be unit-tested against hand-built reports
without running a single benchmark.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1


def best_of(fn: Callable[[], float], repeats: int) -> float:
    """Minimum of ``repeats`` timed runs — the least-noise estimator
    for a deterministic workload on a busy machine."""
    return min(fn() for _ in range(max(1, repeats)))


def timed(fn: Callable[[], object]) -> float:
    """Wall seconds one call of ``fn`` takes."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class Regression:
    """One benchmark that got worse than the allowed threshold."""

    bench: str
    metric: str
    baseline: float
    current: float
    change_pct: float

    def format(self) -> str:
        return (f"{self.bench}: {self.metric} regressed "
                f"{self.change_pct:+.1f}% "
                f"({self.baseline:.6g} -> {self.current:.6g})")


def build_report(results: Dict[str, Dict[str, float]],
                 scores: Dict[str, Tuple[str, bool, str]],
                 scale: float, pool: int,
                 effective_pool: Optional[int] = None,
                 reference: Optional[Dict[str, object]] = None) -> dict:
    """Assemble the JSON document ``BENCH_kernel.json`` holds.

    ``scores`` maps bench name to ``(metric_key, higher_is_better,
    unit)`` — the compare mode judges exactly that metric per bench.
    ``effective_pool`` is the worker count after capping the requested
    pool at the CPU-affinity mask — recorded so a report can never
    again silently claim a 4-wide pool on a 1-CPU container.
    """
    report = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpus": _cpu_count(),
        "affinity_cpus": _affinity_cpus(),
        "scale": scale,
        "pool": pool,
        "effective_pool": (effective_pool if effective_pool is not None
                           else pool),
        "benchmarks": {
            name: {
                "metrics": metrics,
                "score_metric": scores[name][0],
                "higher_is_better": scores[name][1],
                "unit": scores[name][2],
            }
            for name, metrics in sorted(results.items())
        },
    }
    if reference is not None:
        report["reference"] = reference
    return report


def _cpu_count() -> int:
    import os

    return os.cpu_count() or 1


def _affinity_cpus() -> int:
    from repro.harness.parallel import effective_cpu_count

    return effective_cpu_count()


def write_report(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_reports(current: dict, baseline: dict,
                    threshold_pct: float = 25.0) -> List[Regression]:
    """Regressions of ``current`` against ``baseline``.

    Only benchmarks present in both reports are judged, each on its
    declared score metric.  ``change_pct`` is signed so that negative
    is always *worse* — a drop for higher-is-better throughputs, a
    rise for lower-is-better wall times — and a regression is reported
    when the loss exceeds ``threshold_pct``.
    """
    regressions: List[Regression] = []
    base_benches = baseline.get("benchmarks", {})
    for name, entry in current.get("benchmarks", {}).items():
        base = base_benches.get(name)
        if base is None:
            continue
        metric = entry.get("score_metric")
        higher = bool(entry.get("higher_is_better", True))
        now = entry.get("metrics", {}).get(metric)
        then = base.get("metrics", {}).get(metric)
        if now is None or then is None or then <= 0:
            continue
        if higher:
            change_pct = (now - then) / then * 100.0
        else:
            change_pct = (then - now) / now * 100.0 if now > 0 else 0.0
        if change_pct < -threshold_pct:
            regressions.append(Regression(
                bench=name, metric=metric, baseline=then, current=now,
                change_pct=change_pct))
    return regressions


def format_report(report: dict) -> str:
    """Human-readable rendering of one report (the CLI's output)."""
    lines = [
        f"repro.perf  python {report.get('python')}  "
        f"cpus={report.get('cpus')}  "
        f"affinity={report.get('affinity_cpus', report.get('cpus'))}  "
        f"scale={report.get('scale')}  "
        f"pool={report.get('pool')}"
        f" (effective {report.get('effective_pool', report.get('pool'))})"
    ]
    for name, entry in report.get("benchmarks", {}).items():
        metric = entry.get("score_metric")
        value = entry.get("metrics", {}).get(metric)
        unit = entry.get("unit", "")
        lines.append(f"  {name:<10} {value:>14,.1f} {unit}")
        for key, val in sorted(entry.get("metrics", {}).items()):
            if key != metric:
                lines.append(f"    {key:<24} {val:,.4f}")
    return "\n".join(lines)
