"""The benchmark bodies: micro (kernel, transport), macro (figure),
and fan-out (serial-vs-parallel sweep).

Every bench is a pure function of ``(scale, pool)`` built entirely
from seeded components, so two runs on the same interpreter do the
same work — the only thing that varies is how fast the hardware gets
through it.  ``scale`` multiplies the event counts / virtual windows
(CI smoke uses 0.2); ``pool`` sizes the worker pool of the sweep
bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.parallel import run_experiments
from repro.net import Message, Transport, uniform_topology
from repro.perf.harness import best_of, peak_rss_mb, timed
from repro.sim import Environment, RandomStreams

#: Event/message counts at scale 1.0.
KERNEL_EVENTS = 200_000
TRANSPORT_MESSAGES = 200_000
SWEEP_RUNS = 4


def bench_kernel(scale: float, pool: int,
                 repeats: int = 3) -> Dict[str, float]:
    """Raw kernel throughput: one process cycling bare timeouts."""
    n_events = max(1_000, int(KERNEL_EVENTS * scale))

    def run() -> float:
        env = Environment()

        def ticker(env):
            for _ in range(n_events):
                yield env.timeout(1.0)

        env.process(ticker(env))
        return timed(env.run)

    seconds = best_of(run, repeats)
    return {
        "events": float(n_events),
        "seconds": seconds,
        "events_per_sec": n_events / seconds,
    }


def bench_transport(scale: float, pool: int,
                    repeats: int = 3) -> Dict[str, float]:
    """Transport hot path: send/sample/schedule/deliver per message."""
    n_messages = max(1_000, int(TRANSPORT_MESSAGES * scale))

    def run() -> float:
        env = Environment()
        topology = uniform_topology(3, one_way_ms=10.0, sigma=0.05)
        transport = Transport(env, topology, RandomStreams(seed=1))
        received = [0]

        def sink(message: Message) -> None:
            received[0] += 1

        transport.register("sink", 1, sink)

        def sender(env):
            for index in range(n_messages):
                transport.send(0, Message(
                    src="src", dst="sink", kind="k", payload=index,
                    msg_id=transport.next_msg_id()))
                if index % 64 == 0:
                    yield env.timeout(0.1)

        env.process(sender(env))
        seconds = timed(env.run)
        assert received[0] == n_messages
        return seconds

    seconds = best_of(run, repeats)
    return {
        "messages": float(n_messages),
        "seconds": seconds,
        "messages_per_sec": n_messages / seconds,
    }


def _figure_config(scale: float, seed: int = 1234,
                   name: str = "perf-figure") -> ExperimentConfig:
    """A shrunken §6-style PLANET run: EC2 topology, hotspot, real
    storage service times — every subsystem a figure exercises."""
    return ExperimentConfig(
        name=name, seed=seed, system="planet", topology="ec2",
        n_items=5_000, hotspot_size=50, rate_tps=150.0,
        storage_service_ms=0.4, oracle_samples=800,
        warmup_ms=max(800.0, 4_000.0 * scale),
        duration_ms=max(1_600.0, 8_000.0 * scale),
        drain_ms=max(800.0, 4_000.0 * scale))


def bench_figure(scale: float, pool: int,
                 repeats: int = 2) -> Dict[str, float]:
    """Wall time of one figure-scale experiment, plus peak RSS."""
    committed = [0]

    def run() -> float:
        experiment = Experiment(_figure_config(scale))
        seconds = timed(lambda: committed.__setitem__(
            0, experiment.run().metrics.n_committed))
        return seconds

    seconds = best_of(run, repeats)
    return {
        "seconds": seconds,
        # Deterministic given (scale, seed): a drifting commit count
        # means the bench itself lost reproducibility.
        "committed": float(committed[0]),
        "peak_rss_mb": peak_rss_mb(),
    }


def bench_sweep(scale: float, pool: int,
                repeats: int = 1) -> Dict[str, float]:
    """Figure-scale sweep, serial vs. a pool of ``pool`` workers.

    The sweep is ``SWEEP_RUNS`` independent seeds of the figure
    config; ``speedup`` is serial over parallel wall time on *this*
    machine — on a single-CPU host expect ~1.0 or slightly below
    (pool overhead), which is exactly what the number is for.
    """
    configs = [
        _figure_config(scale, seed=1000 + index, name=f"perf-sweep-{index}")
        for index in range(SWEEP_RUNS)
    ]

    serial_s = best_of(
        lambda: timed(lambda: run_experiments(configs, processes=1)),
        repeats)
    parallel_s = best_of(
        lambda: timed(lambda: run_experiments(configs, processes=pool)),
        repeats)
    return {
        "runs": float(len(configs)),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
    }


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark and how to judge it in compare mode."""

    name: str
    fn: Callable[..., Dict[str, float]]
    score_metric: str
    higher_is_better: bool
    unit: str
    description: str


BENCHES: List[BenchSpec] = [
    BenchSpec("kernel", bench_kernel, "events_per_sec", True,
              "events/s", "discrete-event kernel timer throughput"),
    BenchSpec("transport", bench_transport, "messages_per_sec", True,
              "messages/s", "transport send->deliver throughput"),
    BenchSpec("figure", bench_figure, "seconds", False,
              "s", "one figure-scale PLANET experiment"),
    BenchSpec("sweep", bench_sweep, "parallel_seconds", False,
              "s", "independent-config sweep, serial vs pooled"),
]
