"""The benchmark bodies: micro (kernel, transport), macro (figure),
and fan-out (serial-vs-parallel sweep).

Every bench is a pure function of ``(scale, pool)`` built entirely
from seeded components, so two runs on the same interpreter do the
same work — the only thing that varies is how fast the hardware gets
through it.  ``scale`` multiplies the event counts / virtual windows
(CI smoke uses 0.2); ``pool`` sizes the worker pool of the sweep
bench.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.admission import DynamicPolicy
from repro.core.likelihood import CommitLikelihoodModel
from repro.core.statistics import OracleLatencySource
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.parallel import (
    WorkerPool,
    effective_cpu_count,
    run_experiments,
)
from repro.harness.sharding import derive_shard_seed, split_evenly
from repro.mdcc.cluster import Cluster
from repro.net import (
    Message,
    RpcEndpoint,
    Transport,
    ec2_five_dc,
    uniform_topology,
)
from repro.perf.harness import best_of, peak_rss_mb, timed
from repro.sim import Environment, RandomStreams
from repro.storage.record import Update, WriteOp
from repro.workload import (
    AggregateLoad,
    BuyTransactionFactory,
    ZipfianAccess,
)

#: Event/message counts at scale 1.0.
KERNEL_EVENTS = 200_000
TRANSPORT_MESSAGES = 200_000
SWEEP_RUNS = 4
#: Likelihood-bench workload sizes at scale 1.0.
LIKELIHOOD_SAMPLES = 2_000
DECISION_EVALUATIONS = 20_000
#: Fast-ballot micro-bench transaction count at scale 1.0.
FAST_PAXOS_TXNS = 2_000
#: Timed-call count of the rpc_timeout micro-bench at scale 1.0.
RPC_TIMEOUT_CALLS = 20_000
#: Scale-bench shape: the million-client target — 10⁶ simulated users
#: issuing 10⁵ tx/s — over this simulated window (multiplied by
#: ``scale``), within the wall/RSS budgets below.  The rate was 10⁴
#: until the sharded engine landed; the budget gate holds at 10⁵.
SCALE_USERS = 1_000_000
SCALE_RATE_TPS = 100_000.0
SCALE_WINDOW_MS = 10_000.0
SCALE_WALL_BUDGET_S = 30.0
SCALE_RSS_BUDGET_MB = 1_024.0


def bench_kernel(scale: float, pool: int,
                 repeats: int = 3) -> Dict[str, float]:
    """Raw kernel throughput: one process cycling bare timeouts."""
    n_events = max(1_000, int(KERNEL_EVENTS * scale))

    def run() -> float:
        env = Environment()

        def ticker(env):
            for _ in range(n_events):
                yield env.timeout(1.0)

        env.process(ticker(env))
        return timed(env.run)

    seconds = best_of(run, repeats)
    return {
        "events": float(n_events),
        "seconds": seconds,
        "events_per_sec": n_events / seconds,
    }


def bench_transport(scale: float, pool: int,
                    repeats: int = 3) -> Dict[str, float]:
    """Transport hot path: send/sample/schedule/deliver per message."""
    n_messages = max(1_000, int(TRANSPORT_MESSAGES * scale))

    def run() -> float:
        env = Environment()
        topology = uniform_topology(3, one_way_ms=10.0, sigma=0.05)
        transport = Transport(env, topology, RandomStreams(seed=1))
        received = [0]

        def sink(message: Message) -> None:
            received[0] += 1

        transport.register("sink", 1, sink)

        def sender(env):
            for index in range(n_messages):
                transport.send(0, Message(
                    src="src", dst="sink", kind="k", payload=index,
                    msg_id=transport.next_msg_id()))
                if index % 64 == 0:
                    yield env.timeout(0.1)

        env.process(sender(env))
        seconds = timed(env.run)
        assert received[0] == n_messages
        return seconds

    seconds = best_of(run, repeats)
    return {
        "messages": float(n_messages),
        "seconds": seconds,
        "messages_per_sec": n_messages / seconds,
    }


def bench_obs(scale: float, pool: int,
              repeats: int = 3) -> Dict[str, float]:
    """Zero-cost contract of the observability layer.

    Times the kernel and transport hot loops twice — with
    ``env.metrics``/``env.spans`` left ``None`` (the default) and with
    a live :class:`repro.obs.ObsSession` installed.  The score metric
    is the uninstrumented kernel throughput, which ``--compare``
    guards like any other bench; the overhead percentages are
    informational (and bounded by the dedicated zero-cost test).
    """
    from repro.obs import ObsSession

    n_events = max(1_000, int(KERNEL_EVENTS * scale) // 2)
    n_messages = max(1_000, int(TRANSPORT_MESSAGES * scale) // 2)

    def kernel_run(observe: bool) -> float:
        env = Environment()
        if observe:
            ObsSession(spans=False).install(env)

        def ticker(env):
            for _ in range(n_events):
                yield env.timeout(1.0)

        env.process(ticker(env))
        return timed(env.run)

    def transport_run(observe: bool) -> float:
        env = Environment()
        if observe:
            ObsSession(spans=False).install(env)
        topology = uniform_topology(3, one_way_ms=10.0, sigma=0.05)
        transport = Transport(env, topology, RandomStreams(seed=1))
        received = [0]

        def sink(message: Message) -> None:
            received[0] += 1

        transport.register("sink", 1, sink)

        def sender(env):
            for index in range(n_messages):
                transport.send(0, Message(
                    src="src", dst="sink", kind="k", payload=index,
                    msg_id=transport.next_msg_id()))
                if index % 64 == 0:
                    yield env.timeout(0.1)

        env.process(sender(env))
        seconds = timed(env.run)
        assert received[0] == n_messages
        return seconds

    kernel_off = best_of(lambda: kernel_run(False), repeats)
    kernel_on = best_of(lambda: kernel_run(True), repeats)
    transport_off = best_of(lambda: transport_run(False), repeats)
    transport_on = best_of(lambda: transport_run(True), repeats)
    return {
        "kernel_events_per_sec_off": n_events / kernel_off,
        "kernel_events_per_sec_on": n_events / kernel_on,
        "kernel_overhead_pct": (kernel_on / kernel_off - 1.0) * 100.0,
        "transport_msgs_per_sec_off": n_messages / transport_off,
        "transport_msgs_per_sec_on": n_messages / transport_on,
        "transport_overhead_pct":
            (transport_on / transport_off - 1.0) * 100.0,
    }


def _figure_config(scale: float, seed: int = 1234,
                   name: str = "perf-figure") -> ExperimentConfig:
    """A shrunken §6-style PLANET run: EC2 topology, hotspot, real
    storage service times — every subsystem a figure exercises."""
    return ExperimentConfig(
        name=name, seed=seed, system="planet", topology="ec2",
        n_items=5_000, hotspot_size=50, rate_tps=150.0,
        storage_service_ms=0.4, oracle_samples=800,
        warmup_ms=max(800.0, 4_000.0 * scale),
        duration_ms=max(1_600.0, 8_000.0 * scale),
        drain_ms=max(800.0, 4_000.0 * scale))


def bench_figure(scale: float, pool: int,
                 repeats: int = 2) -> Dict[str, float]:
    """Wall time of one figure-scale experiment, plus peak RSS."""
    committed = [0]

    def run() -> float:
        experiment = Experiment(_figure_config(scale))
        seconds = timed(lambda: committed.__setitem__(
            0, experiment.run().metrics.n_committed))
        return seconds

    seconds = best_of(run, repeats)
    return {
        "seconds": seconds,
        # Deterministic given (scale, seed): a drifting commit count
        # means the bench itself lost reproducibility.
        "committed": float(committed[0]),
        "peak_rss_mb": peak_rss_mb(),
    }


def _likelihood_model(scale: float) -> CommitLikelihoodModel:
    """A converged 5-DC model on the paper's EC2 topology (no spikes:
    the bench measures model algebra, not tail luck)."""
    samples = max(200, int(LIKELIHOOD_SAMPLES * scale))
    topology = ec2_five_dc(spike_prob=0.0)
    matrix = OracleLatencySource(
        topology, RandomStreams(seed=7), samples=samples).latency_matrix()
    model = CommitLikelihoodModel(
        matrix, [1.0] * 5,
        size_distribution={1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1})
    model.precompute()
    return model


def bench_likelihood(scale: float, pool: int,
                     repeats: int = 3) -> Dict[str, float]:
    """Model maintenance: cold precompute vs 1-dirty-pair refresh.

    The incremental path is measured in steady state — a rotation
    stream perturbing one (src, dst) RTT pair per refresh, the way the
    statistics windows age in a live run — against the full reference
    rebuild of the same model.
    """
    model = _likelihood_model(scale)
    cold_s = best_of(lambda: timed(model.precompute), repeats)

    base = model.latency.rtt(0, 1)
    perturbed = [base.shift(2.0), base.shift(4.0)]
    # Warm the spectrum caches once: steady state is what rotations see.
    model.refresh(rtt_updates={(0, 1): perturbed[0], (1, 0): perturbed[0]})
    flip = itertools.cycle(perturbed[::-1])

    def one_rotation() -> float:
        update = next(flip)
        return timed(lambda: model.refresh(
            rtt_updates={(0, 1): update, (1, 0): update}))

    refresh_s = best_of(one_rotation, max(5, repeats * 3))
    return {
        "precompute_ms": cold_s * 1e3,
        "refresh_ms": refresh_s * 1e3,
        "incremental_speedup": cold_s / refresh_s if refresh_s > 0 else 0.0,
    }


def bench_likelihood_decisions(scale: float, pool: int,
                               repeats: int = 3) -> Dict[str, float]:
    """Admission-decision throughput: eq. 8b integrals vs memo hits.

    The evaluation stream cycles the 25 matrix cells across a handful
    of arrival-rate buckets — the repetition admission sweeps actually
    exhibit — so the memoized path is all hits after the first lap.
    The memoized arm is timed in that steady state (the 100-key fill
    lap runs before the clock starts): the fill cost is a fixed count
    of integrals, so folding it in would just make the ratio depend on
    ``scale`` instead of on the cache.
    """
    model = _likelihood_model(scale)
    n_evals = max(2_000, int(DECISION_EVALUATIONS * scale))
    keys = [(cc, l, 0.002 + 0.001 * bucket, 5.0)
            for cc in range(5) for l in range(5) for bucket in range(4)]
    stream = list(itertools.islice(itertools.cycle(keys), n_evals))

    def evaluate() -> None:
        for cc, l, rate, w in stream:
            model.record_likelihood(cc, l, rate, w_ms=w)

    model.memo.clear()
    evaluate()  # fill lap: every key cached before the clock starts
    memo_s = best_of(lambda: timed(evaluate), repeats)
    memo, model.memo = model.memo, None
    try:
        raw_s = best_of(lambda: timed(evaluate), repeats)
    finally:
        model.memo = memo
    return {
        "evaluations": float(n_evals),
        "unmemoized_per_sec": n_evals / raw_s,
        "memoized_per_sec": n_evals / memo_s,
        "memo_speedup": raw_s / memo_s if memo_s > 0 else 0.0,
    }


def bench_figure_admission(scale: float, pool: int,
                           repeats: int = 2) -> Dict[str, float]:
    """Figure-scale run exercising the whole likelihood fast path:
    measured statistics, periodic incremental model refresh, and
    admission decisions through the memo on every transaction."""
    committed = [0]

    def run() -> float:
        config = _figure_config(scale, seed=4321, name="perf-admission")
        config.admission = DynamicPolicy(50.0)
        config.stats_mode = "measured"
        config.model_refresh_ms = 2_000.0
        experiment = Experiment(config)
        return timed(lambda: committed.__setitem__(
            0, experiment.run().metrics.n_committed))

    seconds = best_of(run, repeats)
    return {
        "seconds": seconds,
        "committed": float(committed[0]),
    }


def bench_sweep(scale: float, pool: int,
                repeats: int = 1) -> Dict[str, float]:
    """Figure-scale sweep, serial vs. a persistent worker pool.

    The sweep is ``SWEEP_RUNS`` independent seeds of the figure
    config.  The pool is forked once (its startup is reported
    separately, since a real sweep amortizes it over every point) and
    the parallel arm reuses it across repeats; results cross the
    process boundary in columnar form.  ``effective_pool`` is the
    worker count after capping at the affinity mask — on a single-CPU
    host it is 1, the parallel arm degrades to the serial loop, and
    ``speedup`` ~1.0 is the expected (and correct) outcome; the
    ``--compare`` gate only requires speedup >= 1 when the effective
    pool is >= 2.
    """
    configs = [
        _figure_config(scale, seed=1000 + index, name=f"perf-sweep-{index}")
        for index in range(SWEEP_RUNS)
    ]

    serial_s = best_of(
        lambda: timed(lambda: run_experiments(configs, processes=1)),
        repeats)
    box: List[WorkerPool] = []
    startup_s = timed(lambda: box.append(WorkerPool(pool)))
    worker_pool = box[0]
    try:
        parallel_s = best_of(
            lambda: timed(
                lambda: run_experiments(configs, pool=worker_pool)),
            repeats)
        effective = worker_pool.effective
    finally:
        worker_pool.close()
    return {
        "runs": float(len(configs)),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "pool_startup_seconds": startup_s,
        "effective_pool": float(effective),
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
    }


class _CountingIssuer:
    """Scale-bench issuer: counts arrivals, keeps nothing per txn."""

    __slots__ = ("issued", "keys_touched")

    def __init__(self):
        self.issued = 0
        self.keys_touched = 0

    def issue(self, writes, touches_hotspot) -> None:
        self.issued += 1
        self.keys_touched += len(writes)


def _scale_shard(args: Tuple[float, int, int, float]) -> Tuple[int, int]:
    """Pool worker: one population shard of the scale bench, its own
    kernel on a derived seed.  Module-level so it pickles."""
    rate_tps, population, seed, window_ms = args
    env = Environment()
    streams = RandomStreams(seed=seed)
    pattern = ZipfianAccess(100_000, s=0.99)
    factory = BuyTransactionFactory(pattern)
    issuer = _CountingIssuer()
    load = AggregateLoad(
        env, factory, issuer, rate_tps, streams, name="scale-shard",
        mode="vectorized", batch_size=4_096, use_timer_lane=True,
        population=population)
    load.start(duration_ms=window_ms)
    env.run(until=window_ms)
    return issuer.issued, load.distinct_clients()


def bench_scale(scale: float, pool: int,
                repeats: int = 1) -> Dict[str, float]:
    """Million-client load generation through the batched engine.

    One :class:`AggregateLoad` in vectorized mode drives 10⁵ tx/s from
    a 10⁶-user population (Zipf access over a 100k-item catalogue) for
    ``SCALE_WINDOW_MS * scale`` simulated ms — once on the kernel's
    array-backed timer lane and once on per-arrival heap events
    (``lane_speedup`` is the ratio).  ``within_budget`` is 1.0 when
    the lane arm finishes under the wall-clock budget and the process
    high-water RSS stays under the memory budget; ``--compare`` fails
    on 0.0.  The per-client engine at this rate would be ~10⁶ heap
    events plus one generator resume each — the number this bench
    exists to make unnecessary.

    When >= 2 CPUs are usable, a third arm runs the same workload
    through the sharding layer: the population split into one shard
    per worker (same decomposition :func:`repro.harness.sharding.
    shard_configs` uses), each shard its own kernel in a pool process.
    ``shard_speedup`` is single-kernel wall over sharded wall; on a
    single-CPU host the arm is skipped (``shards`` reports 1).
    """
    window_ms = max(1_000.0, SCALE_WINDOW_MS * scale)
    observed: Dict[str, float] = {}

    def run(use_lane: bool) -> float:
        env = Environment()
        streams = RandomStreams(seed=97)
        pattern = ZipfianAccess(100_000, s=0.99)
        factory = BuyTransactionFactory(pattern)
        issuer = _CountingIssuer()
        load = AggregateLoad(
            env, factory, issuer, SCALE_RATE_TPS, streams, name="scale",
            mode="vectorized", batch_size=4_096, use_timer_lane=use_lane,
            population=SCALE_USERS)
        load.start(duration_ms=window_ms)
        seconds = timed(lambda: env.run(until=window_ms))
        if use_lane:
            observed["arrivals"] = float(issuer.issued)
            observed["clients"] = float(load.distinct_clients())
        return seconds

    lane_s = best_of(lambda: run(True), repeats)
    heap_s = best_of(lambda: run(False), repeats)

    shards = max(1, min(pool, effective_cpu_count()))
    sharded_s = 0.0
    sharded_arrivals = 0.0
    if shards >= 2:
        populations = split_evenly(SCALE_USERS, shards)
        tasks = [
            (SCALE_RATE_TPS / shards, populations[index],
             derive_shard_seed(97, index, shards), window_ms)
            for index in range(shards)
        ]
        worker_pool = WorkerPool(shards)
        try:
            def sharded_run() -> float:
                box: List[List[Tuple[int, int]]] = []
                seconds = timed(lambda: box.append(
                    worker_pool.map(_scale_shard, tasks)))
                sharded_arrivals_now = float(
                    sum(issued for issued, _clients in box[0]))
                observed["sharded_arrivals"] = sharded_arrivals_now
                return seconds

            sharded_s = best_of(sharded_run, repeats)
            sharded_arrivals = observed["sharded_arrivals"]
        finally:
            worker_pool.close()

    rss = peak_rss_mb()
    wall_budget = max(5.0, SCALE_WALL_BUDGET_S * scale)
    within = 1.0 if (lane_s <= wall_budget
                     and rss <= SCALE_RSS_BUDGET_MB) else 0.0
    arrivals = observed["arrivals"]
    return {
        "users": float(SCALE_USERS),
        "rate_tps": SCALE_RATE_TPS,
        "window_ms": window_ms,
        "arrivals": arrivals,
        "seconds": lane_s,
        "arrivals_per_sec": arrivals / lane_s if lane_s > 0 else 0.0,
        "heap_seconds": heap_s,
        "lane_speedup": heap_s / lane_s if lane_s > 0 else 0.0,
        "shards": float(shards),
        "sharded_seconds": sharded_s,
        "sharded_arrivals": sharded_arrivals,
        "shard_speedup": lane_s / sharded_s if sharded_s > 0 else 0.0,
        "distinct_clients": observed["clients"],
        "peak_rss_mb": rss,
        "wall_budget_s": wall_budget,
        "rss_budget_mb": SCALE_RSS_BUDGET_MB,
        "within_budget": within,
    }


def bench_fast_paxos(scale: float, pool: int,
                     repeats: int = 3) -> Dict[str, float]:
    """Fast-ballot hot path: one fast round per transaction on the
    EC2-2014 topology — propose, five ``fast2a`` votes, quorum
    resolution, learn, visibility — with enough cross-DC key sharing
    that some rounds collide and exercise the classic fallback too.
    Deterministic given ``scale``; the score is simulated transactions
    per wall second.
    """
    n_txns = max(100, int(FAST_PAXOS_TXNS * scale))
    counts = [0, 0]

    def run() -> float:
        env = Environment()
        topology = ec2_five_dc(spike_prob=0.0)
        cluster = Cluster(env, topology, RandomStreams(seed=11),
                          mode="fast", round_timeout_ms=2_000.0)
        cluster.set_default_stock(1_000_000)
        tms = [cluster.create_client(f"bench-{dc}", dc) for dc in range(5)]

        def driver(env):
            for index in range(n_txns):
                tm = tms[index % len(tms)]
                tm.begin([WriteOp(f"item:{index % 64}", Update.delta(-1))])
                yield env.timeout(5.0)

        env.process(driver(env))
        seconds = timed(env.run)
        counts[0] = sum(tm.fast_chosen for tm in tms)
        counts[1] = sum(tm.fallbacks for tm in tms)
        return seconds

    seconds = best_of(run, repeats)
    return {
        "txns": float(n_txns),
        "seconds": seconds,
        "txns_per_sec": n_txns / seconds,
        "fast_chosen": float(counts[0]),
        "fallbacks": float(counts[1]),
    }


def bench_rpc_timeout(scale: float, pool: int,
                      repeats: int = 3) -> Dict[str, float]:
    """Timed RPC calls whose replies beat the deadline.

    A client endpoint issues echo calls across a 2-DC uniform topology
    with ``timeout_ms=1000`` — every reply lands in ~20 simulated ms,
    so every deadline is armed and then cancelled.  Before the wheel,
    each call scheduled a heap event at ``now + 1000`` and resumed a
    dead ``_expire`` generator when it fired; now the reply path
    cancels the wheel timer in O(1) and the heap never hears about the
    deadline at all.  The bench reports timers armed/cancelled/fired
    next to the heap events actually scheduled, and asserts the
    acceptance contract: zero timers fire on this path.
    """
    n_calls = max(1_000, int(RPC_TIMEOUT_CALLS * scale))
    counters: Dict[str, float] = {}

    def run() -> float:
        env = Environment()
        topology = uniform_topology(2, one_way_ms=10.0, sigma=0.05)
        transport = Transport(env, topology, RandomStreams(seed=5))
        client = RpcEndpoint(env, transport, "client", 0)
        server = RpcEndpoint(env, transport, "server", 1)
        server.on("echo", lambda payload, src: payload)
        replies = [0]

        def driver(env):
            for index in range(n_calls):
                response = yield client.call(
                    "server", "echo", index, timeout_ms=1_000.0)
                assert response == index
                replies[0] += 1

        env.process(driver(env))
        seconds = timed(env.run)
        assert replies[0] == n_calls
        wheel = env.timer_wheel
        assert wheel.fired_total == 0, "a reply lost to its deadline"
        assert wheel.cancelled_total == wheel.armed_total == n_calls
        counters["timers_armed"] = float(wheel.armed_total)
        counters["timers_cancelled"] = float(wheel.cancelled_total)
        counters["timers_fired"] = float(wheel.fired_total)
        counters["heap_events"] = float(env._eid)
        return seconds

    seconds = best_of(run, repeats)
    return {
        "calls": float(n_calls),
        "seconds": seconds,
        "calls_per_sec": n_calls / seconds,
        "timers_armed": counters["timers_armed"],
        "timers_cancelled": counters["timers_cancelled"],
        "timers_fired": counters["timers_fired"],
        "heap_events": counters["heap_events"],
        "heap_events_per_call": counters["heap_events"] / n_calls,
    }


def speedup_curve(scale: float, max_workers: int,
                  repeats: int = 1) -> List[Dict[str, float]]:
    """Sweep wall time vs. worker count: the CI artifact's data.

    Times the figure-config sweep serially once, then through a
    ``WorkerPool(w)`` for each ``w`` in ``1..max_workers``
    (oversubscribed, so the curve honestly shows the plateau past the
    machine's usable CPUs).  Each point reports the pool's effective
    size and the speedup over the serial arm.
    """
    configs = [
        _figure_config(scale, seed=1000 + index, name=f"perf-curve-{index}")
        for index in range(SWEEP_RUNS)
    ]
    serial_s = best_of(
        lambda: timed(lambda: run_experiments(configs, processes=1)),
        repeats)
    points: List[Dict[str, float]] = []
    for workers in range(1, max_workers + 1):
        worker_pool = WorkerPool(workers, oversubscribe=True)
        try:
            parallel_s = best_of(
                lambda: timed(
                    lambda: run_experiments(configs, pool=worker_pool)),
                repeats)
            effective = worker_pool.effective
        finally:
            worker_pool.close()
        points.append({
            "workers": float(workers),
            "effective": float(effective),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        })
    return points


def bench_mode_sweep(scale: float, pool: int,
                     repeats: int = 1) -> Dict[str, float]:
    """Classic vs fast ballots, same seed and EC2 topology.

    Runs one shrunken §6-style experiment in each protocol mode and
    reports both wall times plus the commit-latency comparison — the
    fast path saves one message delay per option, so its p50 should
    sit below classic's on any WAN topology.
    """
    outcomes: Dict[str, object] = {}

    def config_for(mode: str) -> ExperimentConfig:
        return ExperimentConfig(
            name=f"perf-mode-{mode}", seed=2718, system="planet",
            topology="ec2", n_items=2_000, rate_tps=60.0,
            mode=mode, round_timeout_ms=2_000.0,
            warmup_ms=max(500.0, 2_500.0 * scale),
            duration_ms=max(1_000.0, 5_000.0 * scale),
            drain_ms=max(500.0, 2_500.0 * scale))

    def run() -> float:
        total = 0.0
        for mode in ("classic", "fast"):
            experiment = Experiment(config_for(mode))
            total += timed(
                lambda exp=experiment, m=mode: outcomes.__setitem__(
                    m, exp.run().metrics))
        return total

    seconds = best_of(run, repeats)
    classic, fast = outcomes["classic"], outcomes["fast"]
    classic_p50 = classic.percentile_response_ms(0.50)
    fast_p50 = fast.percentile_response_ms(0.50)
    return {
        "seconds": seconds,
        "classic_committed": float(classic.n_committed),
        "fast_committed": float(fast.n_committed),
        "classic_p50_ms": classic_p50,
        "fast_p50_ms": fast_p50,
        "p50_speedup": classic_p50 / fast_p50 if fast_p50 > 0 else 0.0,
    }


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark and how to judge it in compare mode."""

    name: str
    fn: Callable[..., Dict[str, float]]
    score_metric: str
    higher_is_better: bool
    unit: str
    description: str


BENCHES: List[BenchSpec] = [
    BenchSpec("kernel", bench_kernel, "events_per_sec", True,
              "events/s", "discrete-event kernel timer throughput"),
    BenchSpec("transport", bench_transport, "messages_per_sec", True,
              "messages/s", "transport send->deliver throughput"),
    BenchSpec("obs", bench_obs, "kernel_events_per_sec_off", True,
              "events/s", "observability off/on kernel+transport cost"),
    BenchSpec("figure", bench_figure, "seconds", False,
              "s", "one figure-scale PLANET experiment"),
    BenchSpec("likelihood", bench_likelihood, "incremental_speedup", True,
              "x", "likelihood model: cold precompute vs incremental refresh"),
    BenchSpec("likelihood_decisions", bench_likelihood_decisions,
              "memo_speedup", True,
              "x", "record_likelihood throughput, memoized vs unmemoized"),
    BenchSpec("figure_admission", bench_figure_admission, "seconds", False,
              "s", "figure-scale run with admission + model refresh"),
    BenchSpec("fast_paxos", bench_fast_paxos, "txns_per_sec", True,
              "txns/s", "fast-ballot round hot path on the EC2 topology"),
    BenchSpec("rpc_timeout", bench_rpc_timeout, "calls_per_sec", True,
              "calls/s", "timed RPC calls, replies beating the deadline "
              "(wheel-cancelled, zero heap timers)"),
    BenchSpec("mode_sweep", bench_mode_sweep, "p50_speedup", True,
              "x", "classic vs fast ballots: commit-latency comparison"),
    BenchSpec("sweep", bench_sweep, "parallel_seconds", False,
              "s", "independent-config sweep, serial vs persistent pool"),
    BenchSpec("scale", bench_scale, "arrivals_per_sec", True,
              "arrivals/s", "1M-user aggregate load at 100k tx/s, "
              "lane vs heap vs sharded kernels"),
]
