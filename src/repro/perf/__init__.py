"""Wall-clock benchmark harness (``python -m repro.perf``).

The simulator's value scales with how many scenarios a unit of
hardware time can cover (ROADMAP: "as fast as the hardware allows"),
so perf is a tested, regression-gated property here — not folklore.
This package measures it at three granularities:

* **micro** — raw kernel event throughput (``kernel``) and transport
  message throughput (``transport``), the two inner loops every
  simulated millisecond passes through;
* **macro** — wall time of a figure-scale PLANET experiment
  (``figure``), including peak RSS;
* **fan-out** — a serial-vs-parallel sweep of independent experiment
  configs (``sweep``), measuring what :mod:`repro.harness.parallel`
  buys on the current machine.

``python -m repro.perf`` writes ``BENCH_kernel.json`` (repo root by
convention); ``--compare OLD.json`` re-runs and fails on >25%
regression — CI's bench-smoke job wires the committed baseline into
exactly that check.  ``--profile`` wraps each bench in cProfile for
hot-path hunting.  See ``docs/performance.md``.

This package is deliberately **host-side**: it reads the wall clock
and writes files, which simulation code must never do, so it is exempt
from the determinism lint (DET001) and the blocking-I/O lint (SIM003)
— see the exclusion lists in ``repro.analysis.checkers``.
"""

from repro.perf.benches import BENCHES, BenchSpec
from repro.perf.harness import (
    SCHEMA_VERSION,
    compare_reports,
    load_report,
    write_report,
)

__all__ = [
    "BENCHES",
    "BenchSpec",
    "SCHEMA_VERSION",
    "compare_reports",
    "load_report",
    "write_report",
]
