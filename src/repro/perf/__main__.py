"""Command-line front end of the benchmark harness.

::

    python -m repro.perf                       # full run -> BENCH_kernel.json
    python -m repro.perf --smoke               # CI-sized run (scale 0.2)
    python -m repro.perf --only kernel --only transport
    python -m repro.perf --compare BENCH_kernel.json   # regression gate
    python -m repro.perf --profile             # cProfile the benches

``--compare`` exits non-zero iff any benchmark's score metric is more
than ``--threshold`` percent worse than the baseline file — CI feeds
it the committed ``BENCH_kernel.json``.  Results are always written
(``--out``, default ``BENCH_kernel.json`` in the current directory) so
the fresh numbers survive as an artifact even when the gate fails.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from typing import Dict, List, Optional

from repro.harness.parallel import default_pool_size, effective_cpu_count
from repro.perf.benches import BENCHES
from repro.perf.harness import (
    build_report,
    compare_reports,
    format_report,
    load_report,
    write_report,
)

#: Pre-change reference numbers: the same micro benches measured at
#: the seed revision (before the __slots__/pooling/sampler-binding
#: work, commit bb8ec9e) on the machine that produced the committed
#: baseline.  Informational — compare mode never reads this block.
UNOPTIMIZED_REFERENCE = {
    "rev": "bb8ec9e (pre-optimization)",
    "kernel_events_per_sec": 638_927.0,
    "transport_messages_per_sec": 167_234.0,
    "figure_seconds": 3.044,
}


def _run_benches(names: List[str], scale: float, pool: int, repeats: int,
                 profile: bool) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for spec in BENCHES:
        if names and spec.name not in names:
            continue
        print(f"running {spec.name} ({spec.description}) ...", flush=True)
        if profile:
            profiler = cProfile.Profile()
            profiler.enable()
        results[spec.name] = spec.fn(scale, pool, repeats=repeats)
        if profile:
            profiler.disable()
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"--- cProfile: {spec.name} ---")
            print(stream.getvalue())
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="micro/macro wall-clock benchmarks of the simulator")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: scale 0.2, single repeat")
    parser.add_argument("--scale", type=float, default=None,
                        help="work multiplier (default 1.0; --smoke: 0.2)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions, best-of (default 3; "
                             "--smoke: 1)")
    parser.add_argument("--pool", type=int, default=None,
                        help="worker pool for the sweep bench (default: "
                             "the CPU-affinity mask, i.e. the CPUs this "
                             "process may actually use)")
    parser.add_argument("--only", action="append", default=[],
                        choices=[spec.name for spec in BENCHES],
                        help="run only this bench (repeatable)")
    parser.add_argument("--out", type=str, default="BENCH_kernel.json",
                        help="result file (default %(default)s)")
    parser.add_argument("--compare", type=str, default=None, metavar="FILE",
                        help="baseline report; exit 1 on regression")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="allowed regression percent "
                             "(default %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each bench and print hot functions")
    parser.add_argument("--speedup-curve", type=str, default=None,
                        metavar="FILE",
                        help="instead of the bench suite, sweep the "
                             "figure-config fan-out at 1..pool workers "
                             "and write the speedup curve to FILE")
    namespace = parser.parse_args(argv)

    scale = namespace.scale if namespace.scale is not None else (
        0.2 if namespace.smoke else 1.0)
    repeats = namespace.repeats if namespace.repeats is not None else (
        1 if namespace.smoke else 3)
    pool = (namespace.pool if namespace.pool is not None
            else default_pool_size())
    effective_pool = min(pool, effective_cpu_count())

    if namespace.speedup_curve is not None:
        from repro.perf.benches import speedup_curve

        points = speedup_curve(scale, max_workers=max(1, pool),
                               repeats=repeats)
        artifact = {
            "scale": scale,
            "effective_cpus": effective_cpu_count(),
            "points": points,
        }
        with open(namespace.speedup_curve, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for point in points:
            print(f"workers {point['workers']:.0f} "
                  f"(effective {point['effective']:.0f}): "
                  f"{point['parallel_seconds']:.3f}s, "
                  f"speedup {point['speedup']:.3f}x")
        print(f"speedup curve written to {namespace.speedup_curve}")
        return 0

    results = _run_benches(namespace.only, scale, pool, repeats,
                           namespace.profile)
    scores = {spec.name: (spec.score_metric, spec.higher_is_better,
                          spec.unit)
              for spec in BENCHES if spec.name in results}
    report = build_report(results, scores, scale, pool,
                          effective_pool=effective_pool,
                          reference=UNOPTIMIZED_REFERENCE)
    print()
    print(format_report(report))
    write_report(namespace.out, report)
    print(f"\nreport written to {namespace.out}")

    if namespace.compare:
        baseline = load_report(namespace.compare)
        if baseline.get("scale") != report.get("scale"):
            print(f"note: baseline scale {baseline.get('scale')} != "
                  f"current scale {report.get('scale')}; comparing anyway")
        failures: List[str] = []
        regressions = compare_reports(report, baseline,
                                      threshold_pct=namespace.threshold)
        for regression in regressions:
            failures.append(regression.format())
        # Absolute gates, independent of the baseline file: whenever
        # a real pool ran, parallel must not lose to serial; and the
        # scale bench must stay inside its wall/RSS budgets.
        sweep = results.get("sweep")
        if (sweep is not None and sweep.get("effective_pool", 1.0) >= 2
                and sweep.get("speedup", 1.0) < 1.0):
            failures.append(
                f"sweep: parallel lost to serial at effective pool "
                f"{sweep['effective_pool']:.0f} "
                f"(speedup {sweep['speedup']:.3f} < 1.0)")
        scale_bench = results.get("scale")
        if (scale_bench is not None
                and scale_bench.get("within_budget", 1.0) < 1.0):
            failures.append(
                f"scale: outside budget (wall {scale_bench['seconds']:.2f}s"
                f" vs {scale_bench['wall_budget_s']:.0f}s, rss "
                f"{scale_bench['peak_rss_mb']:.0f}MB vs "
                f"{scale_bench['rss_budget_mb']:.0f}MB)")
        if failures:
            print(f"\nFAIL: {len(failures)} gate failure(s) vs "
                  f"{namespace.compare} (threshold "
                  f"{namespace.threshold:.0f}%)")
            for failure in failures:
                print("  " + failure)
            return 1
        print(f"\nOK: no regression beyond {namespace.threshold:.0f}% "
              f"vs {namespace.compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
