"""Replicated storage-node substrate.

Each data center holds a full replica of the database on one or more
:class:`StorageNode` servers (partitioned by key hash, like the paper's
two-server-per-DC deployment).  A node plays three roles:

* *replica*: serves read-committed reads of the latest visible version;
* *Paxos acceptor*: participates in per-record option rounds;
* *record leader*: for records mastered in its data center, runs the
  MDCC option round (conflict detection + phase2a fan-out).

Nodes also measure per-record update-arrival rates in coarse time
buckets (10 s buckets, most recent six kept — §5.2.3 of the paper) and
piggyback them on read responses for the commit-likelihood model.
"""

from repro.storage.record import Record, Update, WriteOp
from repro.storage.access_stats import AccessRateTracker
from repro.storage.option import (
    Decision,
    Learned,
    OptionPayload,
    ProposalAck,
    Propose,
    ReadReply,
    ReadRequest,
    Visibility,
)
from repro.storage.node import StorageNode

__all__ = [
    "AccessRateTracker",
    "Decision",
    "Learned",
    "OptionPayload",
    "ProposalAck",
    "Propose",
    "ReadReply",
    "ReadRequest",
    "Record",
    "StorageNode",
    "Update",
    "Visibility",
    "WriteOp",
]
