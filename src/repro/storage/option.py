"""MDCC option and protocol message payloads.

These are the application-level payloads exchanged between transaction
managers, record leaders, and storage replicas.  They live next to the
storage layer (rather than in :mod:`repro.mdcc`) because storage nodes
interpret them directly — an option is a record-level concept in MDCC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.storage.record import Update


class Decision(enum.Enum):
    """The leader's verdict on an option (both verdicts are *learned*)."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass(frozen=True)
class OptionPayload:
    """The value replicated by a per-record Paxos round.

    In the classic protocol the record leader stamps its verdict on the
    payload before phase2a.  Under fast ballots the proposer has no
    leader to ask, so ``decision`` is ``None`` on the wire and each
    acceptor evaluates the option against its own record state.
    """

    txid: str
    key: str
    update: Update
    decision: Optional[Decision]


@dataclass(frozen=True)
class Propose:
    """Transaction manager -> record leader: acquire an option.

    ``fallback`` marks the classic-mode recovery of a fast-ballot
    round that collided, was fenced, or timed out.
    """

    txid: str
    key: str
    update: Update
    tm_address: str
    fallback: bool = False


@dataclass(frozen=True)
class ProposalAck:
    """Leader -> TM: the proposal was received (acceptance signal).

    The paper's evaluation configures PLANET to consider a transaction
    *accepted* once the first storage node confirms the proposal
    message (§6.1).
    """

    txid: str
    key: str


@dataclass(frozen=True)
class Learned:
    """Leader -> TM: the option was learned by a majority."""

    txid: str
    key: str
    decision: Decision


@dataclass(frozen=True)
class Visibility:
    """TM -> every replica: commit (apply) or abort (discard) options.

    ``updates`` carries the written values so that replicas which
    missed the phase2a (fenced by a ballot, partitioned, or lossy
    links) still *learn* the chosen updates — the TM acts as the Paxos
    learner relaying the majority decision.
    """

    txid: str
    keys: List[str]
    commit: bool
    updates: Optional[dict] = None  # key -> Update (commit only)


@dataclass(frozen=True)
class ReadRequest:
    """Client -> local replica: read-committed read of one record.

    ``as_of_ms`` requests a point-in-time read against the replica's
    bounded version history (MVCC) instead of the newest version.
    """

    key: str
    as_of_ms: Optional[float] = None


@dataclass(frozen=True)
class ReadReply:
    """Latest visible version plus piggybacked likelihood statistics."""

    key: str
    value: Any
    version: int
    arrival_rate: float  # Poisson λ, updates per ms (§5.2.3)
    leader_dc: int
    has_pending: bool
    exists: bool = True
