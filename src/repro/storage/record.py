"""Records, versions, and update operations.

A :class:`Record` is the unit of replication and of conflict detection:
MDCC acquires one *option* per record update, and a learned-but-not-
yet-visible option blocks concurrent updates to the same record.

Conflict detection is enforced by the record's *leader* (the master in
one data center), which never opens a second conflict window while one
is pending locally.  Remote replicas may still observe two options in
flight for one record — the commit-visibility message of the first can
still be travelling when the second option's phase2a arrives — so the
pending set is a per-transaction map rather than a single slot.  The
buy workload uses commutative deltas, so replica-side application
order does not change final values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Update:
    """A single-record update.

    ``kind`` is either ``"set"`` (overwrite with ``value``) or
    ``"delta"`` (numeric increment by ``value`` — the TPC-W buy
    transaction decrements stock with ``Update.delta(-amount)``).
    ``floor`` optionally rejects deltas that would take the value below
    a bound (e.g. stock below zero); the check runs at the record
    leader against the latest visible version.
    """

    kind: str
    value: Any
    floor: Optional[float] = None

    def __post_init__(self):
        if self.kind not in ("set", "delta"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        if self.kind == "delta" and not isinstance(self.value, (int, float)):
            raise TypeError("delta updates need a numeric value")

    @classmethod
    def set(cls, value: Any) -> "Update":
        return cls(kind="set", value=value)

    @classmethod
    def delta(cls, value: float, floor: Optional[float] = None) -> "Update":
        return cls(kind="delta", value=value, floor=floor)

    def apply_to(self, current: Any) -> Any:
        """The new value after applying this update to ``current``."""
        if self.kind == "set":
            return self.value
        base = current if current is not None else 0
        return base + self.value

    def admissible_on(self, current: Any) -> bool:
        """Whether the leader may accept this update on ``current``."""
        if self.kind != "delta" or self.floor is None:
            return True
        base = current if current is not None else 0
        return base + self.value >= self.floor


@dataclass(frozen=True)
class WriteOp:
    """One write of a transaction: apply ``update`` to ``key``."""

    key: str
    update: Update


@dataclass
class Record:
    """A replicated record: latest visible version plus Paxos state.

    ``pending`` maps transaction ids to their learned-accepted,
    not-yet-visible options — the write-write conflict indicators.
    ``promised_ballot`` / ``accepted`` hold the acceptor state of the
    record's current Paxos instance (one instance per option round,
    numbered by ``seq``).
    """

    key: str
    value: Any = None
    version: int = 0
    pending: Dict[str, Update] = field(default_factory=dict)
    promised_ballot: int = -1
    accepted: Optional[Tuple[int, int, Any]] = None  # (ballot, seq, payload)
    seq: int = 0
    #: Recent version history as (visible_at_ms, value) pairs, newest
    #: last — backs point-in-time reads.  Bounded by HISTORY_KEEP.
    history: List[Tuple[float, Any]] = field(default_factory=list)

    HISTORY_KEEP = 16

    @property
    def has_pending_option(self) -> bool:
        return bool(self.pending)

    def add_pending(self, txid: str, update: Update) -> None:
        """Open (or idempotently re-open) a conflict window for ``txid``."""
        self.pending[txid] = update

    def clear_pending(self, txid: str) -> None:
        """Discard the option of an aborted transaction, if present."""
        self.pending.pop(txid, None)

    def apply_value(self, value: Any, now_ms: Optional[float] = None) -> None:
        """Install a new visible version (and record it in history)."""
        self.value = value
        self.version += 1
        if now_ms is not None:
            self.history.append((now_ms, value))
            if len(self.history) > self.HISTORY_KEEP:
                del self.history[:-self.HISTORY_KEEP]

    def commit_pending(self, txid: str,
                       now_ms: Optional[float] = None) -> bool:
        """Make ``txid``'s pending option visible; True if applied."""
        update = self.pending.pop(txid, None)
        if update is None:
            return False
        self.apply_value(update.apply_to(self.value), now_ms)
        return True

    def value_as_of(self, as_of_ms: float) -> Tuple[Any, int]:
        """The latest value visible at ``as_of_ms`` on this replica.

        Returns ``(value, version_offset)`` where the offset counts how
        many newer versions exist.  Falls back to the current value if
        the requested time predates the kept history (bounded MVCC).
        """
        newer = 0
        for visible_at, value in reversed(self.history):
            if visible_at <= as_of_ms:
                return value, newer
            newer += 1
        if self.history and newer == len(self.history):
            # Asked before the oldest kept version: the best available
            # answer is the oldest one we still have.
            return self.history[0][1], newer - 1
        return self.value, 0
