"""The storage-node server: replica, Paxos acceptor, and record leader.

One node exists per (data center, partition).  All nodes holding a
record form its replica group (one per data center); the node in the
record's *master* data center acts as the record leader and runs the
MDCC option rounds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.net.rpc import RpcEndpoint
from repro.net.transport import Transport
from repro.paxos import (
    AcceptorState,
    Ballot,
    FastPhase2a,
    PaxosRound,
    Phase2a,
    ballot_key,
    handle_fast2a,
    handle_phase2a,
)
from repro.paxos.round import PaxosRoundTimeout
from repro.sim import Environment
from repro.storage.access_stats import AccessRateTracker
from repro.storage.option import (
    Decision,
    Learned,
    OptionPayload,
    ProposalAck,
    Propose,
    ReadReply,
    ReadRequest,
    Visibility,
)
from repro.storage.record import Record


class StorageNode:
    """A full-replica storage server for one partition in one DC.

    Parameters
    ----------
    replica_resolver:
        Callable mapping a record key to the addresses of all replicas
        of that key (one per data center), used for phase2a fan-out.
    leader_resolver:
        Callable mapping a key to the master data-center index; this
        node leads the keys whose master DC equals its own.
    """

    def __init__(self, env: Environment, transport: Transport, address: str,
                 datacenter: int,
                 replica_resolver: Callable[[str], List[str]],
                 leader_resolver: Callable[[str], int],
                 bucket_ms: float = 10_000.0, keep_buckets: int = 6,
                 round_timeout_ms: Optional[float] = None,
                 service_time_ms: float = 0.0,
                 service_overrides: Optional[Dict[str, float]] = None,
                 mode: str = "classic"):
        if mode not in ("classic", "fast"):
            raise ValueError(f"unknown protocol mode {mode!r}")
        self.env = env
        self.address = address
        self.datacenter = datacenter
        self.mode = mode
        self.endpoint = RpcEndpoint(env, transport, address, datacenter,
                                    service_time_ms=service_time_ms,
                                    service_overrides=service_overrides)
        self._replicas_of = replica_resolver
        self._leader_dc_of = leader_resolver
        self.records: Dict[str, Record] = {}
        #: When set, unknown keys materialize lazily with this value
        #: (version 1) — lets experiments use multi-hundred-thousand-row
        #: tables without preallocating every replica.
        self.default_value: Optional[Any] = None
        self.acceptors: Dict[str, AcceptorState] = {}
        self.access_stats = AccessRateTracker(
            bucket_ms=bucket_ms, keep_buckets=keep_buckets)
        #: Per-round deadline handed to every classic :class:`PaxosRound`
        #: this node starts.  The round arms it on the kernel's
        #: cancelable timer wheel and cancels it when the quorum
        #: resolves, so rounds that finish on time (almost all of them)
        #: leave no dead timer behind on the event heap.
        self.round_timeout_ms = round_timeout_ms
        # Per-record leader ballots: takeovers raise them above the
        # previous leader's so its in-flight rounds are fenced out.
        self._ballots: Dict[str, Ballot] = {}
        self._default_ballot = Ballot(0, address)
        # Per-record proposal queues: one option round in flight per
        # record (its Multi-Paxos log is serial).
        self._proposal_queues: Dict[str, List[Propose]] = {}
        self._round_active: set = set()
        # Recently finalized txids: guards against message reordering
        # re-opening a decided transaction's pending state.
        self._finalized: Dict[str, None] = {}
        #: Optional provider consulted by the "ping" handler; installed
        #: by the statistics service for histogram dissemination.
        self.stats_provider: Optional[Callable[[Any, str], Any]] = None
        #: Observability counters.
        self.proposals = 0
        self.stale_proposals = 0
        self.fallback_proposals = 0
        self.options_accepted = 0
        self.options_rejected = 0
        self.rounds_lost = 0
        self.fast_votes = 0
        # Open option spans keyed by (txid, key): started when the
        # proposal arrives (under the coordinator's propose-stage span
        # riding on the message), finished when the learned verdict is
        # cast back.  Empty whenever span tracing is off.
        self._option_spans: Dict[tuple, Any] = {}

        self.endpoint.on("read", self._on_read)
        self.endpoint.on("propose", self._on_propose)
        self.endpoint.on("phase2a", self._on_phase2a)
        self.endpoint.on("fast2a", self._on_fast2a)
        self.endpoint.on("visibility", self._on_visibility)
        self.endpoint.on("phase1a", self._on_phase1a)
        self.endpoint.on("ping", self._on_ping)
        self.endpoint.on("stats_push", self._on_ping)

    # -- data management -----------------------------------------------------

    def load(self, items: Dict[str, Any]) -> None:
        """Bulk-load committed values (version 1), e.g. the Items table."""
        for key, value in items.items():
            self.records[key] = Record(key=key, value=value, version=1,
                                       history=[(0.0, value)])
            if self.env.tracer is not None:
                self.env.trace("version_visible", node=self.address,
                               key=key, version=1, value=value, txid="")

    def catch_up_from(self, peer: "StorageNode") -> int:
        """State-transfer from a healthy replica after a crash.

        A node that was dark missed every visibility message sent
        while it was down; until it catches up, its replica serves
        stale reads (and, if it leads keys, proposes against stale
        versions).  This copies every visible version the peer is
        ahead on — pending options are left alone, they belong to
        live rounds — and traces each repair as a ``version_visible``
        event, so recorded histories stay checkable.  Returns the
        number of records repaired.  The transfer is instantaneous
        (fail-stop with stable storage; shipping cost is not
        modelled), matching the simulator's process model.
        """
        repaired = 0
        for key, theirs in peer.records.items():
            ours = self.record(key)
            if theirs.version <= ours.version:
                continue
            ours.value = theirs.value
            ours.version = theirs.version
            ours.history.append((self.env.now, theirs.value))
            if len(ours.history) > ours.HISTORY_KEEP:
                del ours.history[:-ours.HISTORY_KEEP]
            repaired += 1
            if self.env.tracer is not None:
                self.env.trace("version_visible", node=self.address,
                               key=key, version=ours.version,
                               value=ours.value, txid="")
        return repaired

    def record(self, key: str) -> Record:
        """The local record for ``key``, created on first touch.

        With :attr:`default_value` set, the record materializes as a
        committed version-1 row (an implicitly pre-loaded table);
        otherwise it starts empty at version 0.
        """
        record = self.records.get(key)
        if record is None:
            if self.default_value is not None:
                record = Record(key=key, value=self.default_value, version=1,
                                history=[(0.0, self.default_value)])
                if self.env.tracer is not None:
                    self.env.trace("version_visible", node=self.address,
                                   key=key, version=1,
                                   value=self.default_value, txid="")
            else:
                record = Record(key=key)
            self.records[key] = record
        return record

    def leads(self, key: str) -> bool:
        """True if this node is the record leader for ``key``."""
        return self._leader_dc_of(key) == self.datacenter

    # -- read path -------------------------------------------------------------

    def _on_read(self, request: ReadRequest, src: str) -> ReadReply:
        record = self.records.get(request.key)
        if record is None and self.default_value is not None:
            record = self.record(request.key)
        rate = self.access_stats.arrival_rate(request.key, self.env.now)
        if record is None:
            reply = ReadReply(key=request.key, value=None, version=0,
                              arrival_rate=rate,
                              leader_dc=self._leader_dc_of(request.key),
                              has_pending=False, exists=False)
        elif request.as_of_ms is not None:
            value, newer = record.value_as_of(request.as_of_ms)
            reply = ReadReply(key=request.key, value=value,
                              version=max(record.version - newer, 0),
                              arrival_rate=rate,
                              leader_dc=self._leader_dc_of(request.key),
                              has_pending=record.has_pending_option)
        else:
            reply = ReadReply(key=request.key, value=record.value,
                              version=record.version, arrival_rate=rate,
                              leader_dc=self._leader_dc_of(request.key),
                              has_pending=record.has_pending_option)
        if self.env.tracer is not None:
            self.env.trace("read_reply", node=self.address, key=reply.key,
                           version=reply.version, value=reply.value,
                           as_of=request.as_of_ms, exists=reply.exists,
                           reader=src)
        if (self.env.spans is not None
                and self.endpoint.current_span is not None):
            self.env.spans.point(
                self.endpoint.current_span, "read", self.address,
                self.env.now, f"{reply.key}/{src}/{reply.version}",
                key=reply.key, version=reply.version)
        if self.env.metrics is not None:
            self.env.metrics.inc("storage.reads")
        return reply

    # -- leader path --------------------------------------------------------------

    def _on_propose(self, propose: Propose, src: str):
        """Handle an option proposal for a record this node masters.

        Option rounds for one record are strictly serialized — each
        record is a Multi-Paxos log with one instance in flight at a
        time — so proposals queue behind the active round.  Under
        contention this is itself a throughput limit: rejected options
        churn the record's log just like accepted ones (both must be
        learned, §5.1.1), which is precisely the contention admission
        control relieves.
        """
        if not self.leads(propose.key):
            # Stale mastership at the client: the record's leadership
            # moved while this proposal was in flight (found by the
            # repro.check fuzzer racing transfers against proposals).
            # Refuse with a REJECTED verdict so the transaction aborts
            # cleanly instead of crashing or silently corrupting the
            # conflict window.
            self.stale_proposals += 1
            if self.env.metrics is not None:
                self.env.metrics.inc("storage.stale_proposals")
            self.endpoint.cast(propose.tm_address, "learned",
                               Learned(txid=propose.txid, key=propose.key,
                                       decision=Decision.REJECTED))
            return RpcEndpoint.NO_REPLY
        self.proposals += 1
        if propose.fallback:
            # Classic-mode recovery of a collided/fenced fast round.
            self.fallback_proposals += 1
            if self.env.metrics is not None:
                self.env.metrics.inc("storage.fallback_proposals")
        if (self.env.spans is not None
                and self.endpoint.current_span is not None):
            span = self.env.spans.child(
                self.endpoint.current_span, "storage.option", self.address,
                self.env.now, f"{propose.txid}/{propose.key}",
                txid=propose.txid, key=propose.key)
            self._option_spans[(propose.txid, propose.key)] = span
        # Acceptance signal: confirm receipt before running the round.
        self.endpoint.cast(propose.tm_address, "proposal_ack",
                           ProposalAck(txid=propose.txid, key=propose.key))
        queue = self._proposal_queues.setdefault(propose.key, [])
        queue.append(propose)
        if propose.key not in self._round_active:
            self._start_next_round(propose.key)
        return RpcEndpoint.NO_REPLY

    def _start_next_round(self, key: str) -> None:
        queue = self._proposal_queues.get(key)
        if not queue:
            self._round_active.discard(key)
            return
        self._round_active.add(key)
        propose = queue.pop(0)

        record = self.record(key)
        # A transaction's own fast-voted option is not a conflict with
        # itself — a fallback re-proposal must be able to recover its
        # own value (in classic mode the proposing txid is never
        # pending here, so the exclusion is a no-op).
        conflict = any(txid != propose.txid for txid in record.pending)
        admissible = propose.update.admissible_on(record.value)
        if conflict or not admissible:
            decision = Decision.REJECTED
            self.options_rejected += 1
        else:
            decision = Decision.ACCEPTED
            record.add_pending(propose.txid, propose.update)
            self.options_accepted += 1

        if self.mode == "fast":
            # Classic recovery must open a *fresh* instance: lower
            # instances may hold fast-chosen values this leader knows
            # only through its own acceptor log (CHK008).
            state = self.acceptors.get(key)
            if state is not None:
                record.seq = max(record.seq, state.highest_accepted_seq())
        record.seq += 1
        if self.env.tracer is not None:
            self.env.trace("option", node=self.address, key=propose.key,
                           txid=propose.txid, seq=record.seq,
                           decision=decision.value, conflict=conflict)
        if self.env.metrics is not None:
            self.env.metrics.inc("storage.options", label=decision.value)
        option_span = self._option_spans.get((propose.txid, propose.key))
        if option_span is not None:
            option_span.attrs["decision"] = decision.value
            option_span.attrs["seq"] = record.seq
        payload = OptionPayload(txid=propose.txid, key=propose.key,
                                update=propose.update, decision=decision)
        ballot = self._ballots.get(propose.key, self._default_ballot)
        phase2a = Phase2a(key=propose.key, seq=record.seq,
                          ballot=ballot, payload=payload)
        replicas = self._replicas_of(propose.key)
        quorum = len(replicas) // 2 + 1
        round_ = PaxosRound(self.env, self.endpoint, replicas, phase2a,
                            quorum, timeout_ms=self.round_timeout_ms,
                            parent_span=(option_span.ctx
                                         if option_span is not None
                                         else None))
        self.env.process(self._finish_round(round_, propose, decision))

    def _finish_round(self, round_: PaxosRound, propose: Propose,
                      decision: Decision):
        """Wait for the quorum, notify the TM, start the next round."""
        try:
            won = yield round_.result
        except PaxosRoundTimeout:
            won = False
        if not won:
            # The round could not be learned as proposed (lost quorum or
            # timed out).  Release the conflict window and report the
            # option as rejected so the transaction aborts cleanly.
            self.rounds_lost += 1
            if self.env.metrics is not None:
                self.env.metrics.inc("storage.rounds_lost")
            if decision is Decision.ACCEPTED:
                self.record(propose.key).clear_pending(propose.txid)
            decision = Decision.REJECTED
        option_span = self._option_spans.pop(
            (propose.txid, propose.key), None)
        if option_span is not None:
            option_span.finish(self.env.now, won=won)
        self.endpoint.cast(propose.tm_address, "learned",
                           Learned(txid=propose.txid, key=propose.key,
                                   decision=decision),
                           span=(option_span.ctx
                                 if option_span is not None else None))
        self._start_next_round(propose.key)

    # -- mastership takeover (Paxos phase 1) ------------------------------------------

    def take_mastership(self, key: str, max_attempts: int = 5,
                        quorum_fast: bool = False):
        """Acquire leadership of ``key`` via phase-1 promises.

        Returns an event that succeeds with True once a majority of
        replicas promised a ballot above the previous leader's (which
        is thereby fenced: its in-flight phase2a rounds get rejected),
        or False after ``max_attempts`` contested rounds.  The caller
        must then update the routing (``Mastership.set_override``) so
        new proposals arrive here — :meth:`Cluster.transfer_mastership`
        does both.

        With ``quorum_fast`` each attempt settles as soon as a quorum
        of promises arrives instead of waiting for every replica —
        essential when a replica is dark (its phase-1 call only
        returns at the RPC timeout, stalling an already-won takeover
        for seconds).  The conservative default keeps the historical
        all-replies timing that the golden digests pin.
        """
        result = self.env.event()
        self.env.process(
            self._take_mastership(key, max_attempts, result, quorum_fast))
        return result

    def _take_mastership(self, key: str, max_attempts: int, result,
                         quorum_fast: bool = False):
        from repro.sim import AllOf  # local import: avoid heavy top-level

        replicas = self._replicas_of(key)
        quorum = len(replicas) // 2 + 1
        number = 1
        for _attempt in range(max_attempts):
            ballot = Ballot(number, self.address)
            if quorum_fast:
                tally = {"promised": 0, "done": 0, "highest": ballot}
                settled = self.env.event()
                for replica in replicas:
                    self.env.process(self._phase1_tally(
                        replica, key, ballot, tally, settled, quorum,
                        len(replicas)))
                yield settled
                promised = tally["promised"]
                highest_seen = tally["highest"]
            else:
                attempts = [
                    self.env.process(self._phase1_call(replica, key, ballot))
                    for replica in replicas
                ]
                replies = yield AllOf(self.env, attempts)
                promised = 0
                highest_seen = ballot
                for reply in replies.values():
                    if reply is None:
                        continue  # unreachable replica
                    ok, previous = reply
                    if ok:
                        promised += 1
                    elif previous is not None and previous > highest_seen:
                        highest_seen = previous
            if promised >= quorum:
                self._ballots[key] = ballot
                if self.env.tracer is not None:
                    self.env.trace("mastership_acquired", node=self.address,
                                   key=key, ballot=ballot_key(ballot),
                                   promises=promised)
                if not result.triggered:
                    result.succeed(True)
                return
            number = highest_seen.number + 1
        if not result.triggered:
            result.succeed(False)

    def _phase1_tally(self, replica: str, key: str, ballot: Ballot,
                      tally, settled, quorum: int, total: int):
        """One phase-1 exchange feeding a shared quorum tally."""
        reply = yield from self._phase1_call(replica, key, ballot)
        tally["done"] += 1
        if reply is not None:
            ok, previous = reply
            if ok:
                tally["promised"] += 1
            elif previous is not None and previous > tally["highest"]:
                tally["highest"] = previous
        if not settled.triggered and (tally["promised"] >= quorum
                                      or tally["done"] == total):
            settled.succeed(None)

    def _phase1_call(self, replica: str, key: str, ballot: Ballot):
        """One replica's phase1a exchange; None if unreachable."""
        from repro.net.rpc import RpcTimeout

        try:
            reply = yield self.endpoint.call(
                replica, "phase1a",
                Phase2a(key=key, seq=-1, ballot=ballot, payload=None),
                timeout_ms=5_000.0)
        except RpcTimeout:
            return None
        return reply

    def _on_phase1a(self, message: Phase2a, src: str):
        from repro.paxos.acceptor import handle_phase1a

        state = self.acceptors.get(message.key)
        if state is None:
            state = AcceptorState()
            self.acceptors[message.key] = state
        granted, previous = handle_phase1a(state, message.ballot)
        if self.env.tracer is not None:
            self.env.trace("promise", node=self.address, key=message.key,
                           ballot=ballot_key(message.ballot),
                           granted=granted, prev=ballot_key(previous))
        return granted, previous

    # -- acceptor path ---------------------------------------------------------------

    def _on_phase2a(self, message: Phase2a, src: str):
        # Every update attempt reaching the replicas counts toward the
        # record's arrival rate (§5.2.3), rejected options included.
        self.access_stats.record_access(message.key, self.env.now)
        state = self.acceptors.get(message.key)
        if state is None:
            state = AcceptorState()
            self.acceptors[message.key] = state
        observer = (self._trace_acceptor if self.env.tracer is not None
                    else None)
        vote = handle_phase2a(state, message, observer=observer)
        option: OptionPayload = message.payload
        if (vote.accepted and option.decision is Decision.ACCEPTED
                and option.txid not in self._finalized):
            self.record(message.key).add_pending(option.txid, option.update)
        if (self.env.spans is not None
                and self.endpoint.current_span is not None):
            self.env.spans.point(
                self.endpoint.current_span, "phase2b", self.address,
                self.env.now, f"{message.key}/{message.seq}/{self.address}",
                accepted=vote.accepted)
        if self.env.metrics is not None:
            self.env.metrics.inc(
                "paxos.votes",
                label="accepted" if vote.accepted else "rejected")
        return vote

    def _on_fast2a(self, message: FastPhase2a, src: str):
        """Vote on a fast-ballot proposal sent directly by a client.

        The acceptor plays the record leader's role locally: it
        evaluates the option against its own record state (conflict
        window, floor) and assigns the value to the next instance of
        its own log.  Clients agreeing on the instance across a fast
        quorum is what makes the value chosen; disagreement is a
        collision the client recovers from via the classic path.
        """
        self.access_stats.record_access(message.key, self.env.now)
        state = self.acceptors.get(message.key)
        if state is None:
            state = AcceptorState()
            self.acceptors[message.key] = state
        option: OptionPayload = message.payload
        record = self.record(message.key)
        conflict = any(txid != option.txid for txid in record.pending)
        admissible = option.update.admissible_on(record.value)
        decision = (Decision.REJECTED if conflict or not admissible
                    else Decision.ACCEPTED)
        observer = (self._trace_acceptor if self.env.tracer is not None
                    else None)
        vote = handle_fast2a(state, message, decision, observer=observer)
        if (vote.accepted and decision is Decision.ACCEPTED
                and option.txid not in self._finalized):
            record.add_pending(option.txid, option.update)
        self.fast_votes += 1
        if (self.env.spans is not None
                and self.endpoint.current_span is not None):
            self.env.spans.point(
                self.endpoint.current_span, "fast2b", self.address,
                self.env.now, f"{message.key}/{vote.seq}/{self.address}",
                accepted=vote.accepted)
        if self.env.metrics is not None:
            self.env.metrics.inc(
                "paxos.fast_votes",
                label="accepted" if vote.accepted else "fenced")
        return vote

    def _trace_acceptor(self, etype: str, fields: Dict[str, Any]) -> None:
        """Forward an acceptor-hook event onto the kernel tracer."""
        self.env.trace(etype, node=self.address, **fields)

    # -- visibility path -----------------------------------------------------------------

    def _on_visibility(self, visibility: Visibility, src: str):
        if visibility.txid in self._finalized:
            return "ack"  # duplicate delivery: already applied
        for key in visibility.keys:
            record = self.record(key)
            if visibility.commit:
                applied = record.commit_pending(visibility.txid,
                                                now_ms=self.env.now)
                if not applied and visibility.updates is not None:
                    # This replica never accepted the option (fenced,
                    # partitioned, or lossy): learn the chosen update
                    # directly from the TM's decision message.
                    update = visibility.updates.get(key)
                    if update is not None:
                        record.apply_value(update.apply_to(record.value),
                                           now_ms=self.env.now)
                        applied = True
                if applied and self.env.tracer is not None:
                    self.env.trace("version_visible", node=self.address,
                                   key=key, version=record.version,
                                   value=record.value, txid=visibility.txid)
            else:
                record.clear_pending(visibility.txid)
        if self.env.tracer is not None:
            self.env.trace("visibility_applied", node=self.address,
                           txid=visibility.txid, commit=visibility.commit,
                           keys=tuple(visibility.keys))
        if (self.env.spans is not None
                and self.endpoint.current_span is not None):
            self.env.spans.point(
                self.endpoint.current_span, "visibility.apply",
                self.address, self.env.now,
                f"{visibility.txid}/{self.address}",
                commit=visibility.commit)
        self._remember_finalized(visibility.txid)
        # Acknowledge so the TM's at-least-once delivery can stop
        # retrying; the operation is idempotent.
        return "ack"

    def _remember_finalized(self, txid: str,
                            retention: int = 4096) -> None:
        """Track finalized transactions so late/duplicate phase2a or
        visibility messages cannot re-open or re-apply them."""
        self._finalized[txid] = None
        while len(self._finalized) > retention:
            self._finalized.pop(next(iter(self._finalized)))

    # -- statistics path ------------------------------------------------------------------

    def _on_ping(self, payload: Any, src: str) -> Any:
        """RTT probe; delegates to the installed statistics provider."""
        if self.stats_provider is not None:
            return self.stats_provider(payload, src)
        return None
