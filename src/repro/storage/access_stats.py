"""Per-record update-arrival rate tracking.

Implements §5.2.3 of the paper: the number of update arrivals per
record is counted in coarse buckets (default 10 seconds) and only the
most recent buckets (default 6) are kept; the arrival rate used by the
commit-likelihood model is the arithmetic mean over those buckets,
expressed as a Poisson rate λ in updates per millisecond.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple


class AccessRateTracker:
    """Bucketed update-arrival counters for a set of records."""

    def __init__(self, bucket_ms: float = 10_000.0, keep_buckets: int = 6):
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        if keep_buckets < 1:
            raise ValueError("keep_buckets must be at least 1")
        self.bucket_ms = float(bucket_ms)
        self.keep_buckets = int(keep_buckets)
        # key -> deque of (bucket_index, count), newest last
        self._buckets: Dict[str, Deque[Tuple[int, int]]] = {}

    def _bucket_index(self, now_ms: float) -> int:
        return int(now_ms // self.bucket_ms)

    def record_access(self, key: str, now_ms: float) -> None:
        """Count one update arrival for ``key`` at virtual time ``now_ms``."""
        index = self._bucket_index(now_ms)
        buckets = self._buckets.get(key)
        if buckets is None:
            buckets = deque()
            self._buckets[key] = buckets
        if buckets and buckets[-1][0] == index:
            buckets[-1] = (index, buckets[-1][1] + 1)
        else:
            buckets.append((index, 1))
            while len(buckets) > self.keep_buckets:
                buckets.popleft()

    def arrival_rate(self, key: str, now_ms: float) -> float:
        """Estimated Poisson arrival rate λ for ``key`` in updates/ms.

        The mean is taken over the window covered by the kept buckets
        *ending at the current bucket*, so stale buckets age out even
        when no new updates arrive.
        """
        buckets = self._buckets.get(key)
        if not buckets:
            return 0.0
        current = self._bucket_index(now_ms)
        oldest_kept = current - self.keep_buckets + 1
        count = sum(c for index, c in buckets if index >= oldest_kept)
        # Divide by the span actually observed: from the start of the
        # oldest kept bucket (clamped to time zero — cold start) up to
        # now.  Dividing by whole buckets would underestimate rates
        # both at cold start and within the newest, partial bucket.
        window_start = max(0.0, oldest_kept * self.bucket_ms)
        window_ms = max(now_ms - window_start, 0.1 * self.bucket_ms)
        return count / window_ms

    def tracked_keys(self) -> int:
        """Number of records with at least one kept bucket."""
        return len(self._buckets)

    def forget_stale(self, now_ms: float) -> None:
        """Drop keys whose buckets all aged out (storage hygiene)."""
        current = self._bucket_index(now_ms)
        oldest_kept = current - self.keep_buckets + 1
        stale = [
            key for key, buckets in self._buckets.items()
            if not buckets or buckets[-1][0] < oldest_kept
        ]
        for key in stale:
            del self._buckets[key]
