"""The MDCC *classic* commit protocol (Kraska et al., EuroSys 2013).

This package implements the geo-replicated transactional database the
paper runs PLANET on: per-record options learned through Multi-Paxos,
a client-side transaction manager that commits once every option is
learned as accepted, and commit-visibility propagation to all
replicas.  Read-committed isolation, write-write conflict detection,
atomic durability — exactly the configuration modelled in §5.1.1.
"""

from repro.mdcc.coordinator import (
    TransactionHandle,
    TransactionManager,
    TransactionResult,
)
from repro.mdcc.cluster import Cluster, Mastership

__all__ = [
    "Cluster",
    "Mastership",
    "TransactionHandle",
    "TransactionManager",
    "TransactionResult",
]
