"""The client-side transaction manager for the MDCC classic protocol.

One :class:`TransactionManager` lives in each application client and
multiplexes that client's transactions over a single RPC endpoint.
A transaction proceeds through the paper's Figure 4 sequence:

1. read every record from the local replica (read-committed);
2. local processing time *w*;
3. propose one option per write to each record's leader;
4. the first ``proposal_ack`` marks the transaction *accepted*;
5. once every option is ``learned``, the outcome is decided
   (commit iff all accepted) — the client may move on;
6. a commit/abort visibility message is sent to every replica.

The :class:`TransactionHandle` exposes kernel events and progress
hooks so PLANET (or the baseline model) can observe each stage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.net.rpc import RpcEndpoint, RpcTimeout
from repro.paxos import Ballot, FastPhase2a, FastRound, ballot_key
from repro.paxos.fast import FastRoundOutcome
from repro.sim import AllOf, Environment, Event
from repro.storage.option import (
    Decision,
    Learned,
    OptionPayload,
    ProposalAck,
    Propose,
    ReadReply,
    ReadRequest,
    Visibility,
)
from repro.storage.record import WriteOp


@dataclass
class TransactionResult:
    """Final outcome and timeline of one transaction (virtual ms)."""

    txid: str
    committed: bool
    start_ms: float
    accepted_ms: Optional[float]
    decided_ms: float
    rejected_keys: List[str] = field(default_factory=list)

    @property
    def response_time_ms(self) -> float:
        """Client-perceived commit latency: start to decision."""
        return self.decided_ms - self.start_ms


class TransactionHandle:
    """Live view of an executing transaction.

    Attributes
    ----------
    accepted_event:
        Fires (once) when the first storage node confirms a proposal.
    decided_event:
        Fires with the :class:`TransactionResult` when the outcome is
        known.  Never fails; it simply may not fire if the network
        wedges the commit (callers race it with their own timeout).
    progress_hooks:
        Callables invoked as ``hook(stage, handle)`` with stage in
        ``{"reads_done", "proposed", "accepted", "learned",
        "decided"}`` — the raw material for PLANET's onProgress.
    """

    def __init__(self, env: Environment, txid: str,
                 writes: Sequence[WriteOp]):
        self.env = env
        self.txid = txid
        self.writes = list(writes)
        self.accepted_event: Event = env.event()
        self.decided_event: Event = env.event()
        self.progress_hooks: List[Callable[[str, "TransactionHandle"], None]] = []
        self.reads: Dict[str, ReadReply] = {}
        self.learned: Dict[str, Decision] = {}
        self.start_ms: float = env.now
        self.accepted_ms: Optional[float] = None
        self.proposed_ms: Optional[float] = None
        self.w_ms: Optional[float] = None
        self.result: Optional[TransactionResult] = None
        #: Set by begin(gate_after_reads=True): succeed with True to
        #: proceed past the read phase, False to cancel unproposed.
        self.gate: Optional[Event] = None
        #: The transaction's stage chain (a
        #: :class:`repro.obs.spans.TxSpanSet`) when span tracing is
        #: installed on the kernel; ``None`` otherwise.
        self.obs: Optional[Any] = None

    @property
    def write_keys(self) -> List[str]:
        return [op.key for op in self.writes]

    @property
    def unlearned_keys(self) -> List[str]:
        return [key for key in self.write_keys if key not in self.learned]

    @property
    def accepted(self) -> bool:
        return self.accepted_ms is not None

    @property
    def decided(self) -> bool:
        return self.result is not None

    def _notify(self, stage: str) -> None:
        for hook in list(self.progress_hooks):
            hook(stage, self)


class TransactionManager:
    """Runs MDCC transactions on behalf of one application client."""

    def __init__(self, env: Environment, transport, address: str,
                 datacenter: int, cluster_view, mode: str = "classic",
                 round_timeout_ms: Optional[float] = None):
        if mode not in ("classic", "fast"):
            raise ValueError(f"unknown protocol mode {mode!r}")
        # Per-instance so txids are reproducible across runs in one
        # process; the address prefix keeps them globally unique.
        self._ids = itertools.count(1)
        self.env = env
        self.address = address
        self.datacenter = datacenter
        self.cluster = cluster_view
        self.mode = mode
        #: Deadline for the Paxos rounds this TM starts (classic and
        #: fast).  Rounds arm it on the cancelable timer wheel and a
        #: decided round cancels it in O(1) — the common case schedules
        #: no heap event, and the transaction-level deadline in
        #: :class:`repro.core.transaction.PlanetTx` rides the same
        #: wheel.
        self.round_timeout_ms = round_timeout_ms
        self.endpoint = RpcEndpoint(env, transport, address, datacenter)
        self.endpoint.on("proposal_ack", self._on_proposal_ack)
        self.endpoint.on("learned", self._on_learned)
        self._active: Dict[str, TransactionHandle] = {}
        # Open classic-recovery spans keyed by (txid, key), started at
        # fast-round fallback and finished when the classic verdict is
        # learned.  Empty whenever span tracing is off.
        self._recovery_spans: Dict[tuple, Any] = {}
        #: Observability counters.
        self.started = 0
        self.committed = 0
        self.aborted = 0
        #: Fast-ballot counters (stay zero in classic mode).
        self.fast_chosen = 0
        self.fallbacks = 0
        self.collisions = 0

    # -- public API ----------------------------------------------------------

    def begin(self, writes: Sequence[WriteOp],
              read_keys: Optional[Sequence[str]] = None,
              think_time_ms: float = 0.0,
              gate_after_reads: bool = False) -> TransactionHandle:
        """Start a transaction; returns immediately with its handle.

        ``read_keys`` defaults to the write set (the buy transaction
        reads each item's stock before decrementing it).

        With ``gate_after_reads`` the transaction pauses after the read
        phase until ``handle.gate`` is succeeded with True (proceed to
        commit) or False (cancel without proposing) — the hook PLANET's
        admission control uses.
        """
        if not writes:
            raise ValueError("a transaction needs at least one write")
        txid = f"{self.address}#{next(self._ids)}"
        handle = TransactionHandle(self.env, txid, writes)
        if self.env.tracer is not None:
            self.env.trace("tx_begin", node=self.address, txid=txid,
                           keys=tuple(handle.write_keys))
        if self.env.spans is not None:
            handle.obs = self.env.spans.begin_tx(
                txid, self.address, self.env.now, handle.write_keys)
        if self.env.metrics is not None:
            self.env.metrics.inc("tx.started")
        if gate_after_reads:
            handle.gate = self.env.event()
        self._active[txid] = handle
        self.started += 1
        keys = list(read_keys) if read_keys is not None else handle.write_keys
        self.env.process(self._run(handle, keys, think_time_ms))
        return handle

    def read_only(self, keys: Sequence[str],
                  as_of_ms: Optional[float] = None) -> Event:
        """Read-committed reads from the local replicas (no commit).

        Returns an event that fires with ``{key: ReadReply}``.  Reads
        never block on pending options and never acquire any — they
        observe the latest *visible* versions, which is exactly the
        read-committed guarantee of the MDCC classic protocol.

        With ``as_of_ms`` every key is read as of the same local
        timestamp from the replica's bounded version history — a
        point-in-time snapshot of this data center's timeline (MDCC
        gives atomic durability, not atomic visibility, so the
        snapshot is per-replica).
        """
        if not keys:
            raise ValueError("need at least one key to read")
        if as_of_ms is not None and as_of_ms > self.env.now:
            raise ValueError("cannot read the future")
        result = self.env.event()
        self.env.process(self._run_reads(list(keys), as_of_ms, result))
        return result

    def _run_reads(self, keys: List[str], as_of_ms: Optional[float],
                   result: Event):
        calls = [
            self.endpoint.call(
                self.cluster.local_replica_address(self.datacenter, key),
                "read", ReadRequest(key=key, as_of_ms=as_of_ms))
            for key in keys
        ]
        replies = yield AllOf(self.env, calls)
        if not result.triggered:
            result.succeed({reply.key: reply
                            for reply in replies.values()})

    # -- transaction process -----------------------------------------------------

    def _run(self, handle: TransactionHandle, read_keys: Sequence[str],
             think_time_ms: float):
        read_start = self.env.now
        # 1. Read phase: all reads go to this DC's replicas in parallel.
        if read_keys:
            read_span = handle.obs.ctx if handle.obs is not None else None
            calls = [
                self.endpoint.call(
                    self.cluster.local_replica_address(self.datacenter, key),
                    "read", ReadRequest(key=key), span=read_span)
                for key in read_keys
            ]
            replies = yield AllOf(self.env, calls)
            for reply in replies.values():
                handle.reads[reply.key] = reply
        handle._notify("reads_done")

        if handle.gate is not None:
            proceed = yield handle.gate
            if not proceed:
                del self._active[handle.txid]
                self.started -= 1  # never attempted
                if handle.obs is not None:
                    handle.obs.cancelled(self.env.now)
                if self.env.metrics is not None:
                    self.env.metrics.inc("tx.cancelled")
                handle._notify("cancelled")
                return

        # Admission stage ends here: reads done and (when gated) the
        # admission decision taken.  Think time and option fan-out
        # belong to the propose stage.
        if handle.obs is not None:
            handle.obs.advance("propose", self.env.now)

        # 2. Local processing time between read and commit start.
        if think_time_ms > 0:
            yield self.env.timeout(think_time_ms)

        # 3. Propose one option per write.  Classic mode routes through
        #    each record's leader; fast mode proposes straight to every
        #    acceptor under a fast quorum (one fewer message delay).
        #    The measured w of §5.1.2 is read-request to commit start.
        handle.proposed_ms = self.env.now
        handle.w_ms = self.env.now - read_start
        propose_span = handle.obs.ctx if handle.obs is not None else None
        if self.mode == "fast":
            for op in handle.writes:
                self._start_fast_round(handle, op, propose_span)
        else:
            for op in handle.writes:
                leader = self.cluster.leader_address(op.key)
                if self.env.tracer is not None:
                    self.env.trace("propose", node=self.address,
                                   txid=handle.txid, key=op.key,
                                   leader=leader)
                self.endpoint.cast(leader, "propose", Propose(
                    txid=handle.txid, key=op.key, update=op.update,
                    tm_address=self.address), span=propose_span)
        # Options are in flight: the accept stage runs until the first
        # proposal_ack (classic) or fast vote comes back.
        if handle.obs is not None:
            handle.obs.advance("accept", self.env.now)
        handle._notify("proposed")

    # -- fast-ballot path -------------------------------------------------------

    def _start_fast_round(self, handle: TransactionHandle, op: WriteOp,
                          propose_span) -> None:
        ballot = Ballot.fast(0)
        replicas = self.cluster.replica_addresses(op.key)
        if self.env.tracer is not None:
            self.env.trace("fast_propose", node=self.address,
                           txid=handle.txid, key=op.key,
                           ballot=ballot_key(ballot),
                           n_replicas=len(replicas))
        payload = OptionPayload(txid=handle.txid, key=op.key,
                                update=op.update, decision=None)
        fast2a = FastPhase2a(key=op.key, ballot=ballot, payload=payload)
        round_ = FastRound(
            self.env, self.endpoint, replicas, fast2a,
            timeout_ms=self.round_timeout_ms, parent_span=propose_span,
            on_first_vote=lambda: self._mark_accepted(handle, op.key))
        self.env.process(self._finish_fast_round(round_, handle, op))

    def _finish_fast_round(self, round_: FastRound,
                           handle: TransactionHandle, op: WriteOp):
        outcome: FastRoundOutcome = yield round_.result
        if handle.txid not in self._active or op.key in handle.learned:
            return  # decided meanwhile (e.g. another key's reject)
        if outcome.status in ("chosen", "rejected"):
            decision = (Decision.ACCEPTED if outcome.status == "chosen"
                        else Decision.REJECTED)
            self.fast_chosen += 1
            if self.env.tracer is not None:
                self.env.trace("fast_chosen", node=self.address,
                               txid=handle.txid, key=op.key,
                               seq=outcome.seq, decision=decision.value,
                               votes=outcome.votes)
            if self.env.metrics is not None:
                self.env.metrics.inc("paxos.fast_chosen",
                                     label=decision.value)
            self._record_learned(handle, op.key, decision)
            return
        # Fallback: recover through the record master's classic path.
        self.fallbacks += 1
        if outcome.reason == "collision":
            self.collisions += 1
        if self.env.tracer is not None:
            self.env.trace("fast_fallback", node=self.address,
                           txid=handle.txid, key=op.key,
                           reason=outcome.reason, votes=outcome.votes,
                           fenced=outcome.fenced)
        if self.env.metrics is not None:
            self.env.metrics.inc("paxos.fallbacks", label=outcome.reason)
            if outcome.reason == "collision":
                self.env.metrics.inc("paxos.collisions")
        span_ctx = None
        if self.env.spans is not None and handle.obs is not None:
            span = self.env.spans.child(
                handle.obs.ctx, "paxos.recovery", self.address,
                self.env.now, f"{handle.txid}/{op.key}",
                txid=handle.txid, key=op.key, reason=outcome.reason)
            self._recovery_spans[(handle.txid, op.key)] = span
            span_ctx = span.ctx
        leader = self.cluster.leader_address(op.key)
        if self.env.tracer is not None:
            self.env.trace("propose", node=self.address,
                           txid=handle.txid, key=op.key, leader=leader)
        self.endpoint.cast(leader, "propose", Propose(
            txid=handle.txid, key=op.key, update=op.update,
            tm_address=self.address, fallback=True), span=span_ctx)

    def _mark_accepted(self, handle: TransactionHandle, key: str) -> None:
        """First storage-node confirmation (ack or fast vote) arrived."""
        if handle.txid not in self._active or handle.accepted_ms is not None:
            return
        handle.accepted_ms = self.env.now
        if self.env.tracer is not None:
            self.env.trace("tx_accepted", node=self.address,
                           txid=handle.txid, key=key)
        if handle.obs is not None:
            handle.obs.advance("learn", self.env.now)
        if not handle.accepted_event.triggered:
            handle.accepted_event.succeed(handle)
        handle._notify("accepted")

    def _record_learned(self, handle: TransactionHandle, key: str,
                        decision: Decision) -> None:
        """Record one key's verdict and decide once all are in."""
        handle.learned[key] = decision
        span = self._recovery_spans.pop((handle.txid, key), None)
        if span is not None:
            span.finish(self.env.now, decision=decision.value)
        if self.env.tracer is not None:
            self.env.trace("tx_learned", node=self.address,
                           txid=handle.txid, key=key,
                           decision=decision.value)
        handle._notify("learned")
        if not handle.unlearned_keys:
            self._decide(handle)

    # -- message handlers ------------------------------------------------------------

    def _on_proposal_ack(self, ack: ProposalAck, src: str):
        handle = self._active.get(ack.txid)
        if handle is not None:
            self._mark_accepted(handle, ack.key)
        return RpcEndpoint.NO_REPLY

    def _on_learned(self, learned: Learned, src: str):
        handle = self._active.get(learned.txid)
        if handle is None or learned.key in handle.learned:
            return RpcEndpoint.NO_REPLY
        self._record_learned(handle, learned.key, learned.decision)
        return RpcEndpoint.NO_REPLY

    def _decide(self, handle: TransactionHandle) -> None:
        rejected = [key for key, decision in handle.learned.items()
                    if decision is Decision.REJECTED]
        committed = not rejected
        handle.result = TransactionResult(
            txid=handle.txid, committed=committed,
            start_ms=handle.start_ms, accepted_ms=handle.accepted_ms,
            decided_ms=self.env.now, rejected_keys=rejected)
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        if self.env.tracer is not None:
            self.env.trace("tx_decided", node=self.address,
                           txid=handle.txid, committed=committed,
                           keys=tuple(handle.write_keys))
        if self.env.metrics is not None:
            self.env.metrics.inc(
                "tx.decided", label="commit" if committed else "abort")
        # 6. Commit/abort visibility to every replica of every written
        #    record (accepted options must be applied or discarded
        #    everywhere; rejected ones left no pending state).  The
        #    message is idempotent, so it is retried until acknowledged
        #    — a lost visibility must not wedge a conflict window.
        updates = ({op.key: op.update for op in handle.writes}
                   if committed else None)
        visibility = Visibility(txid=handle.txid, keys=handle.write_keys,
                                commit=committed, updates=updates)
        addresses = list(
            self.cluster.all_replica_addresses(handle.write_keys))
        if handle.obs is not None:
            # Enter the visibility stage and arm its countdown before
            # the delivery processes start, so obs.ctx below is the
            # visibility-stage span.
            handle.obs.decided(self.env.now, committed)
            handle.obs.expect_visibility(len(addresses))
        for address in addresses:
            self.env.process(self._deliver_visibility(
                address, visibility, obs=handle.obs))
        del self._active[handle.txid]
        if not handle.decided_event.triggered:
            handle.decided_event.succeed(handle.result)
        handle._notify("decided")

    def _deliver_visibility(self, address: str, visibility: Visibility,
                            max_attempts: int = 10,
                            attempt_timeout_ms: float = 2_000.0,
                            obs: Optional[Any] = None):
        """At-least-once delivery of one replica's visibility message."""
        span = obs.ctx if obs is not None else None
        try:
            for _attempt in range(max_attempts):
                try:
                    yield self.endpoint.call(
                        address, "visibility", visibility,
                        timeout_ms=attempt_timeout_ms, span=span)
                    return
                except RpcTimeout:
                    continue
            # Give up: the replica is unreachable (durable partition);
            # it will hold the pending option until connectivity
            # returns.
        finally:
            # Counts down whether the delivery landed or gave up — a
            # partitioned replica must not hold the root span open.
            if obs is not None:
                obs.visibility_done(self.env.now)
