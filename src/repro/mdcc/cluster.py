"""Deployment wiring: data centers, storage nodes, and mastership.

A :class:`Cluster` assembles the full geo-replicated database — one
storage node per (data center, partition), full replication across
data centers — and hands out :class:`TransactionManager` clients.
It is the single entry point the PLANET layer, the workload, and the
experiment harness build on.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.mdcc.coordinator import TransactionManager
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.sim import Environment, RandomStreams
from repro.storage.node import StorageNode


class Mastership:
    """Assigns each record a master (leader) data center.

    ``policy`` is either ``"hash"`` (uniform spread across data
    centers — the default, giving the uniform leader distribution the
    likelihood model assumes), an ``int`` fixing one master DC for all
    records, or a callable ``key -> dc_index``.
    """

    def __init__(self, n_datacenters: int,
                 policy: Union[str, int, Callable[[str], int]] = "hash"):
        if n_datacenters < 1:
            raise ValueError("need at least one data center")
        self.n = n_datacenters
        self._policy = policy
        self._overrides: Dict[str, int] = {}
        if isinstance(policy, int) and not 0 <= policy < n_datacenters:
            raise ValueError(f"fixed master {policy} out of range")

    def leader_dc(self, key: str) -> int:
        override = self._overrides.get(key)
        if override is not None:
            return override
        if callable(self._policy):
            return self._policy(key)
        if isinstance(self._policy, int):
            return self._policy
        return zlib.crc32(f"m:{key}".encode("utf-8")) % self.n

    def set_override(self, key: str, dc: int) -> None:
        """Pin one record's mastership (after a successful takeover)."""
        if not 0 <= dc < self.n:
            raise ValueError(f"data center {dc} out of range")
        self._overrides[key] = dc

    def leader_distribution(self) -> List[float]:
        """P(L = l) used by the commit-likelihood model (§5.1.2)."""
        if isinstance(self._policy, int):
            return [1.0 if dc == self._policy else 0.0
                    for dc in range(self.n)]
        # Hash mastership and custom callables are approximated as
        # uniform; callers with skewed custom policies can override the
        # distribution when building the likelihood model.
        return [1.0 / self.n] * self.n


class Cluster:
    """The assembled geo-replicated MDCC database.

    >>> cluster = Cluster(env, topology, streams)
    >>> cluster.load({"item:1": 100})
    >>> tm = cluster.create_client("web-0", datacenter=0)
    >>> handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    """

    def __init__(self, env: Environment, topology: Topology,
                 streams: RandomStreams, partitions_per_dc: int = 2,
                 mastership: Union[str, int, Callable[[str], int]] = "hash",
                 round_timeout_ms: Optional[float] = None,
                 bucket_ms: float = 10_000.0, keep_buckets: int = 6,
                 storage_service_ms: float = 0.0,
                 storage_service_overrides: Optional[Dict[str, float]] = None,
                 mode: str = "classic"):
        if partitions_per_dc < 1:
            raise ValueError("need at least one partition per data center")
        if mode not in ("classic", "fast"):
            raise ValueError(f"unknown protocol mode {mode!r}")
        self.env = env
        self.topology = topology
        self.streams = streams
        self.partitions = partitions_per_dc
        self.mode = mode
        self.round_timeout_ms = round_timeout_ms
        self.transport = Transport(env, topology, streams)
        self.mastership = Mastership(len(topology), mastership)
        self.nodes: Dict[int, List[StorageNode]] = {}
        self._clients: Dict[str, TransactionManager] = {}
        for dc in range(len(topology)):
            self.nodes[dc] = [
                StorageNode(
                    env, self.transport,
                    address=self.node_address(dc, partition),
                    datacenter=dc,
                    replica_resolver=self.replica_addresses,
                    leader_resolver=self.mastership.leader_dc,
                    bucket_ms=bucket_ms, keep_buckets=keep_buckets,
                    round_timeout_ms=round_timeout_ms,
                    service_time_ms=storage_service_ms,
                    service_overrides=storage_service_overrides,
                    mode=mode)
                for partition in range(partitions_per_dc)
            ]

    # -- addressing ---------------------------------------------------------

    @staticmethod
    def node_address(dc: int, partition: int) -> str:
        return f"storage/{dc}/{partition}"

    def partition_of(self, key: str) -> int:
        return zlib.crc32(f"p:{key}".encode("utf-8")) % self.partitions

    def leader_dc(self, key: str) -> int:
        return self.mastership.leader_dc(key)

    def leader_address(self, key: str) -> str:
        return self.node_address(self.leader_dc(key), self.partition_of(key))

    def replica_addresses(self, key: str) -> List[str]:
        """All replicas of ``key``: its partition's node in every DC."""
        partition = self.partition_of(key)
        return [self.node_address(dc, partition)
                for dc in range(len(self.topology))]

    def all_replica_addresses(self, keys: Sequence[str]) -> List[str]:
        """Union of replica groups over ``keys`` (for visibility casts)."""
        seen: Dict[str, None] = {}
        for key in keys:
            for address in self.replica_addresses(key):
                seen.setdefault(address)
        return list(seen)

    def local_replica_address(self, dc: int, key: str) -> str:
        return self.node_address(dc, self.partition_of(key))

    def node_for(self, dc: int, key: str) -> StorageNode:
        return self.nodes[dc][self.partition_of(key)]

    def leader_node(self, key: str) -> StorageNode:
        return self.node_for(self.leader_dc(key), key)

    # -- data & clients --------------------------------------------------------

    def load(self, items: Dict[str, Any]) -> None:
        """Install committed values on every replica (bulk load)."""
        for dc in self.nodes:
            by_partition: Dict[int, Dict[str, Any]] = {}
            for key, value in items.items():
                by_partition.setdefault(self.partition_of(key), {})[key] = value
            for partition, chunk in by_partition.items():
                self.nodes[dc][partition].load(chunk)

    def set_default_stock(self, value: Any) -> None:
        """Implicitly pre-load every key with ``value`` on all replicas.

        Records materialize lazily on first access, so tables with
        hundreds of thousands of uniform rows (the paper's 200 000-item
        Items table) cost memory only for the keys actually touched.
        """
        for nodes in self.nodes.values():
            for node in nodes:
                node.default_value = value

    def create_client(self, name: str, datacenter: int) -> TransactionManager:
        """A transaction manager endpoint placed in ``datacenter``."""
        address = f"client/{name}"
        if address in self._clients:
            raise ValueError(f"client {name!r} already exists")
        tm = TransactionManager(self.env, self.transport, address,
                                datacenter, cluster_view=self,
                                mode=self.mode,
                                round_timeout_ms=self.round_timeout_ms)
        self._clients[address] = tm
        return tm

    def transfer_mastership(self, key: str, new_dc: int,
                            quorum_fast: bool = False):
        """Move a record's leadership to another data center.

        Runs Paxos phase 1 from the new leader (fencing the old one),
        then updates the routing so subsequent proposals go to the new
        master.  Returns an event succeeding with True on success.
        In-flight rounds of the fenced leader lose their quorum and are
        reported as rejected — transactions abort cleanly rather than
        split-brain.

        ``quorum_fast`` settles phase 1 on a majority of promises
        instead of all replies — required for failovers away from a
        dark DC, where waiting on the dead replica's RPC timeout
        leaves the key fenced but still routed to the old leader.
        """
        if not 0 <= new_dc < len(self.topology):
            raise ValueError(f"data center {new_dc} out of range")
        node = self.node_for(new_dc, key)
        result = self.env.event()
        self.env.process(
            self._transfer(key, new_dc, node, result, quorum_fast))
        return result

    def _transfer(self, key: str, new_dc: int, node, result,
                  quorum_fast: bool = False):
        won = yield node.take_mastership(key, quorum_fast=quorum_fast)
        if won:
            self.mastership.set_override(key, new_dc)
        if not result.triggered:
            result.succeed(won)

    def read_value(self, key: str, dc: int = 0) -> Any:
        """Direct (instant) read of the visible value — test/debug aid."""
        record = self.node_for(dc, key).records.get(key)
        return record.value if record is not None else None

    def total_pending_options(self) -> int:
        """Pending options across all replicas (invariant checks)."""
        return sum(
            len(record.pending)
            for nodes in self.nodes.values()
            for node in nodes
            for record in node.records.values()
        )
