"""PLANET reproduction: predictive latency-aware networked transactions.

A from-scratch Python implementation of the system described in
"PLANET: Making Progress with Commit Processing in Unpredictable
Environments" (Pang, Kraska, Franklin, Fekete — SIGMOD 2014),
including every substrate it runs on:

* :mod:`repro.sim` — deterministic discrete-event kernel (virtual ms);
* :mod:`repro.net` — WAN latency models, topology, transport, RPC;
* :mod:`repro.storage` / :mod:`repro.paxos` / :mod:`repro.mdcc` — the
  geo-replicated MDCC classic commit protocol;
* :mod:`repro.core` — the PLANET programming model, commit-likelihood
  model (eqs. 1-9), statistics, admission control;
* :mod:`repro.baseline` — the traditional timeout-only model;
* :mod:`repro.workload` / :mod:`repro.harness` — the TPC-W-like buy
  benchmark and the experiment runner for every figure in §6.

Quickstart::

    from repro import quick_cluster, PlanetSession, WriteOp, Update

    env, cluster = quick_cluster(seed=1)
    cluster.load({"item:1": 100})
    session = PlanetSession(cluster, "web", datacenter=0)
    (session.transaction([WriteOp("item:1", Update.delta(-1))],
                         timeout_ms=300)
     .on_failure(lambda info: print("error", info.state))
     .on_accept(lambda info: print("thanks for your order!"))
     .on_complete(lambda info: print("done:", info.state))
     .finally_callback(lambda info: print("final:", info.state))
     ).execute()
    env.run()
"""

from repro.baseline import TraditionalClient, TraditionalOutcome
from repro.core import (
    CommitLikelihoodModel,
    DynamicPolicy,
    FINISH_TX,
    FixedPolicy,
    NoAdmission,
    OracleLatencySource,
    PlanetSession,
    StatisticsService,
    Tx,
    TxInfo,
    TxState,
)
from repro.harness import Experiment, ExperimentConfig, MetricsCollector
from repro.mdcc import Cluster
from repro.net import Topology, ec2_five_dc, uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CommitLikelihoodModel",
    "DynamicPolicy",
    "Environment",
    "Experiment",
    "ExperimentConfig",
    "FINISH_TX",
    "FixedPolicy",
    "MetricsCollector",
    "NoAdmission",
    "OracleLatencySource",
    "PlanetSession",
    "RandomStreams",
    "StatisticsService",
    "Topology",
    "TraditionalClient",
    "TraditionalOutcome",
    "Tx",
    "TxInfo",
    "TxState",
    "Update",
    "WriteOp",
    "ec2_five_dc",
    "quick_cluster",
    "uniform_topology",
]


def quick_cluster(seed: int = 0, topology: str = "ec2", **kwargs):
    """Convenience: an environment plus a five-DC cluster in one call.

    Returns ``(env, cluster)``.  ``topology`` is ``"ec2"`` (the paper's
    five regions) or ``"uniform"`` (pass ``n`` and ``one_way_ms``).
    """
    env = Environment()
    streams = RandomStreams(seed=seed)
    if topology == "ec2":
        topo = ec2_five_dc()
    elif topology == "uniform":
        topo = uniform_topology(kwargs.pop("n", 3),
                                one_way_ms=kwargs.pop("one_way_ms", 40.0))
    else:
        raise ValueError(f"unknown topology {topology!r}")
    cluster = Cluster(env, topo, streams, **kwargs)
    return env, cluster
