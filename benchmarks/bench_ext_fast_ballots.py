"""Extension: MDCC classic vs fast ballots on the EC2-2014 topology.

Fast ballots let the transaction manager propose options straight to
the storage replicas under a ⌈3N/4⌉ quorum — one fewer WAN message
delay than the classic propose → leader → phase2a → phase2b chain —
at the cost of a larger quorum and a classic recovery whenever
concurrent proposers collide on a record.  This sweep runs the same
buy workload in both protocol modes across client rates and compares
commit throughput, commit latency, and how often the fast path
actually resolved without falling back.
"""

from _common import base_config, emit
from repro.harness import Experiment

RATES_TPS = [50, 150, 300]
N_ITEMS = 20_000


def run_sweep():
    results = {}
    for rate in RATES_TPS:
        for mode in ("classic", "fast"):
            config = base_config(
                name=f"ext-fast-{mode}-{rate}", mode=mode,
                n_items=N_ITEMS, rate_tps=float(rate),
                round_timeout_ms=2_000.0, timeout_ms=5_000.0)
            experiment = Experiment(config)
            result = experiment.run()
            tms = [session.tm for session in experiment.sessions]
            results[(mode, rate)] = (
                result.metrics,
                sum(tm.fast_chosen for tm in tms),
                sum(tm.fallbacks for tm in tms),
            )
    return results


def test_ext_fast_ballots(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for rate in RATES_TPS:
        classic, _, _ = results[("classic", rate)]
        fast, chosen, fallbacks = results[("fast", rate)]
        total_rounds = chosen + fallbacks
        fast_share = 100.0 * chosen / total_rounds if total_rounds else 0.0
        rows.append([
            rate,
            round(classic.commit_tps(), 1),
            round(fast.commit_tps(), 1),
            round(classic.percentile_response_ms(0.50), 1),
            round(fast.percentile_response_ms(0.50), 1),
            round(classic.percentile_response_ms(0.95), 1),
            round(fast.percentile_response_ms(0.95), 1),
            round(fast_share, 1),
            fallbacks,
        ])
    emit("ext_fast_ballots",
         ["rate tps", "classic tps", "fast tps",
          "classic p50 ms", "fast p50 ms",
          "classic p95 ms", "fast p95 ms",
          "fast-path %", "fallbacks"],
         rows,
         title=("Extension: classic vs fast ballots "
                "(EC2 five-DC topology, uniform access)"),
         notes=("fast-path % = fast rounds resolved without classic "
                "recovery; each saves one WAN message delay."))

    for rate in RATES_TPS:
        classic, _, _ = results[("classic", rate)]
        fast, chosen, _ = results[("fast", rate)]
        # The fast path must actually be taken, and with uniform access
        # (negligible contention) its saved message delay must show up
        # as a lower median commit latency.
        assert chosen > 0
        assert fast.n_committed > 0
        assert (fast.percentile_response_ms(0.50)
                < classic.percentile_response_ms(0.50))
