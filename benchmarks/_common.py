"""Shared plumbing for the figure benchmarks.

Every benchmark prints the same rows/series the paper's figure plots
and also writes them under ``benchmarks/results/`` so the output
survives pytest's capture.  ``PLANET_BENCH_SCALE`` (a float, default
1.0) scales the virtual measurement windows — e.g. 0.3 for a quick
smoke pass, 2.0 for tighter confidence intervals.  ``PLANET_BENCH_POOL``
sets the worker-pool size figure sweeps fan out over (default 1 =
serial; 0 = one worker per CPU) — results are identical either way,
only the wall-clock changes.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import List, Sequence

from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    default_pool_size,
    format_table,
    run_experiments,
)

SCALE = float(os.environ.get("PLANET_BENCH_SCALE", "1.0"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def windows(warmup_ms: float = 12_000.0, duration_ms: float = 24_000.0,
            drain_ms: float = 12_000.0) -> dict:
    """Scaled warmup/measure/drain windows (virtual ms)."""
    return {
        "warmup_ms": max(warmup_ms * SCALE, 2_000.0),
        "duration_ms": max(duration_ms * SCALE, 4_000.0),
        "drain_ms": max(drain_ms * SCALE, 2_000.0),
    }


def base_config(**kwargs) -> ExperimentConfig:
    """The paper's §6.1 defaults: EC2 five-DC topology, buy workload.

    ``storage_service_ms`` models the finite capacity of the paper's
    m1.large storage servers (0.8 ms per message puts the knee of the
    saturation curve in the few-hundred-TPS range, like the testbed).
    """
    defaults = dict(topology="ec2", seed=1234, oracle_samples=1500,
                    storage_service_ms=0.8)
    defaults.update(windows())
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def pool_size() -> int:
    """Sweep fan-out width from ``PLANET_BENCH_POOL`` (default serial)."""
    raw = os.environ.get("PLANET_BENCH_POOL", "1").strip()
    value = int(raw) if raw else 1
    return default_pool_size() if value == 0 else max(1, value)


def run_all(configs: Sequence[ExperimentConfig]) -> List[ExperimentResult]:
    """Run a figure's sweep, fanned out over the configured pool.

    The merge is deterministic: results come back in config order, and
    each equals what a serial ``Experiment(config).run()`` produces.
    """
    return run_experiments(configs, processes=pool_size())


def emit(name: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
         title: str, notes: str = "") -> str:
    """Print a figure's table and persist it under results/.

    Writes both a human-readable ``.txt`` and a machine-readable
    ``.csv`` (for plotting the series with external tools).
    """
    table = format_table(headers, rows, title=title)
    if notes:
        table = f"{table}\n{notes}"
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    with (RESULTS_DIR / f"{name}.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return table
