"""Extension: PLANET under Zipfian (power-law) access skew.

The paper's contention knob is a uniform hotspot; real catalogues are
closer to Zipfian.  This extension sweeps the Zipf exponent on a
50 000-item table at 200 TPS and compares the traditional model
against PLANET with speculation + Dynamic(50) admission control —
checking that the paper's conclusions (PLANET at least matches
goodput, responds much faster, keeps mis-speculation bounded) carry
over to power-law skew.
"""

from _common import base_config, emit
from repro.core import DynamicPolicy
from repro.harness import Experiment

EXPONENTS = [0.6, 0.9, 1.1]
N_ITEMS = 50_000
RATE_TPS = 200.0


def run_sweep():
    results = {}
    for s in EXPONENTS:
        for system in ("traditional", "planet"):
            config = base_config(
                name=f"ext-zipf-{system}-{s}", system=system,
                n_items=N_ITEMS, zipf_s=s, rate_tps=RATE_TPS,
                timeout_ms=5_000.0,
                spec_threshold=0.95 if system == "planet" else None,
                admission=DynamicPolicy(50) if system == "planet" else None)
            results[(system, s)] = Experiment(config).run()
    return results


def test_ext_zipfian(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for s in EXPONENTS:
        trad = results[("traditional", s)].metrics
        planet = results[("planet", s)].metrics
        rows.append([
            s,
            round(trad.commit_tps(), 1),
            round(100 * trad.abort_rate(), 1),
            round(planet.commit_tps(), 1),
            round(100 * planet.abort_rate(), 1),
            round(planet.mean_response_ms(), 1),
            round(trad.mean_response_ms(), 1),
            round(100 * planet.spec_incorrect_fraction(), 1),
        ])
    emit("ext_zipfian",
         ["zipf s", "no-PLANET tps", "no-PLANET abort %", "PLANET tps",
          "PLANET abort %", "PLANET resp ms", "no-PLANET resp ms",
          "incorrect spec %"],
         rows,
         title=("Extension: Zipfian skew sweep "
                "(50k items, 200 TPS, spec 0.95 + Dyn(50))"))
    for row in rows:
        s, trad_tps, _ta, planet_tps, _pa, p_resp, t_resp, bad_spec = row
        assert planet_tps >= 0.85 * trad_tps   # goodput at least held
        assert p_resp < t_resp                 # much faster responses
        assert bad_spec <= 12.0                # speculation error bounded
    # Contention grows with the exponent for the baseline.
    trad_aborts = [row[2] for row in rows]
    assert trad_aborts[-1] > trad_aborts[0]
