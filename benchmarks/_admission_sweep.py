"""Shared sweep for Figures 12 & 13 (admission-control policies).

Setup (§6.7): 25 000 items, 50-item hotspot, single-item transactions,
speculation off, 5 s timeout.  For ``Fixed(T, *)`` the swept parameter
is the attempt rate; for ``Dynamic(*)`` it is the threshold.  Each
figure reports total and hotspot commit throughput per policy/parameter.

The paper's admission-control benefit is a *resource* effect as much
as a contention effect: every attempted option costs a Paxos round —
a synchronous log write on each m1.large replica — whether it is
accepted or rejected.  We model that disk-bound cost with a heavier
``phase2a`` service time, which puts the no-admission configurations
at the saturation point the testbed exhibited.
"""

from _common import base_config, emit, run_all, windows
from repro.core import DynamicPolicy, FixedPolicy

PARAMS = [0, 10, 40, 70, 100]
N_ITEMS = 25_000
HOTSPOT = 50


def make_policy(family: str, param: int):
    if family == "Dyn":
        return DynamicPolicy(param)
    threshold = int(family[1:])  # "F20" -> 20
    return FixedPolicy(threshold, param)


FAMILIES = ["Dyn", "F20", "F40", "F60"]


def run_sweep(rate_tps: float):
    """All (family, param) cells, fanned out across the bench pool.

    The cells are independent runs, so they shard cleanly; the result
    dict is rebuilt from the ordered result list, making the merge
    independent of which worker finished first.
    """
    cells = [(family, param) for family in FAMILIES for param in PARAMS]
    configs = [
        base_config(
            name=f"fig12-{family}-{param}-{rate_tps}", system="planet",
            n_items=N_ITEMS, hotspot_size=HOTSPOT, rate_tps=rate_tps,
            timeout_ms=5_000.0, min_items=1, max_items=1,
            admission=make_policy(family, param),
            storage_service_overrides={"phase2a": 5.5},
            **windows(warmup_ms=8_000, duration_ms=16_000,
                      drain_ms=20_000))
        for family, param in cells
    ]
    return {cell: result.metrics
            for cell, result in zip(cells, run_all(configs))}


def report(figure: str, rate_tps: float, results) -> list:
    headers = ["parameter"]
    for family in FAMILIES:
        headers += [f"{family}(*) total", f"{family}(*) hot"]
    rows = []
    for param in PARAMS:
        row = [param]
        for family in FAMILIES:
            metrics = results[(family, param)]
            row.append(round(metrics.commit_tps(), 1))
            row.append(round(metrics.commit_tps(hot=True), 1))
        rows.append(row)
    emit(figure, headers, rows,
         title=(f"Figure {figure[-2:]}: admission-control commit rates, "
                f"{rate_tps:.0f} TPS client rate "
                "(25k items, 50-item hotspot, 1-item txns)"))
    return rows
