"""Extension: chaos-scenario catalogue degradation/recovery figure.

Runs every named scenario of :mod:`repro.scenarios` — whole-DC outage
with failover, correlated WAN brownout, diurnal flash crowd, Zipfian
hot-key storm, mixed tenants — under both admission arms and emits
the paper-style recovery table: commit throughput, commit-rate dip
depth during the disturbance, time-to-recover to 95 % of the
pre-fault baseline, and p99 latency inflation.  This is the figure
behind the scenario CI gate (docs/scenarios.md): the same metrics the
``scenarios`` job enforces, swept at benchmark scale.
"""

from dataclasses import replace

from _common import SCALE, emit
from repro.scenarios import SMOKE, SCENARIOS, run_scenario


def _profile():
    """The smoke profile with ``PLANET_BENCH_SCALE``-scaled windows."""
    return replace(
        SMOKE, label="bench",
        warmup_ms=max(SMOKE.warmup_ms * SCALE, 2_000.0),
        duration_ms=max(SMOKE.duration_ms * SCALE, 6_000.0),
        drain_ms=max(SMOKE.drain_ms * SCALE, 2_000.0),
    )


def run_sweep():
    profile = _profile()
    return [run_scenario(scenario, profile, seed=0)
            for scenario in SCENARIOS]


def test_ext_scenarios(benchmark):
    reports = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for report in reports:
        for arm in report.arms:
            rows.append([
                report.scenario,
                str(arm.arm),
                round(arm.commit_tps, 1),
                round(arm.baseline_rate, 1),
                round(arm.dip_depth, 2),
                ("never" if arm.recovery_ms is None
                 else round(arm.recovery_ms)),
                round(arm.p99_inflation, 2),
            ])
    emit("ext_scenarios",
         ["scenario", "arm", "commit tps", "baseline/s", "dip depth",
          "recover ms", "p99 inflation"],
         rows,
         title=("Extension: named chaos scenarios — degradation and "
                "recovery (95 % of pre-fault commit rate)"),
         notes=("dip depth = 1 - (lowest windowed commit rate / "
                "baseline); recover ms = virtual time from disturbance "
                "end until the rate sustains 95 % of baseline."))

    # Every scenario must degrade measurably *and* recover: a scenario
    # that never recovers would also fail the scenarios CI gate.
    for report in reports:
        assert report.arms, report.scenario
        for arm in report.arms:
            assert arm.recovered, f"{report.scenario} {arm.arm}"
        assert any(arm.dip_depth > 0.0 for arm in report.arms) or all(
            arm.recovery_ms == 0.0 for arm in report.arms)
