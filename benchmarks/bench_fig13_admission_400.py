"""Figure 13: admission-control policy sweep at a 400 TPS client rate.

Paper's observations at high load: admission control buys a higher
total commit rate than attempting everything; Dynamic with a high
threshold performs well; ``Dyn(0)`` (no admission control at all) is
the weak point of the Dynamic family.
"""

from _admission_sweep import FAMILIES, PARAMS, report, run_sweep


def test_fig13_admission_400(benchmark):
    results = benchmark.pedantic(run_sweep, args=(400.0,), rounds=1,
                                 iterations=1)
    rows = report("fig13", 400.0, results)

    by = {(family, param): results[(family, param)]
          for family in FAMILIES for param in PARAMS}
    no_ac = by[("Dyn", 0)].commit_tps()  # Dyn(0) == no admission control
    best_dyn = max(by[("Dyn", p)].commit_tps() for p in PARAMS[1:])
    # Under high contention, admission control beats no admission
    # control on total commits.
    assert best_dyn > no_ac
    # A high-threshold Dynamic policy is competitive with the best
    # configuration overall (the paper's recommended default).
    best_overall = max(by[key].commit_tps() for key in by)
    assert by[("Dyn", 100)].commit_tps() > 0.8 * best_overall
