"""Figure 1: round-trip response times between EC2 regions.

The paper's Figure 1 plots RPC round trips over four days, showing
~100 ms averages with spikes beyond 800 ms.  This benchmark samples
the calibrated latency models for the same region pairs and reports
mean / p50 / p99 / max round trips plus the spike count, which is the
series the figure visualizes.
"""

import random

from _common import emit
from repro.net import ec2_five_dc


PAIRS = [
    ("us-west", "eu"),
    ("us-east", "eu"),
    ("us-west", "tokyo"),
    ("us-east", "tokyo"),
]
SAMPLES = 20_000


def run_fig01():
    topo = ec2_five_dc()  # default: log-normal body + rare spikes
    rng = random.Random(99)
    rows = []
    for name_a, name_b in PAIRS:
        a, b = topo.index_of(name_a), topo.index_of(name_b)
        forward, backward = topo.latency(a, b), topo.latency(b, a)
        rtts = sorted(forward.sample(rng) + backward.sample(rng)
                      for _ in range(SAMPLES))
        mean = sum(rtts) / len(rtts)
        p50 = rtts[len(rtts) // 2]
        p99 = rtts[int(len(rtts) * 0.99)]
        spikes = sum(1 for rtt in rtts if rtt > 800.0)
        rows.append([f"{name_a} - {name_b}", round(mean, 1), round(p50, 1),
                     round(p99, 1), round(rtts[-1], 1), spikes])
    return rows


def test_fig01_rtt(benchmark):
    rows = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    emit("fig01", ["region pair", "mean ms", "p50 ms", "p99 ms", "max ms",
                   f"spikes>800ms (of {SAMPLES})"],
         rows,
         title="Figure 1: EC2 inter-region round trips (model samples)",
         notes=("Shape check: ~100ms-class medians, heavy upper tail with "
                "occasional spikes beyond 800ms, as in the paper's trace."))
    # Shape assertions: tight body, heavy tail.
    for _pair, _mean, p50, p99, mx, _spikes in rows:
        assert 60.0 < p50 < 320.0
        assert mx > p99
    assert any(row[4] > 800.0 for row in rows)  # at least one spike seen
