"""Figure 9: CDF of commit response times, with and without PLANET.

Same setup as Figure 8 (50 000 items, 100-item hotspot) at client
rates of 100 / 300 / 500 TPS.  The paper's shape: the PLANET curves
sit left of (faster than) the corresponding baseline curves, largely
because speculative commits resolve cold-spot transactions at
likelihood-evaluation time.
"""

from _common import base_config, emit
from repro.core import DynamicPolicy
from repro.harness import Experiment

RATES_TPS = [100, 300, 500]
POINTS_MS = [50, 100, 200, 300, 500, 750, 1000, 1500, 2000, 3000]
N_ITEMS = 50_000
HOTSPOT = 100


def run_sweep():
    curves = {}
    for rate in RATES_TPS:
        for system in ("traditional", "planet"):
            config = base_config(
                name=f"fig09-{system}-{rate}", system=system,
                n_items=N_ITEMS, hotspot_size=HOTSPOT, rate_tps=float(rate),
                timeout_ms=5_000.0,
                spec_threshold=0.95 if system == "planet" else None,
                admission=DynamicPolicy(50) if system == "planet" else None)
            result = Experiment(config).run()
            curves[(system, rate)] = result.metrics.response_cdf(POINTS_MS)
    return curves


def test_fig09_latency_cdf(benchmark):
    curves = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headers = ["response ms"] + [
        f"{'PLANET' if system == 'planet' else 'no-PLANET'} ({rate} tps)"
        for system in ("traditional", "planet") for rate in RATES_TPS
    ]
    rows = []
    for i, point in enumerate(POINTS_MS):
        row = [point]
        for system in ("traditional", "planet"):
            for rate in RATES_TPS:
                row.append(round(100 * curves[(system, rate)][i], 1))
        rows.append(row)
    emit("fig09", headers, rows,
         title=("Figure 9: commit response time CDF in % "
                "(50k items, 100-item hotspot)"))

    # Shape: at every probe point and rate, PLANET's CDF dominates
    # (is at least as high as) the baseline's.
    for rate in RATES_TPS:
        planet = curves[("planet", rate)]
        trad = curves[("traditional", rate)]
        dominated = sum(1 for p, t in zip(planet, trad) if p + 1e-9 >= t)
        assert dominated >= len(POINTS_MS) - 1
        # Speculation gives PLANET a fast-response mass the baseline
        # cannot have (sub-100ms commits across WAN quorums).
        assert planet[1] > trad[1]
