"""Figure 8: commit throughput (goodput) vs. client request rate.

Setup (§6.5): 50 000 items, 100-item hotspot (90 % hot), varying the
aggregate client request rate.  PLANET runs Dynamic(50) admission
control + speculative commits at 0.95; the baseline attempts
everything.  The paper's shape: the baseline's goodput peaks early and
collapses under thrashing, while PLANET keeps climbing to a several-
fold advantage at high request rates.
"""

from _common import base_config, emit, windows
from repro.core import DynamicPolicy
from repro.harness import Experiment

RATES_TPS = [50, 100, 200, 300, 400, 600]
N_ITEMS = 50_000
HOTSPOT = 100


def run_sweep():
    rows = []
    for rate in RATES_TPS:
        per_system = {}
        for system in ("traditional", "planet"):
            config = base_config(
                name=f"fig08-{system}-{rate}", system=system,
                n_items=N_ITEMS, hotspot_size=HOTSPOT, rate_tps=float(rate),
                timeout_ms=5_000.0,
                spec_threshold=0.95 if system == "planet" else None,
                admission=DynamicPolicy(50) if system == "planet" else None,
                # Saturated runs need a long drain so queued decisions
                # resolve before the records are finalized.
                **windows(warmup_ms=12_000, duration_ms=24_000,
                          drain_ms=40_000))
            per_system[system] = Experiment(config).run()
        rows.append((rate, per_system))
    return rows


def test_fig08_goodput(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for rate, results in sweep:
        planet = results["planet"].metrics
        trad = results["traditional"].metrics
        table.append([
            rate,
            round(trad.commit_tps(), 1),
            round(100 * trad.abort_rate(), 1),
            round(planet.commit_tps(), 1),
            round(100 * planet.abort_rate(), 1),
            round(planet.rejected_tps(), 1),
        ])
    emit("fig08",
         ["client rate tps", "no-PLANET commit tps", "no-PLANET abort %",
          "PLANET commit tps", "PLANET abort %", "PLANET rejected tps"],
         table,
         title=("Figure 8: goodput vs client request rate "
                "(50k items, 100-item hotspot)"))

    # Shape checks: PLANET >= baseline at every rate; the gap widens
    # with load, and the baseline's goodput saturates or degrades while
    # PLANET keeps improving.
    for row in table:
        assert row[3] >= row[1] * 0.9
    high = table[-1]
    assert high[3] > high[1] * 1.5  # clear advantage at the highest rate
    baseline_peak = max(row[1] for row in table)
    planet_peak = max(row[3] for row in table)
    assert planet_peak > baseline_peak
