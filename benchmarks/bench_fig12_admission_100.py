"""Figure 12: admission-control policy sweep at a 100 TPS client rate.

Paper's observations at low load: all policies perform comparably;
aggressively rejecting hotspot transactions (Fixed with a tiny attempt
rate and a high threshold) under-utilizes the hotspot, while Dynamic
keeps the hotspot busy at every threshold.
"""

from _admission_sweep import FAMILIES, PARAMS, report, run_sweep


def test_fig12_admission_100(benchmark):
    results = benchmark.pedantic(run_sweep, args=(100.0,), rounds=1,
                                 iterations=1)
    rows = report("fig12", 100.0, results)

    by = {(family, param): results[(family, param)]
          for family in FAMILIES for param in PARAMS}
    totals = [by[key].commit_tps() for key in by]
    # The paper's observation at 100 TPS: contention is not strong
    # enough for the policies to diverge much — all land in one band.
    assert min(totals) > 0.55 * max(totals)
    # The permissive corners (no admission control) are healthy.
    assert by[("Dyn", 0)].commit_tps() > 0.55 * 100.0
    assert by[("F60", 100)].commit_tps() > 0.55 * 100.0
    # The hotspot stays utilized under every Dynamic threshold (it
    # never collapses toward zero the way an over-aggressive filter
    # would push it).
    dyn_hot = [by[("Dyn", p)].commit_tps(hot=True) for p in PARAMS]
    assert min(dyn_hot) > 0.25 * max(dyn_hot)
