"""Ablation: discrete-PMF likelihood math vs Monte-Carlo ground truth.

DESIGN.md decision #3 evaluates equations 1-9 on fixed-width
histograms.  This ablation measures (a) the cost of the §5.2.4 matrix
precomputation on the five-DC topology and (b) the accuracy of the
per-record likelihood against a direct Monte-Carlo simulation of the
conflict window.
"""

import math
import random

from _common import emit
from repro.core import CommitLikelihoodModel, OracleLatencySource
from repro.net import ec2_five_dc
from repro.sim import RandomStreams

RATES = [0.0001, 0.0005, 0.002, 0.008]
MC_TRIALS = 3000


def build_model():
    streams = RandomStreams(seed=17)
    topo = ec2_five_dc(spike_prob=0.0)
    matrix = OracleLatencySource(topo, streams, samples=1500,
                                 bin_ms=2.0, n_bins=1024).latency_matrix()
    model = CommitLikelihoodModel(matrix, [0.2] * 5)
    model.precompute()
    return topo, model


def monte_carlo(topo, rate, client_dc=0, leader_dc=1, trials=MC_TRIALS):
    rng = random.Random(23)
    n = len(topo)

    def one_way(a, b):
        if a == b:
            return 0.25
        return topo.latency(a, b).sample(rng)

    acc = 0.0
    for _ in range(trials):
        leader_prev = rng.randrange(n)
        previous_client = rng.randrange(n)
        # quorum of 3 out of 5 at the previous leader (local vote ~0):
        rtts = sorted(
            one_way(leader_prev, b) + one_way(b, leader_prev)
            for b in range(n) if b != leader_prev)
        quorum = rtts[1]  # 3rd of 5 overall = 2nd remote round trip
        window = (quorum
                  + one_way(leader_prev, previous_client)
                  + one_way(previous_client, client_dc)
                  + one_way(client_dc, leader_dc))
        acc += math.exp(-rate * window)
    return acc / trials


def test_likelihood_precompute_cost(benchmark):
    benchmark.pedantic(build_model, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    emit("ablation_likelihood_cost",
         ["metric", "value"],
         [["5x5 matrix precompute seconds", round(seconds, 3)]],
         title=("Ablation: cost of the likelihood-matrix precomputation "
                "(5 DCs, 1024 bins)"))
    assert seconds < 10.0  # cheap enough to refresh on a stats window


def test_likelihood_accuracy_vs_monte_carlo(benchmark):
    topo, model = benchmark.pedantic(build_model, rounds=1, iterations=1)
    rows = []
    for rate in RATES:
        predicted = model.record_likelihood(0, 1, rate)
        ground = monte_carlo(topo, rate)
        rows.append([rate, round(predicted, 4), round(ground, 4),
                     round(abs(predicted - ground), 4)])
    emit("ablation_likelihood_accuracy",
         ["lambda (1/ms)", "model P(commit)", "monte carlo", "abs error"],
         rows,
         title=("Ablation: per-record likelihood vs Monte-Carlo "
                "ground truth (client=us-west, leader=us-east)"))
    for _rate, _predicted, _ground, error in rows:
        assert error < 0.06
