"""Ablation: likelihood-based vs probing-based admission control.

§4.2 / §7: PLANET's admission control differs from classical adaptive
load control ([18]) by *predicting* each transaction's commit chance
instead of probing a single global admit rate.  This ablation runs a
contended, resource-tight operating point under (a) no admission
control, (b) the adaptive probing baseline, and (c) Dynamic(100), and
compares goodput and wasted work (aborts).
"""

from _common import base_config, emit, windows
from repro.core import DynamicPolicy, NoAdmission
from repro.core.admission import AdaptiveProbingPolicy
from repro.harness import Experiment

RATE_TPS = 400.0
N_ITEMS = 25_000
HOTSPOT = 50


def run_variants():
    variants = {}
    for label in ("none", "adaptive", "dynamic"):
        config = base_config(
            name=f"ablation-admission-{label}", system="planet",
            n_items=N_ITEMS, hotspot_size=HOTSPOT, rate_tps=RATE_TPS,
            timeout_ms=5_000.0, min_items=1, max_items=1,
            storage_service_overrides={"phase2a": 5.5},
            need_model=True,
            **windows(warmup_ms=8_000, duration_ms=16_000,
                      drain_ms=20_000))
        experiment = Experiment(config)
        if label == "none":
            policy = NoAdmission()
        elif label == "adaptive":
            policy = AdaptiveProbingPolicy(experiment.env,
                                           probe_interval_ms=2_000.0)
        else:
            policy = DynamicPolicy(100)
        config.admission = policy
        for session in experiment.sessions:
            session.admission = policy
        variants[label] = Experiment.run(experiment)
    return variants


def test_ablation_admission_policies(benchmark):
    variants = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = []
    for label in ("none", "adaptive", "dynamic"):
        metrics = variants[label].metrics
        rows.append([
            label,
            round(metrics.commit_tps(), 1),
            round(metrics.commit_tps(hot=True), 1),
            round(metrics.abort_tps(), 1),
            round(metrics.rejected_tps(), 1),
        ])
    emit("ablation_admission",
         ["policy", "commit tps", "hot commit tps", "abort tps",
          "rejected tps"],
         rows,
         title=("Ablation: admission control flavours at 400 TPS "
                "(25k items, 50-item hotspot, 1-item txns)"))
    by = {row[0]: row for row in rows}
    # Both control schemes reject work; the likelihood-based one keeps
    # goodput at least competitive with probing and reduces wasted
    # aborts versus no control.
    assert by["dynamic"][4] > 0  # dynamic actually rejects
    assert by["dynamic"][3] <= by["none"][3]  # fewer wasted aborts
    assert by["dynamic"][1] >= 0.75 * max(r[1] for r in rows)
