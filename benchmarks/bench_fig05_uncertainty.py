"""Figure 5: transaction outcomes vs. timeout, Traditional vs PLANET.

Setup (§6.3): 20 000 items, uniform access, 200 TPS, onAccept enabled,
speculation and admission control off.  The figure stacks, for each
timeout value, the fraction of transactions whose outcome the
application knows at the timeout (commits/aborts), PLANET's
accepted-but-pending classes (accept-commits / accept-aborts, later
resolved through finally callbacks), and the residual unknown area.

Without speculation or admission control the timeout never changes the
protocol's behaviour, so a single run per system is reclassified
against each hypothetical timeout — the same sweep, minus sampling
noise between timeout points.
"""

from _common import base_config, emit
from repro.harness import Experiment

TIMEOUTS_MS = [50, 100, 200, 300, 400, 600, 800, 1000, 1500]


def run_fig05():
    results = {}
    for system in ("traditional", "planet"):
        config = base_config(
            name=f"fig05-{system}", system=system, n_items=20_000,
            rate_tps=200.0, timeout_ms=10_000.0, use_on_accept=True)
        results[system] = Experiment(config).run()
    return results


def classify(metrics, timeout_ms):
    breakdown = metrics.outcome_breakdown(timeout_ms)
    return {key: 100.0 * breakdown.get(key, 0.0)
            for key in ("commit", "abort", "accept-commit", "accept-abort",
                        "unknown")}


def test_fig05_uncertainty(benchmark):
    results = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    for system, label in (("traditional", "Traditional"),
                          ("planet", "PLANET")):
        metrics = results[system].metrics
        rows = []
        for timeout in TIMEOUTS_MS:
            shares = classify(metrics, timeout)
            rows.append([timeout,
                         round(shares["commit"], 1),
                         round(shares["abort"], 1),
                         round(shares["accept-commit"], 1),
                         round(shares["accept-abort"], 1),
                         round(shares["unknown"], 1)])
        emit(f"fig05_{system}",
             ["timeout ms", "commits %", "aborts %", "accept-commits %",
              "accept-aborts %", "unknown %"],
             rows,
             title=(f"Figure 5 ({label}): outcome breakdown vs timeout "
                    "(20k items, uniform, 200 TPS)"))

    # Shape checks: PLANET's unknown area collapses into the accepted
    # classes; at generous timeouts both systems know everything.
    planet = classify(results["planet"].metrics, 300)
    traditional = classify(results["traditional"].metrics, 300)
    assert planet["unknown"] < traditional["unknown"]
    assert planet["accept-commit"] + planet["accept-abort"] > 0
    assert classify(results["planet"].metrics, 1500)["unknown"] < 5.0
    # At a 300ms timeout the traditional model leaves a substantial
    # fraction of transactions in the dark.
    assert traditional["unknown"] > 10.0
