"""Ablation: raw event throughput of the discrete-event kernel.

DESIGN.md decision #1 replaces wall-clock execution with virtual time;
this measures what that buys: how many kernel events per second the
simulator sustains, for bare timers and for transport messages.
"""

from _common import emit
from repro.net import Message, Transport, uniform_topology
from repro.sim import Environment, RandomStreams

N_EVENTS = 50_000


def run_timers():
    env = Environment()

    def ticker(env):
        for _ in range(N_EVENTS):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def run_messages():
    env = Environment()
    topo = uniform_topology(3, one_way_ms=10.0, sigma=0.05)
    transport = Transport(env, topo, RandomStreams(seed=1))
    received = [0]
    transport.register("sink", 1, lambda m: received.__setitem__(
        0, received[0] + 1))

    def sender(env):
        for i in range(N_EVENTS):
            transport.send(0, Message(src="src", dst="sink", kind="k",
                                      payload=i,
                                      msg_id=transport.next_msg_id()))
            if i % 64 == 0:
                yield env.timeout(0.1)

    env.process(sender(env))
    env.run()
    assert received[0] == N_EVENTS
    return received[0]


def test_kernel_timer_throughput(benchmark):
    benchmark.pedantic(run_timers, rounds=3, iterations=1)
    stats = benchmark.stats.stats
    rate = N_EVENTS / stats.mean
    emit("ablation_kernel_timers",
         ["metric", "value"],
         [["timer events", N_EVENTS],
          ["mean seconds", round(stats.mean, 3)],
          ["events/sec", round(rate)]],
         title="Ablation: kernel timer-event throughput")
    assert rate > 50_000  # virtual time must be far beyond real time


def test_kernel_message_throughput(benchmark):
    benchmark.pedantic(run_messages, rounds=3, iterations=1)
    stats = benchmark.stats.stats
    rate = N_EVENTS / stats.mean
    emit("ablation_kernel_messages",
         ["metric", "value"],
         [["messages delivered", N_EVENTS],
          ["mean seconds", round(stats.mean, 3)],
          ["messages/sec", round(rate)]],
         title="Ablation: transport message throughput")
    assert rate > 30_000
