"""Figures 6 & 7: throughput and response time vs. hotspot size.

Setup (§6.4): 200 000 items, 90 % of transactions inside a hotspot of
varying size, 200 TPS target, 5 s timeout, no onAccept stage.  The
PLANET configuration enables Dynamic(50) admission control and
speculative commits at 0.95; "without PLANET" is the traditional model
on the same substrate.

Figure 6 plots commit & abort throughput per hotspot size; Figure 7
plots the average commit response time plus the fraction of commits
that were speculative.  Both figures come from the same sweep, so one
benchmark produces both tables.
"""

from _common import base_config, emit
from repro.core import DynamicPolicy
from repro.harness import Experiment

HOTSPOT_SIZES = [200, 800, 3200, 12800, 51200, None]  # None = uniform
N_ITEMS = 200_000
RATE_TPS = 200.0


def label(size):
    return "uniform" if size is None else str(size)


def run_sweep():
    rows = []
    for size in HOTSPOT_SIZES:
        per_system = {}
        for system in ("traditional", "planet"):
            config = base_config(
                name=f"fig06-{system}-{label(size)}", system=system,
                n_items=N_ITEMS, hotspot_size=size, rate_tps=RATE_TPS,
                timeout_ms=5_000.0,
                spec_threshold=0.95 if system == "planet" else None,
                admission=DynamicPolicy(50) if system == "planet" else None)
            per_system[system] = Experiment(config).run()
        rows.append((size, per_system))
    return rows


def test_fig06_fig07_hotspot(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    fig6_rows = []
    fig7_rows = []
    for size, results in sweep:
        planet = results["planet"].metrics
        trad = results["traditional"].metrics
        fig6_rows.append([
            label(size),
            round(trad.commit_tps(), 1), round(trad.abort_tps(), 1),
            round(planet.commit_tps(), 1), round(planet.abort_tps(), 1),
            round(planet.rejected_tps(), 1),
        ])
        fig7_rows.append([
            label(size),
            round(trad.mean_response_ms(), 1),
            round(planet.mean_response_ms(), 1),
            round(100.0 * planet.spec_fraction(), 1),
        ])

    emit("fig06",
         ["hotspot", "no-PLANET commit tps", "no-PLANET abort tps",
          "PLANET commit tps", "PLANET abort tps", "PLANET rejected tps"],
         fig6_rows,
         title=("Figure 6: commit & abort throughput vs hotspot size "
                "(200k items, 200 TPS, Dyn(50) + spec 0.95)"))
    emit("fig07",
         ["hotspot", "no-PLANET avg resp ms", "PLANET avg resp ms",
          "PLANET spec %"],
         fig7_rows,
         title=("Figure 7: average commit response time vs hotspot size "
                "(200k items, 200 TPS)"))

    # Shape checks from the paper:
    # 1. Large hotspots / uniform: both systems commit ~the target rate
    #    with low abort rates.
    uniform_row = fig6_rows[-1]
    assert uniform_row[1] > 0.85 * RATE_TPS
    assert uniform_row[3] > 0.85 * RATE_TPS
    # 2. Small hotspots: PLANET's commit throughput beats the baseline.
    small_row = fig6_rows[0]
    assert small_row[3] > small_row[1]
    # 3. PLANET response times at/below the baseline everywhere, and
    #    far below where speculation dominates.
    for row in fig7_rows:
        assert row[2] <= row[1] * 1.1
    assert fig7_rows[-1][3] > 50.0  # uniform: most commits speculative
