"""Figures 10 & 11: speculative-commit breakdown and latency vs data size.

Setup (§6.6): single-item transactions, uniform access over tables of
1 000 – 10 000 items, 200 TPS, speculative commits at 0.95, admission
control off, 5 s timeout.  Figure 10 stacks commits / speculative
commits / incorrect speculative commits / aborts (in TPS); Figure 11
plots the average response time (including aborts) for the same runs.

The paper's shape: at 10 000 items most transactions speculate
(77 % there), at 1 000 items almost none do; incorrect speculation
stays around the 5 % the 0.95 threshold allows; response times fall as
the data grows because more transactions can speculate.
"""

from _common import base_config, emit
from repro.harness import Experiment

DATA_SIZES = [1_000, 2_000, 4_000, 7_000, 10_000]
RATE_TPS = 200.0


def run_sweep():
    results = []
    for size in DATA_SIZES:
        config = base_config(
            name=f"fig10-{size}", system="planet", n_items=size,
            rate_tps=RATE_TPS, timeout_ms=5_000.0, min_items=1, max_items=1,
            spec_threshold=0.95)
        results.append((size, Experiment(config).run()))
    return results


def test_fig10_fig11_speculation(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    fig10_rows = []
    fig11_rows = []
    for size, result in sweep:
        metrics = result.metrics
        breakdown = metrics.commit_type_breakdown()
        fig10_rows.append([
            size,
            round(breakdown["commits"], 1),
            round(breakdown["spec"], 1),
            round(breakdown["incorrect_spec"], 2),
            round(breakdown["aborts"], 1),
            round(100 * metrics.spec_fraction(), 1),
            round(100 * metrics.spec_incorrect_fraction(), 1),
        ])
        # Figure 11 averages over all attempted transactions, aborts
        # included (the paper notes "including aborts").
        times = metrics.response_times(committed_only=False)
        mean_ms = sum(times) / len(times) if times else 0.0
        fig11_rows.append([size, round(mean_ms, 1)])

    emit("fig10",
         ["data size", "normal tps", "spec tps", "incorrect-spec tps",
          "abort tps", "spec % of commits", "incorrect % of spec"],
         fig10_rows,
         title=("Figure 10: commit types vs data size "
                "(1-item txns, uniform, 200 TPS, spec 0.95)"))
    emit("fig11",
         ["data size", "avg response ms (incl aborts)"],
         fig11_rows,
         title="Figure 11: average response time vs data size")

    # Shape checks:
    spec_shares = [row[5] for row in fig10_rows]
    # 1. Speculation grows with data size (less contention).
    assert spec_shares[-1] > spec_shares[0]
    assert spec_shares[-1] > 50.0
    # 2. Incorrect speculation stays near or below the 5% the 0.95
    #    threshold implies (paper saw 1.8%-5.8% above 1000 items).
    for row in fig10_rows[1:]:
        assert row[6] <= 12.0
    # 3. Response time falls as the data grows.
    assert fig11_rows[-1][1] < fig11_rows[0][1]
