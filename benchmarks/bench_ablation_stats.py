"""Ablation: oracle statistics vs the deployed measurement pipeline.

DESIGN.md decision #5: the statistics service measures RTTs with real
simulated probe traffic (windowed histograms, piggybacked aggregation)
while an oracle mode samples the topology directly.  This ablation
runs the same speculative workload under all three statistics modes
(oracle, hub-measured, fully distributed per-client dissemination) and
compares the speculation behaviour — if the measurement pipelines
converge, all three should be close.
"""

from _common import base_config, emit
from repro.harness import Experiment


MODES = ("oracle", "measured", "distributed")


def run_modes():
    results = {}
    for mode in MODES:
        config = base_config(
            name=f"ablation-stats-{mode}", system="planet",
            n_items=4_000, rate_tps=150.0, min_items=1, max_items=1,
            timeout_ms=5_000.0, spec_threshold=0.95, stats_mode=mode,
            ping_interval_ms=500.0)
        results[mode] = Experiment(config).run()
    return results


def test_stats_oracle_vs_measured(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        metrics = results[mode].metrics
        rows.append([
            mode,
            round(metrics.commit_tps(), 1),
            round(100 * metrics.spec_fraction(), 1),
            round(100 * metrics.spec_incorrect_fraction(), 1),
            round(metrics.mean_response_ms(), 1),
        ])
    emit("ablation_stats",
         ["stats mode", "commit tps", "spec %", "incorrect spec %",
          "mean resp ms"],
         rows,
         title=("Ablation: oracle vs measured statistics "
                "(4k items, 1-item txns, 150 TPS, spec 0.95)"))
    oracle, measured, distributed = rows
    # Both measurement pipelines must reach conclusions close to the
    # oracle: similar speculation rate (within 25 points) and
    # throughput (10%).
    for pipeline in (measured, distributed):
        assert abs(oracle[2] - pipeline[2]) < 25.0
        assert abs(oracle[1] - pipeline[1]) < 0.1 * oracle[1] + 5
