"""MDCC fast ballots: unit, end-to-end, and span-level acceptance.

Three layers, mirroring the implementation:

* ballot/acceptor units — fast ballots sort below classic ballots of
  the same round, acceptors self-assign instances and are fenced by
  classic promises, and a classic proposal cannot overwrite a
  possibly-chosen fast value;
* :class:`FastRound` resolution — quorum, collision, and
  impossibility fallbacks on hand-driven vote sequences;
* whole-cluster runs on the EC2-2014 topology — a fast-mode commit
  travels one fewer WAN delay than the same commit under classic
  mode (span-verified), and forced collisions fall back to the
  classic path with the full invariant catalogue staying clean.
"""

import pytest

from repro.check import CheckConfig, FaultAction, FaultSchedule, run_check
from repro.mdcc.cluster import Cluster
from repro.net.topology import ec2_five_dc, uniform_topology
from repro.obs import ObsSession
from repro.paxos import (
    AcceptorState,
    Ballot,
    FAST_PROPOSER,
    FastPhase2a,
    FastRound,
    Phase2a,
    fast_quorum_size,
    handle_fast2a,
    handle_phase2a,
)
from repro.sim import Environment, RandomStreams
from repro.storage.option import Decision, OptionPayload
from repro.storage.record import Update, WriteOp
from repro.workload.items import item_key


# -- ballots ----------------------------------------------------------------


def test_fast_quorum_sizes():
    # ⌈3N/4⌉: any two fast quorums intersect in > N/2 acceptors.
    assert [fast_quorum_size(n) for n in range(1, 8)] \
        == [1, 2, 3, 3, 4, 5, 6]
    with pytest.raises(ValueError):
        fast_quorum_size(0)


def test_fast_ballot_sorts_below_every_classic_ballot_of_its_round():
    fast = Ballot.fast(0)
    assert fast.is_fast and fast.proposer == FAST_PROPOSER
    # Any record master's classic ballot at the same round fences the
    # fast ballot without needing a higher round number...
    assert fast < Ballot(0, "storage/0/0")
    assert fast < Ballot(0, "storage/2/1")
    # ...while a later fast round still outranks earlier classic ones.
    assert Ballot.fast(1) > Ballot(0, "storage/2/1")
    assert not Ballot(0, "storage/0/0").is_fast


# -- acceptor fast votes ----------------------------------------------------


def _payload(txid: str) -> OptionPayload:
    return OptionPayload(txid=txid, key="k",
                         update=Update.delta(-1), decision=None)


def test_fast_votes_self_assign_consecutive_instances():
    state = AcceptorState()
    first = handle_fast2a(state, FastPhase2a("k", Ballot.fast(0),
                                             _payload("t1")),
                          Decision.ACCEPTED)
    second = handle_fast2a(state, FastPhase2a("k", Ballot.fast(0),
                                              _payload("t2")),
                           Decision.REJECTED)
    assert first.accepted and first.seq == 0
    assert first.decision is Decision.ACCEPTED
    assert second.accepted and second.seq == 1
    assert second.decision is Decision.REJECTED
    assert state.accepted[0][1].txid == "t1"
    assert state.accepted[1][1].txid == "t2"


def test_classic_promise_fences_fast_votes():
    state = AcceptorState()
    handle_phase2a(state, Phase2a("k", 0, Ballot(0, "storage/1/0"),
                                  _payload("t1")))
    vote = handle_fast2a(state, FastPhase2a("k", Ballot.fast(0),
                                            _payload("t2")),
                         Decision.ACCEPTED)
    assert not vote.accepted
    assert vote.seq == -1
    assert vote.promised == Ballot(0, "storage/1/0")
    # A later fast round outranks the old classic promise again.
    vote = handle_fast2a(state, FastPhase2a("k", Ballot.fast(1),
                                            _payload("t2")),
                         Decision.ACCEPTED)
    assert vote.accepted


def test_classic_proposal_cannot_overwrite_fast_value():
    # ⌈3N/4⌉ fast quorums leave at most ⌊N/4⌋ acceptors free of a
    # possibly-chosen fast value, so a classic different-txid proposal
    # at an occupied instance must be refused (CHK008).
    state = AcceptorState()
    handle_fast2a(state, FastPhase2a("k", Ballot.fast(0), _payload("t1")),
                  Decision.ACCEPTED)
    refused = handle_phase2a(state, Phase2a("k", 0, Ballot(0, "storage/0/0"),
                                            _payload("t2")))
    assert not refused.accepted
    assert state.accepted[0][1].txid == "t1"
    # The recovery of the *same* transaction is allowed through.
    accepted = handle_phase2a(state, Phase2a("k", 0, Ballot(0, "storage/0/0"),
                                             _payload("t1")))
    assert accepted.accepted


# -- FastRound resolution ---------------------------------------------------


class _Endpoint:
    """A hand-driven RPC stub: calls are collected, votes are injected."""

    def __init__(self, env):
        self.env = env
        self.address = "client/test"
        self.calls = []

    def call(self, replica, method, message, span=None):
        event = self.env.event()
        self.calls.append((replica, event))
        return event


class _Vote:
    def __init__(self, value):
        self.ok = True
        self.value = value


def _run_round(n_replicas, votes, quorum=None):
    """Drive one FastRound through an injected vote sequence."""
    env = Environment()
    endpoint = _Endpoint(env)
    fast2a = FastPhase2a("k", Ballot.fast(0), _payload("t1"))
    round_ = FastRound(env, endpoint, [f"storage/{i}/0"
                                       for i in range(n_replicas)],
                       fast2a, quorum=quorum)
    state = AcceptorState()
    for (_, event), vote in zip(endpoint.calls, votes):
        for callback in event.callbacks:
            callback(_Vote(vote))
        if round_.result.triggered:
            break
    assert round_.result.triggered, "round did not resolve"
    return round_.result.value


def _fast_vote(state_or_none, txid, decision, seq):
    """A FastPhase2b as an acceptor voting ``decision`` at ``seq``."""
    state = AcceptorState()
    state.accepted = {i: (Ballot.fast(0), _payload("x"))
                      for i in range(seq)}
    return handle_fast2a(state, FastPhase2a("k", Ballot.fast(0),
                                            _payload(txid)), decision)


def test_fast_round_quorum_is_chosen():
    votes = [_fast_vote(None, "t1", Decision.ACCEPTED, 0)
             for _ in range(4)]
    outcome = _run_round(5, votes)
    assert outcome.status == "chosen"
    assert outcome.reason == "quorum"
    assert outcome.seq == 0
    assert outcome.votes == 4  # resolved on the 4th of 5 votes


def test_fast_round_rejection_quorum_is_equally_fast():
    votes = [_fast_vote(None, "t1", Decision.REJECTED, 0)
             for _ in range(4)]
    outcome = _run_round(5, votes)
    assert outcome.status == "rejected"
    assert outcome.seq == 0


def test_scattered_instances_fall_back_as_a_collision():
    # Acceptors placed the value at four different instances: no
    # instance can reach the ⌈15/4⌉ = 4 quorum even with the last
    # unheard acceptor — impossibility detected one vote early.
    votes = [_fast_vote(None, "t1", Decision.ACCEPTED, seq)
             for seq in (0, 1, 2, 3)]
    outcome = _run_round(5, votes)
    assert outcome.status == "fallback"
    assert outcome.reason == "collision"


def test_fenced_round_falls_back_with_the_fenced_reason():
    fenced_state = AcceptorState()
    fenced_state.promised = Ballot(0, "storage/0/0")
    votes = [handle_fast2a(fenced_state,
                           FastPhase2a("k", Ballot.fast(0), _payload("t1")),
                           Decision.ACCEPTED)
             for _ in range(2)]
    outcome = _run_round(3, votes, quorum=2)
    assert outcome.status == "fallback"
    assert outcome.reason == "fenced"
    assert outcome.fenced == 2


def test_impossible_quorum_is_rejected_up_front():
    env = Environment()
    with pytest.raises(ValueError):
        FastRound(env, _Endpoint(env), ["a", "b", "c"],
                  FastPhase2a("k", Ballot.fast(0), _payload("t1")),
                  quorum=4)


def test_mode_is_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Cluster(env, uniform_topology(3, one_way_ms=20.0),
                RandomStreams(seed=1),
                mode="turbo")


# -- end-to-end on the EC2 topology -----------------------------------------


def _single_commit(mode):
    """One buy transaction from Virginia under ``mode``; returns
    ``(result, tm, cluster, obs artifacts)``."""
    env = Environment()
    session = ObsSession()
    session.install(env)
    cluster = Cluster(env, ec2_five_dc(spike_prob=0.0),
                      RandomStreams(seed=42), mode=mode,
                      round_timeout_ms=2_000.0)
    cluster.load({"item:1": 10})
    tm = cluster.create_client("web-0", datacenter=0)
    handle = tm.begin([WriteOp("item:1", Update.delta(-1))])
    env.run()
    session.detach(env)
    assert handle.result is not None and handle.result.committed
    return handle.result, tm, cluster, session.artifacts()


def test_fast_commit_saves_one_message_delay_on_ec2():
    classic, _, _, classic_obs = _single_commit("classic")
    fast, tm, cluster, fast_obs = _single_commit("fast")

    # The fast path was actually taken, and the learned value
    # replicated everywhere.
    assert tm.fast_chosen >= 1 and tm.fallbacks == 0
    for dc in range(5):
        assert cluster.read_value("item:1", dc=dc) == 9

    # Classic: client -> leader -> phase2a -> phase2b -> client is
    # four one-way WAN delays; fast: fast2a out, fast2b back is two.
    # With an uncontended record the saved delays must show up
    # directly in the client-perceived commit latency.
    assert fast.response_time_ms < classic.response_time_ms

    # Span-verified: the fast run resolved through a fast round (no
    # classic recovery span), the classic run never started one.
    fast_spans = {span["name"] for span in fast_obs["spans"]}
    classic_spans = {span["name"] for span in classic_obs["spans"]}
    assert "paxos.fast_round" in fast_spans
    assert "paxos.recovery" not in fast_spans
    assert "paxos.fast_round" not in classic_spans
    fast_rounds = [span for span in fast_obs["spans"]
                   if span["name"] == "paxos.fast_round"]
    assert any(span["attrs"].get("status") == "chosen"
               for span in fast_rounds)


def test_forced_collision_falls_back_and_stays_safe():
    # Three simultaneous proposers race the workload on one record;
    # the scattered instances force classic recovery, and the full
    # catalogue CHK001-CHK009 must stay clean across it.
    config = CheckConfig(seed=5, n_txns=15, n_faults=0, mode="fast",
                         n_items=2)
    horizon = config.horizon_ms()
    schedule = FaultSchedule([
        FaultAction(0.30 * horizon, "collide", None,
                    {"key": item_key(0), "n_proposers": 3}),
        FaultAction(0.55 * horizon, "collide", None,
                    {"key": item_key(1), "n_proposers": 3}),
    ])
    result = run_check(config, schedule=schedule)
    assert result.ok, result.report()
    assert result.stats["fallbacks"] >= 1, result.stats
    assert result.stats["committed"] > 0


def test_fast_mode_reports_fast_path_stats():
    result = run_check(CheckConfig(seed=1, n_txns=10, n_faults=0,
                                   mode="fast"))
    assert result.ok, result.report()
    for key in ("fast_chosen", "fallbacks", "collisions"):
        assert key in result.stats
    assert result.stats["fast_chosen"] + result.stats["fallbacks"] > 0
    # Classic runs don't grow the new keys (digest discipline).
    classic = run_check(CheckConfig(seed=1, n_txns=10, n_faults=0))
    assert "fast_chosen" not in classic.stats
