"""Tests for the cluster-internals monitoring module."""

import pytest

from repro.core import PlanetSession
from repro.harness.monitoring import ClusterSnapshot, HealthMonitor, snapshot
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def run_some_load(n_txns=10, seed=61):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed))
    cluster.load({f"item:{i}": 100 for i in range(5)})
    session = PlanetSession(cluster, "web", 0)

    def driver(env):
        for i in range(n_txns):
            (session.transaction([WriteOp(f"item:{i % 5}",
                                          Update.delta(-1))],
                                 timeout_ms=5_000)
             .on_failure(lambda info: None)).execute()
            yield env.timeout(200)

    env.process(driver(env))
    return env, cluster


def test_snapshot_counts_protocol_activity():
    env, cluster = run_some_load()
    env.run()
    snap = snapshot(cluster)
    assert snap.proposals == 10
    assert snap.options_accepted + snap.options_rejected == 10
    assert snap.clients_started == 10
    assert snap.clients_committed + snap.clients_aborted == 10
    assert snap.pending_options == 0  # everything settled
    assert snap.messages_delivered > 50
    assert snap.messages_dropped == 0
    assert snap.records_materialized >= 5


def test_snapshot_rates():
    snap = ClusterSnapshot(
        at_ms=1000.0, messages_sent=10, messages_delivered=10,
        messages_dropped=0, proposals=10, options_accepted=8,
        options_rejected=2, rounds_lost=0, pending_options=0,
        max_queue_depth=3, records_materialized=5, clients_started=10,
        clients_committed=8, clients_aborted=2)
    assert snap.option_reject_rate == pytest.approx(0.2)
    assert snap.client_commit_rate == pytest.approx(0.8)


def test_snapshot_rates_empty():
    snap = ClusterSnapshot(
        at_ms=0.0, messages_sent=0, messages_delivered=0,
        messages_dropped=0, proposals=0, options_accepted=0,
        options_rejected=0, rounds_lost=0, pending_options=0,
        max_queue_depth=0, records_materialized=0, clients_started=0,
        clients_committed=0, clients_aborted=0)
    assert snap.option_reject_rate == 0.0
    assert snap.client_commit_rate == 0.0


def test_snapshot_render():
    env, cluster = run_some_load()
    env.run()
    text = snapshot(cluster).render()
    assert "proposals" in text
    assert "commit rate" in text


def test_health_monitor_samples_over_time():
    env, cluster = run_some_load(n_txns=10)
    monitor = HealthMonitor(cluster, interval_ms=500.0)
    env.run(until=2_600)
    assert len(monitor.samples) == 5
    starts = monitor.series("clients_started")
    assert starts == sorted(starts)  # monotone counter
    deltas = monitor.deltas("clients_started")
    assert sum(deltas) == starts[-1]


def test_health_monitor_validation():
    env, cluster = run_some_load(n_txns=1)
    with pytest.raises(ValueError):
        HealthMonitor(cluster, interval_ms=0)
