"""Tests for the §5.1.3 alternative-protocol likelihood models."""

import pytest

from repro.core.histograms import Pmf
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.core.protocol_models import (
    MegastoreModel,
    QuorumStoreModel,
    TwoPhaseCommitModel,
)


def constant_matrix(n=5, rtt_ms=100.0, bin_ms=1.0, n_bins=1024):
    pmfs = {
        (a, b): Pmf.point(rtt_ms, bin_ms, n_bins)
        for a in range(n) for b in range(n) if a != b
    }
    return LatencyMatrix(n, pmfs, bin_ms, n_bins)


# ---------------------------------------------------------------- quorum store


def test_quorum_store_zero_rate_is_certain():
    model = QuorumStoreModel(constant_matrix(), read_quorum=2,
                             write_quorum=2)
    assert model.update_success_likelihood(0, 0.0) == 1.0


def test_quorum_store_likelihood_decreases_with_rate():
    model = QuorumStoreModel(constant_matrix(), read_quorum=2,
                             write_quorum=2)
    values = [model.update_success_likelihood(0, rate)
              for rate in (0.0001, 0.001, 0.01)]
    assert values == sorted(values, reverse=True)


def test_quorum_store_bigger_quorums_are_riskier():
    # Waiting for more replicas lengthens the window -> lower success.
    fast = QuorumStoreModel(constant_matrix(), read_quorum=1,
                            write_quorum=1)
    slow = QuorumStoreModel(constant_matrix(), read_quorum=4,
                            write_quorum=4)
    rate = 0.002
    assert (slow.update_success_likelihood(0, rate)
            < fast.update_success_likelihood(0, rate))


def test_quorum_store_strict_quorums_never_stale():
    model = QuorumStoreModel(constant_matrix(), read_quorum=3,
                             write_quorum=3)  # R + W > N = 5
    assert model.staleness_probability(0, 0.01) == 0.0


def test_quorum_store_partial_quorums_can_be_stale():
    model = QuorumStoreModel(constant_matrix(), read_quorum=1,
                             write_quorum=1)
    stale = model.staleness_probability(0, 0.005)
    assert 0.0 < stale < 1.0
    # Staleness grows with the write rate.
    assert model.staleness_probability(0, 0.02) > stale


def test_quorum_store_validation():
    matrix = constant_matrix()
    with pytest.raises(ValueError):
        QuorumStoreModel(matrix, read_quorum=0)
    with pytest.raises(ValueError):
        QuorumStoreModel(matrix, write_quorum=6)
    with pytest.raises(ValueError):
        QuorumStoreModel(matrix, n_replicas=9)


# ---------------------------------------------------------------- megastore


def make_mdcc_model():
    model = CommitLikelihoodModel(constant_matrix(), [0.2] * 5)
    model.precompute()
    return model


def test_megastore_requires_precomputed_base():
    raw = CommitLikelihoodModel(constant_matrix(), [0.2] * 5)
    with pytest.raises(ValueError):
        MegastoreModel(raw)


def test_megastore_partition_rate_dominates():
    base = make_mdcc_model()
    megastore = MegastoreModel(base)
    # A partition aggregating 50 records at rate r conflicts like one
    # record at 50 r — far below the per-record MDCC likelihood.
    record_rate = 0.0002
    per_record = base.record_likelihood(0, 1, record_rate)
    per_partition = megastore.partition_likelihood(0, 1, record_rate * 50)
    assert per_partition < per_record


def test_megastore_transaction_product():
    megastore = MegastoreModel(make_mdcc_model())
    single = megastore.partition_likelihood(0, 1, 0.003)
    double = megastore.transaction_likelihood(0, [(1, 0.003), (1, 0.003)])
    assert double == pytest.approx(single ** 2)


# ---------------------------------------------------------------- 2pc


def test_two_phase_commit_zero_rate_certain():
    model = TwoPhaseCommitModel(constant_matrix())
    assert model.record_likelihood(0, [1, 2], 0.0) == 1.0


def test_two_phase_commit_extra_hold_lowers_likelihood():
    rate = 0.002
    plain = TwoPhaseCommitModel(constant_matrix())
    slow = TwoPhaseCommitModel(constant_matrix(), extra_hold_ms=500.0)
    assert (slow.record_likelihood(0, [1, 2], rate)
            < plain.record_likelihood(0, [1, 2], rate))


def test_two_phase_commit_more_participants_riskier():
    model = TwoPhaseCommitModel(constant_matrix())
    rate = 0.002
    few = model.record_likelihood(0, [1], rate)
    many = model.record_likelihood(0, [1, 2, 3, 4], rate)
    assert many <= few


def test_two_phase_commit_transaction_product():
    model = TwoPhaseCommitModel(constant_matrix())
    single = model.record_likelihood(0, [1, 2], 0.002)
    double = model.transaction_likelihood(
        0, [([1, 2], 0.002), ([1, 2], 0.002)])
    assert double == pytest.approx(single ** 2)


def test_two_phase_commit_validation():
    with pytest.raises(ValueError):
        TwoPhaseCommitModel(constant_matrix(), extra_hold_ms=-1)


def test_protocol_ordering_under_same_conditions():
    """Qualitative cross-protocol comparison at one operating point:
    single-replica-quorum EC store risks least waiting, 2PC with a
    long hold risks most."""
    matrix = constant_matrix()
    rate = 0.002
    ec = QuorumStoreModel(matrix, read_quorum=1, write_quorum=1)
    mdcc = make_mdcc_model()
    tpc = TwoPhaseCommitModel(matrix, extra_hold_ms=400.0)
    p_ec = ec.update_success_likelihood(0, rate)
    p_mdcc = mdcc.record_likelihood(0, 1, rate)
    p_2pc = tpc.record_likelihood(0, [1, 2, 3, 4], rate)
    assert p_ec > p_mdcc > p_2pc
