"""AtomicityGuard: yield-point snapshots, witnesses, zero perturbation.

The guard is the dynamic half of the static RACE workflow: a
``GuardSpec`` mirrors a static finding, and a run either produces an
``AtomicityWitness`` (the interleaving is real) or demonstrates the
field never mutates across that suspension.  Its hard contract is
transparency — installing it must not change a single simulated event,
pinned here by comparing history digests with and without it.
"""

import pytest

from repro.check import (
    AtomicityGuard,
    CheckConfig,
    GuardSpec,
    default_guard,
    run_check,
)
from repro.sim import Environment
from repro.sim.kernel import Interrupt


class Counter:
    """A deliberately racy service: the handler mutates ``items``
    while the main loop is suspended."""

    def __init__(self, env):
        self.env = env
        self.items = []
        self.epoch = 0

    def loop(self):
        snapshot = self.items
        yield self.env.timeout(10)
        return len(snapshot)

    def mutate(self):
        yield self.env.timeout(5)
        self.items.append("intruder")
        self.epoch += 1


def _guarded_env(specs):
    env = Environment()
    guard = AtomicityGuard(specs)
    guard.install(env)
    return env, guard


# -- witnesses ----------------------------------------------------------------


def test_witness_recorded_for_cross_yield_mutation():
    env, guard = _guarded_env(
        [GuardSpec("Counter", ("items",), rule="RACE001",
                   origin="tests/fixture:1")])
    counter = Counter(env)
    env.process(counter.loop())
    env.process(counter.mutate())
    env.run()
    assert guard.triggered
    (witness,) = [w for w in guard.witnesses if w.attr == "items"]
    assert witness.rule == "RACE001"
    assert witness.class_name == "Counter"
    assert witness.function == "loop"
    assert witness.time_suspended == 0.0
    assert witness.time_resumed == 10.0
    assert "intruder" in witness.after
    assert "intruder" not in witness.before
    assert witness.origin == "tests/fixture:1"
    assert "Counter.items changed" in witness.format()


def test_no_witness_without_interleaved_mutation():
    env, guard = _guarded_env([GuardSpec("Counter", ("items", "epoch"))])
    counter = Counter(env)
    env.process(counter.loop())  # nothing mutates concurrently
    env.run()
    assert not guard.triggered
    assert guard.witnesses == []


def test_unguarded_classes_pass_through_unwrapped():
    env, guard = _guarded_env([GuardSpec("SomethingElse", ("items",))])
    counter = Counter(env)
    env.process(counter.loop())
    env.process(counter.mutate())
    env.run()
    assert not guard.triggered


def test_multiple_attrs_tracked_independently():
    env, guard = _guarded_env([GuardSpec("Counter", ("items", "epoch"))])
    counter = Counter(env)
    env.process(counter.loop())
    env.process(counter.mutate())
    env.run()
    assert {w.attr for w in guard.witnesses} == {"items", "epoch"}


# -- shim transparency --------------------------------------------------------


def test_return_value_and_join_preserved():
    env, guard = _guarded_env([GuardSpec("Counter", ("items",))])
    counter = Counter(env)
    proc = env.process(counter.loop())
    collected = []

    def joiner():
        value = yield proc
        collected.append(value)

    env.process(joiner())
    env.run()
    # loop() returned len(snapshot) == 0 through the shim.
    assert collected == [0]


def test_exceptions_propagate_through_shim():
    class Faulty:
        def __init__(self, env):
            self.env = env
            self.state = 0

        def boom(self):
            yield self.env.timeout(1)
            raise ValueError("inner failure")

    env, guard = _guarded_env([GuardSpec("Faulty", ("state",))])
    faulty = Faulty(env)
    env.process(faulty.boom())
    with pytest.raises(ValueError, match="inner failure"):
        env.run()


def test_interrupt_delivered_through_shim():
    class Sleeper:
        def __init__(self, env):
            self.env = env
            self.naps = 0

        def sleep(self):
            try:
                yield self.env.timeout(1_000)
            except Interrupt as interrupt:
                return interrupt.cause

    env, guard = _guarded_env([GuardSpec("Sleeper", ("naps",))])
    sleeper = Sleeper(env)
    proc = env.process(sleeper.sleep())
    results = []

    def interrupter():
        yield env.timeout(3)
        proc.interrupt("wake")
        value = yield proc
        results.append(value)

    env.process(interrupter())
    env.run()
    assert results == ["wake"]


def test_install_refuses_double_wrap():
    env = Environment()
    AtomicityGuard([]).install(env)
    with pytest.raises(RuntimeError):
        AtomicityGuard([]).install(env)


# -- zero perturbation over the real system -----------------------------------


def test_history_digest_identical_with_guard():
    config = CheckConfig(seed=11, n_txns=12, n_faults=3)
    bare = run_check(config)
    guarded = run_check(config, atomicity=default_guard())
    assert bare.history.digest() == guarded.history.digest()
    assert bare.atomicity is None
    assert guarded.atomicity is not None
    assert guarded.stats["atomicity_witnesses"] == float(
        len(guarded.atomicity))


def test_run_check_surfaces_witnesses():
    # The default watchlist covers the coordinator's in-flight table,
    # which handlers legitimately mutate while other coroutines wait —
    # a busy run must therefore observe at least one cross-yield
    # mutation, proving the sanitizer sees through the real stack.
    config = CheckConfig(seed=3, n_txns=25)
    result = run_check(config, atomicity=default_guard())
    assert result.atomicity is not None
    assert len(result.atomicity) > 0
    witness = result.atomicity[0]
    assert witness.class_name in ("TransactionManager", "StorageNode")
    assert witness.format()
