"""The chaos-scenario catalogue: structure, determinism, and gates.

Three layers, matching what the scenarios CI tier relies on:

* catalogue structure — the named entries, their versions, and the
  fraction-to-absolute resolution of fault windows and shapes;
* run determinism — the same (scenario, profile, seed) triple always
  produces the identical recovery table, pinned per scenario for the
  smoke profile on seed 0 so metric drift fails loudly (bump the
  scenario's ``version`` when a change is intentional);
* plumbing — sharded scenario runs merge exactly, the CLI writes and
  gates, and the scenario fuzz axis perturbs deterministically.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.check import CheckConfig, run_check
from repro.harness import Experiment
from repro.harness.parallel import WorkerPool
from repro.harness.sharding import run_sharded
from repro.scenarios import (
    SCENARIOS,
    SMOKE,
    Arm,
    FaultSpec,
    Scenario,
    arms_for,
    build_config,
    get_scenario,
    render_csv,
    render_markdown,
    reports_digest,
    reports_json,
    run_scenario,
    scenario_names,
)
from repro.scenarios.__main__ import main


# ---------------------------------------------------------------- catalogue


def test_catalogue_names_and_versions():
    assert scenario_names() == (
        "dc_outage_failover", "wan_brownout", "diurnal_flash_crowd",
        "hotkey_storm", "mixed_tenants")
    for scenario in SCENARIOS:
        assert scenario.version >= 1
        assert scenario.title and scenario.description
        start, end = scenario.disturbance
        assert 0.0 <= start < end <= 1.0


def test_get_scenario_unknown_name():
    with pytest.raises(ValueError, match="catalogue"):
        get_scenario("nope")


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor", 0.1, 0.2)
    with pytest.raises(ValueError, match="window"):
        FaultSpec("outage", 0.5, 0.4, {"dc": 1})


def test_fault_spec_resolves_fractions_and_auto_keys():
    spec = FaultSpec("outage", 0.25, 0.45,
                     {"dc": 1, "failover_keys": "auto"})
    action = spec.action(3_000.0, 12_000.0, keys=("item:0", "item:1"))
    assert action.at_ms == pytest.approx(6_000.0)
    assert action.until_ms == pytest.approx(8_400.0)
    assert action.args["failover_keys"] == ("item:0", "item:1")


def test_disturbance_window_resolution():
    scenario = get_scenario("wan_brownout")
    start, end = scenario.disturbance_window(3_000.0, 12_000.0)
    assert (start, end) == (pytest.approx(6_600.0), pytest.approx(10_200.0))


def test_arms_for_profile():
    assert [arm.label for arm in arms_for(SMOKE)] == [
        "fixed/classic", "dynamic/classic"]
    full_like = dataclasses.replace(SMOKE, fast_arms=True)
    assert [arm.label for arm in arms_for(full_like)] == [
        "fixed/classic", "dynamic/classic", "fixed/fast", "dynamic/fast"]


def test_build_config_wires_shape_and_faults():
    config = build_config(get_scenario("mixed_tenants"),
                          Arm("dynamic", "classic"), SMOKE, seed=3)
    assert config.tenants is not None and len(config.tenants) == 2
    assert config.faults is not None
    writer, browser = config.tenants
    assert writer.rate_tps + browser.rate_tps == pytest.approx(
        SMOKE.rate_tps)
    assert browser.read_fraction == pytest.approx(0.6)
    hot = build_config(get_scenario("hotkey_storm"),
                       Arm("fixed", "classic"), SMOKE, seed=3)
    assert hot.zipf_s == pytest.approx(1.1)
    assert hot.modulation is not None


# ---------------------------------------------------------------- determinism

#: Pinned smoke recovery metrics, seed 0: (dip depth, recovery ms) per
#: (scenario, arm).  A drift here means the scenario's sample path
#: changed — bump the scenario ``version`` if it was intentional.
PINNED_SEED0 = {
    ("dc_outage_failover", "fixed/classic"): (0.75, 0.0),
    ("dc_outage_failover", "dynamic/classic"): (0.64, 0.0),
    ("wan_brownout", "fixed/classic"): (0.82, 0.0),
    ("wan_brownout", "dynamic/classic"): (0.82, 0.0),
    ("diurnal_flash_crowd", "fixed/classic"): (0.19, 300.0),
    ("diurnal_flash_crowd", "dynamic/classic"): (0.43, 600.0),
    ("hotkey_storm", "fixed/classic"): (0.0, 0.0),
    ("hotkey_storm", "dynamic/classic"): (0.45, 2_700.0),
    ("mixed_tenants", "fixed/classic"): (0.45, 0.0),
    ("mixed_tenants", "dynamic/classic"): (0.51, 0.0),
}


@pytest.fixture(scope="module")
def smoke_reports():
    return [run_scenario(scenario, SMOKE, seed=0)
            for scenario in SCENARIOS]


def test_every_smoke_arm_recovers(smoke_reports):
    for report in smoke_reports:
        assert report.passed(), report.scenario
        for arm in report.arms:
            assert arm.recovered, f"{report.scenario} {arm.arm}"
            assert arm.baseline_rate > 0.0
            assert 0.0 <= arm.dip_depth <= 1.0


def test_smoke_seed0_recovery_metrics_are_pinned(smoke_reports):
    seen = {}
    for report in smoke_reports:
        for arm in report.arms:
            seen[(report.scenario, arm.arm)] = (
                round(arm.dip_depth, 2), arm.recovery_ms)
    assert seen == PINNED_SEED0


def test_scenario_rerun_is_byte_identical(smoke_reports):
    again = run_scenario(get_scenario("dc_outage_failover"), SMOKE, seed=0)
    assert again.to_dict() == smoke_reports[0].to_dict()
    assert reports_digest([again]) == reports_digest([smoke_reports[0]])


def test_report_renderings_are_consistent(smoke_reports):
    markdown = render_markdown(smoke_reports)
    csv_text = render_csv(smoke_reports)
    payload = json.loads(reports_json(smoke_reports))
    assert len(payload) == len(SCENARIOS)
    for report in smoke_reports:
        assert report.scenario in markdown
        assert report.scenario in csv_text
    digest = reports_digest(smoke_reports)
    assert digest == hashlib.sha256(
        reports_json(smoke_reports).encode()).hexdigest()


# ---------------------------------------------------------------- sharding


def _result_digest(result) -> str:
    payload = json.dumps({
        "records": [dataclasses.asdict(record)
                    for record in result.metrics.all_records],
        "summary": result.summary(),
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def test_sharded_scenario_run_merges_exactly():
    # Serial shards vs pooled shards of a scenario config (tenants and
    # faults split included) must agree byte-for-byte.
    profile = dataclasses.replace(
        SMOKE, label="tiny", warmup_ms=500.0, duration_ms=2_000.0,
        drain_ms=1_000.0, n_items=200, oracle_samples=50)
    config = build_config(get_scenario("mixed_tenants"),
                          Arm("dynamic", "classic"), profile, seed=1)
    serial = run_sharded(config, 2, processes=1)
    pool = WorkerPool(2, oversubscribe=True)
    try:
        pooled = run_sharded(config, 2, pool=pool)
    finally:
        pool.close()
    assert _result_digest(serial) == _result_digest(pooled)


# ---------------------------------------------------------------- CLI


def test_cli_list_runs():
    assert main(["list"]) == 0


def test_cli_run_requires_names():
    assert main(["run"]) == 2


def test_cli_run_writes_artifacts_and_summary(tmp_path, capsys):
    out = tmp_path / "artifacts"
    summary = tmp_path / "summary.md"
    code = main(["run", "wan_brownout", "--seed", "0",
                 "--out", str(out), "--summary", str(summary)])
    assert code == 0
    for name in ("report.json", "recovery_table.txt",
                 "recovery_table.md", "recovery_table.csv", "digest.txt"):
        assert (out / name).exists(), name
    text = summary.read_text()
    assert "PASS" in text and "wan_brownout" in text
    digest = (out / "digest.txt").read_text().strip()
    assert f"`{digest}`" in text
    # The report subcommand re-renders the saved run and agrees.
    capsys.readouterr()
    assert main(["report", "--out", str(out)]) == 0
    assert digest in capsys.readouterr().out


def test_cli_report_missing_directory(tmp_path):
    assert main(["report", "--out", str(tmp_path / "missing")]) == 2


# ---------------------------------------------------------------- fuzz axis


def test_scenario_fuzz_axis_uses_anchor_and_is_deterministic():
    config = CheckConfig(seed=4, scenario="dc_outage_failover")
    first = run_check(config)
    second = run_check(config)
    assert first.history.digest() == second.history.digest()
    kinds = [action.kind for action in first.schedule.actions]
    assert "outage" in kinds  # the anchor survived the perturbation
    assert not first.violations


def test_scenario_fuzz_axis_differs_from_default_palette():
    plain = run_check(CheckConfig(seed=4))
    anchored = run_check(CheckConfig(seed=4, scenario="wan_brownout"))
    assert [a.describe() for a in plain.schedule.actions] \
        != [a.describe() for a in anchored.schedule.actions]
    assert any(a.kind == "brownout" for a in anchored.schedule.actions)
