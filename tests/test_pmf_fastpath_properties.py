"""Pins for the likelihood fast paths against their naive references.

Three layers of guarantee, in decreasing strictness:

* **byte-identical** — the default (``renormalize=True``) PMF
  operations and the exact-key memo must produce *bit-for-bit* the
  values the pre-optimization code produced; the seed-stability
  digests depend on it.  These assert ``np.array_equal`` / ``==``.
* **within 1e-12** — the fast-path-only operations (FFT convolution,
  CDF-domain ops without re-normalization, the fused convolution
  mixture, incremental refresh) are pinned to the reference chain
  within 1e-12 absolute error.
* **structural** — cache/version bookkeeping (effective support,
  windowed-histogram versions, memo LRU, signature-driven
  incremental model builds) behaves as documented.
"""

import numpy as np
import pytest

from repro.core.admission import LikelihoodMemo
from repro.core.histograms import (
    Pmf,
    WindowedHistogram,
    _reference_convolve,
    _reference_iid_max,
    _reference_max_of,
    _reference_mixture,
    _reference_quorum_of,
)
from repro.core.likelihood import CommitLikelihoodModel, LatencyMatrix
from repro.core.statistics import StatisticsService
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams

BIN_MS = 2.0
TOL = 1e-12


def random_pmfs(seed, n_bins=256, count=8):
    """A zoo of PMF shapes: dense, sparse, heavy-tail, saturated."""
    rng = np.random.default_rng(seed)
    pmfs = []
    for index in range(count):
        probs = np.zeros(n_bins)
        kind = index % 4
        if kind == 0:  # dense lump
            width = int(rng.integers(8, n_bins // 2))
            probs[:width] = rng.random(width)
        elif kind == 1:  # sparse spikes
            spikes = rng.integers(0, n_bins, size=5)
            probs[spikes] = rng.random(5)
        elif kind == 2:  # heavy tail reaching the last bin
            probs = rng.random(n_bins) ** 4
            probs[-1] += 0.05  # genuine saturated mass
        else:  # narrow point-like mass
            probs[int(rng.integers(0, n_bins))] = 1.0
        pmfs.append(Pmf(probs / probs.sum(), BIN_MS))
    return pmfs


def max_abs_diff(a: Pmf, b: Pmf) -> float:
    n = max(a.n_bins, b.n_bins)
    pa = np.zeros(n)
    pa[:a.n_bins] = a.probs
    pb = np.zeros(n)
    pb[:b.n_bins] = b.probs
    return float(np.abs(pa - pb).max())


# ---------------------------------------------------------------- convolution


def test_fft_convolve_matches_reference_within_tolerance():
    pmfs = random_pmfs(seed=1)
    for a in pmfs:
        for b in pmfs:
            fast = a.convolve(b, method="fft")
            exact = _reference_convolve(a, b)
            assert max_abs_diff(fast, exact) < TOL


def test_auto_convolve_is_exact_below_cutoff():
    # Default bins (<= 2047 full size) stay on the exact direct path:
    # the result must be byte-identical to the naive reference.
    for a in random_pmfs(seed=2, n_bins=512, count=6):
        for b in random_pmfs(seed=3, n_bins=512, count=6):
            auto = a.convolve(b)
            exact = _reference_convolve(a, b)
            assert np.array_equal(auto.probs, exact.probs)


def test_convolve_rejects_unknown_method():
    a, b = random_pmfs(seed=4, count=2)
    with pytest.raises(ValueError):
        a.convolve(b, method="fancy")


def test_convolution_mixture_matches_per_pair_chain():
    pmfs = random_pmfs(seed=5, count=6)
    pairs = [(pmfs[i], pmfs[i + 1]) for i in range(5)]
    weights = [0.1, 0.3, 0.2, 0.25, 0.15]
    fused = Pmf.convolution_mixture(pairs, weights)
    chain = Pmf.mixture([a.convolve(b) for a, b in pairs], weights)
    assert max_abs_diff(fused, chain) < TOL


def test_convolution_mixture_validation():
    a, b = random_pmfs(seed=6, count=2)
    with pytest.raises(ValueError):
        Pmf.convolution_mixture([], [])
    with pytest.raises(ValueError):
        Pmf.convolution_mixture([(a, b)], [1.0, 2.0])
    with pytest.raises(ValueError):
        Pmf.convolution_mixture([(a, b)], [0.0])


# ---------------------------------------------------------- CDF-domain algebra


def test_default_quorum_of_is_byte_identical_to_reference():
    pmfs = random_pmfs(seed=7, count=5)
    for quorum in (1, 3, 5):
        fast = Pmf.quorum_of(pmfs, quorum)
        ref = _reference_quorum_of(pmfs, quorum)
        assert np.array_equal(fast.probs, ref.probs)


def test_default_iid_max_is_byte_identical_to_reference():
    for pmf in random_pmfs(seed=8):
        for k in (1, 2, 7):
            assert np.array_equal(pmf.iid_max(k).probs,
                                  _reference_iid_max(pmf, k).probs)


def test_default_max_of_is_byte_identical_to_reference():
    pmfs = random_pmfs(seed=9, count=4)
    assert np.array_equal(Pmf.max_of(pmfs).probs,
                          _reference_max_of(pmfs).probs)


def test_default_mixture_is_byte_identical_to_reference():
    pmfs = random_pmfs(seed=10, count=4)
    weights = [0.4, 0.3, 0.2, 0.1]
    assert np.array_equal(Pmf.mixture(pmfs, weights).probs,
                          _reference_mixture(pmfs, weights).probs)


def test_unnormalized_cdf_ops_within_tolerance():
    pmfs = random_pmfs(seed=11, count=5)
    assert max_abs_diff(Pmf.quorum_of(pmfs, 3, renormalize=False),
                        _reference_quorum_of(pmfs, 3)) < TOL
    assert max_abs_diff(Pmf.max_of(pmfs, renormalize=False),
                        _reference_max_of(pmfs)) < TOL
    for pmf in pmfs:
        assert max_abs_diff(pmf.iid_max(4, renormalize=False),
                            _reference_iid_max(pmf, 4)) < TOL


def test_unnormalized_mixture_within_tolerance():
    pmfs = random_pmfs(seed=12, count=4)
    weights = [1.0, 2.0, 3.0, 4.0]
    assert max_abs_diff(Pmf.mixture(pmfs, weights, renormalize=False),
                        _reference_mixture(pmfs, weights)) < TOL


# ---------------------------------------------------------- support & truncate


def test_effective_support_trims_cdf_artifact_not_real_mass():
    # A CDF-domain result plants ~1e-16 of artifact mass in the last
    # bin (the forced cdf[-1] = 1.0); effective_support must see
    # through it while plain support cannot.
    lump = Pmf.from_samples([10.0, 12.0, 14.0], BIN_MS, 64)
    artifact = lump.iid_max(3, renormalize=False)
    if artifact.support == artifact.n_bins:
        assert artifact.effective_support < artifact.n_bins
    # Genuine saturated mass is orders of magnitude above the
    # tolerance and must be kept.
    saturated = Pmf.point(10.0, BIN_MS, 16).shift(1_000.0)
    assert saturated.effective_support == saturated.support


def test_effective_support_never_exceeds_support():
    for pmf in random_pmfs(seed=13):
        assert 1 <= pmf.effective_support <= pmf.support


def test_truncate_zero_epsilon_is_identity():
    pmf = random_pmfs(seed=14, count=1)[0]
    assert pmf.truncate(0.0) is pmf
    assert pmf.truncate(-1.0) is pmf


def test_truncate_conserves_mass_and_bounds_error():
    for pmf in random_pmfs(seed=15):
        cut = pmf.truncate(1e-9)
        assert cut.probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert max_abs_diff(cut, pmf) <= 1e-9


# ---------------------------------------------------------------- memoization


N_DC = 3
N_BINS = 256


def make_model(rtt_ms=40.0, **kwargs) -> CommitLikelihoodModel:
    rtts = {(a, b): Pmf.from_samples(
        [rtt_ms + a + 2 * b, rtt_ms + 4.0, rtt_ms - 2.0], BIN_MS, N_BINS)
        for a in range(N_DC) for b in range(a + 1, N_DC)}
    matrix = LatencyMatrix(N_DC, rtts, BIN_MS, N_BINS)
    model = CommitLikelihoodModel(
        matrix, leader_distribution=[1.0 / N_DC] * N_DC,
        size_distribution={1: 0.6, 2: 0.3, 3: 0.1}, **kwargs)
    model.precompute()
    return model


def test_memoized_record_likelihood_is_bit_identical():
    model = make_model()
    cases = [(cc, l, rate, w)
             for cc in range(N_DC) for l in range(N_DC)
             for rate in (0.0, 1e-3, 0.02) for w in (0.0, 5.0)]
    # Unmemoized ground truth.
    memo, model.memo = model.memo, None
    truth = [model.record_likelihood(cc, l, rate, w_ms=w)
             for cc, l, rate, w in cases]
    model.memo = memo
    # First pass fills the memo, second pass is all hits; both must
    # equal the ground truth exactly (exact keys, no quantization).
    for _ in range(2):
        got = [model.record_likelihood(cc, l, rate, w_ms=w)
               for cc, l, rate, w in cases]
        assert got == truth
    assert model.memo.hits >= len(cases)


def test_transaction_likelihood_memo_and_vectorization_agree():
    model = make_model()
    records = [(0, 1e-3), (1, 2e-3), (2, 0.0), (0, 1e-3)]
    memo, model.memo = model.memo, None
    expected = 1.0
    for leader, rate in records:
        expected *= model.record_likelihood(1, leader, rate, w_ms=3.0)
    model.memo = memo
    cold = model.transaction_likelihood(1, records, w_ms=3.0)
    warm = model.transaction_likelihood(1, records, w_ms=3.0)
    assert cold == expected
    assert warm == expected


def test_quantized_memo_evaluates_at_snapped_point():
    model = make_model(rate_quantum=1e-3, w_quantum=1.0)
    snapped_rate, snapped_w = model.memo.evaluation_point(0.00234, 4.6)
    assert snapped_rate == pytest.approx(0.002)
    assert snapped_w == pytest.approx(5.0)
    got = model.record_likelihood(0, 1, 0.00234, w_ms=4.6)
    memo, model.memo = model.memo, None
    truth = model.record_likelihood(0, 1, snapped_rate, w_ms=snapped_w)
    model.memo = memo
    assert got == truth
    # A neighbour snapping to the same grid point hits the same entry.
    before = model.memo.hits
    assert model.record_likelihood(0, 1, 0.0021, w_ms=5.4) == truth
    assert model.memo.hits == before + 1


def test_memo_lru_eviction_and_counters():
    memo = LikelihoodMemo(capacity=2)
    key_a, _ = memo.lookup(0, 0, 1e-3, 0.0)
    memo.store(key_a, 0.5)
    key_b, _ = memo.lookup(0, 1, 1e-3, 0.0)
    memo.store(key_b, 0.6)
    # Touch A so B is the least-recently-used entry.
    _, hit = memo.lookup(0, 0, 1e-3, 0.0)
    assert hit == 0.5
    key_c, _ = memo.lookup(0, 2, 1e-3, 0.0)
    memo.store(key_c, 0.7)
    assert len(memo) == 2
    assert memo.lookup(0, 1, 1e-3, 0.0)[1] is None  # B evicted
    assert memo.lookup(0, 0, 1e-3, 0.0)[1] == 0.5   # A survived
    assert memo.hits == 2 and memo.misses == 4
    assert memo.hit_rate() == pytest.approx(2 / 6)


def test_memo_invalidate_cells_is_surgical():
    memo = LikelihoodMemo()
    for cell in [(0, 0), (0, 1), (1, 1)]:
        for rate in (1e-3, 2e-3):
            key, _ = memo.lookup(cell[0], cell[1], rate, 0.0)
            memo.store(key, 0.9)
    assert memo.invalidate_cells([(0, 1)]) == 2
    assert memo.lookup(0, 1, 1e-3, 0.0)[1] is None
    assert memo.lookup(0, 0, 1e-3, 0.0)[1] == 0.9
    assert memo.invalidate_cells([]) == 0


def test_memo_validation():
    with pytest.raises(ValueError):
        LikelihoodMemo(capacity=0)
    with pytest.raises(ValueError):
        LikelihoodMemo(rate_quantum=0.0)
    with pytest.raises(ValueError):
        LikelihoodMemo(w_quantum=-1.0)


def test_refresh_invalidates_only_changed_cells_in_memo():
    model = make_model()
    for cc in range(N_DC):
        for l in range(N_DC):
            model.record_likelihood(cc, l, 1e-3, w_ms=2.0)
    filled = len(model.memo)
    assert filled == N_DC * N_DC
    update = model.latency.rtt(0, 1).shift(4.0)
    changed = model.refresh(rtt_updates={(0, 1): update, (1, 0): update})
    assert changed  # something was dirtied
    # Exactly the changed cells' entries are gone.
    assert len(model.memo) == filled - len(changed)


# ------------------------------------------------------------ incremental refresh


def test_refresh_matches_fresh_precompute_within_tolerance():
    model = make_model()
    update = model.latency.rtt(0, 1).shift(6.0)
    model.refresh(rtt_updates={(0, 1): update, (1, 0): update})

    fresh = make_model()
    fresh.latency.update_rtt(0, 1, update)
    fresh.latency.update_rtt(1, 0, update)
    fresh.precompute()

    for cc in range(N_DC):
        for l in range(N_DC):
            assert max_abs_diff(model.conflict_window_pmf(cc, l),
                                fresh.conflict_window_pmf(cc, l)) < TOL
            got = model.record_likelihood(cc, l, 2e-3, w_ms=5.0)
            want = fresh.record_likelihood(cc, l, 2e-3, w_ms=5.0)
            assert got == pytest.approx(want, abs=TOL)


def test_refresh_distribution_changes_match_fresh_model():
    model = make_model()
    new_leaders = [0.6, 0.3, 0.1]
    new_sizes = {1: 0.2, 2: 0.8}
    changed = model.refresh(leader_distribution=new_leaders,
                            size_distribution=new_sizes)
    assert changed == {(cc, l) for cc in range(N_DC) for l in range(N_DC)}

    fresh = make_model()
    fresh.leader_dist = list(new_leaders)
    fresh.size_dist = fresh._normalize_sizes(new_sizes, fresh.max_size)
    fresh.precompute()
    for cc in range(N_DC):
        for l in range(N_DC):
            assert max_abs_diff(model.conflict_window_pmf(cc, l),
                                fresh.conflict_window_pmf(cc, l)) < TOL


def test_refresh_without_changes_is_a_no_op():
    model = make_model()
    assert model.refresh() == set()
    assert model.refresh(leader_distribution=list(model.leader_dist)) == set()


def test_refresh_before_precompute_falls_back_to_full_build():
    rtts = {(a, b): Pmf.point(40.0, BIN_MS, N_BINS)
            for a in range(N_DC) for b in range(a + 1, N_DC)}
    matrix = LatencyMatrix(N_DC, rtts, BIN_MS, N_BINS)
    model = CommitLikelihoodModel(matrix, [1.0] * N_DC)
    assert not model.ready
    changed = model.refresh()
    assert model.ready
    assert changed == {(cc, l) for cc in range(N_DC) for l in range(N_DC)}


def test_update_rtt_validation():
    model = make_model()
    pmf = Pmf.point(10.0, BIN_MS, N_BINS)
    with pytest.raises(ValueError):
        model.latency.update_rtt(1, 1, pmf)
    with pytest.raises(ValueError):
        model.latency.update_rtt(0, 99, pmf)


# ----------------------------------------------------- windowed-histogram cache


def test_windowed_histogram_version_tracks_content():
    hist = WindowedHistogram(BIN_MS, 64, generations=2)
    v0 = hist.version
    hist.add(10.0)
    assert hist.version > v0
    v1 = hist.version
    # Rotation only bumps the version once counts actually age out —
    # unchanged stats must not dirty the model signature.
    hist.rotate()  # sample now in the older generation, still counted
    assert hist.version == v1
    hist.rotate()  # sample retired: aggregate counts changed
    assert hist.version > v1
    v_empty = hist.version
    hist.rotate()  # nothing left to retire
    assert hist.version == v_empty


def test_windowed_histogram_pmf_is_cached_until_dirty():
    hist = WindowedHistogram(BIN_MS, 64, generations=2)
    hist.add(10.0)
    first = hist.pmf()
    assert hist.pmf() is first  # cache hit: same object
    hist.add(14.0)
    second = hist.pmf()
    assert second is not first
    assert second.mean() != first.mean()


def test_windowed_histogram_fallback_pmf_not_cached_across_adds():
    hist = WindowedHistogram(BIN_MS, 64, generations=2)
    fallback = Pmf.point(20.0, BIN_MS, 64)
    assert hist.pmf(fallback=fallback) is fallback
    hist.add(10.0)
    assert hist.pmf(fallback=fallback) is not fallback


# ------------------------------------------------------ statistics incremental


def make_stats(n_dc=3, seed=9):
    env = Environment()
    topo = uniform_topology(n_dc, one_way_ms=20.0, sigma=0.05)
    streams = RandomStreams(seed=seed)
    cluster = Cluster(env, topo, streams)
    stats = StatisticsService(env, cluster, streams, rotate_ms=0,
                              n_bins=N_BINS)
    for a in range(n_dc):
        for b in range(a + 1, n_dc):
            for sample in (38.0, 40.0, 44.0):
                stats.record_rtt(a, b, sample + a + b)
    return stats, topo


def test_incremental_build_reuses_and_patches_the_model():
    stats, topo = make_stats()
    first = stats.build_model(fallback=topo, incremental=True)
    # No new samples: the same object comes back, nothing recomputed.
    assert stats.build_model(fallback=topo, incremental=True) is first
    # New samples on one pair: still the same object, now patched.
    for _ in range(50):
        stats.record_rtt(0, 1, 80.0)
    patched = stats.build_model(fallback=topo, incremental=True)
    assert patched is first
    assert patched.latency.rtt(0, 1).mean() > 50.0

    fresh = stats.build_model(fallback=topo, incremental=False)
    assert fresh is not first
    for cc in range(3):
        for l in range(3):
            assert max_abs_diff(patched.conflict_window_pmf(cc, l),
                                fresh.conflict_window_pmf(cc, l)) < TOL


def test_incremental_build_falls_back_on_quorum_change():
    stats, topo = make_stats()
    first = stats.build_model(fallback=topo, incremental=True)
    other = stats.build_model(fallback=topo, quorum=3, incremental=True)
    assert other is not first
    assert other.quorum == 3
