"""Tests for the per-transaction tracer."""

import pytest

from repro.core import PlanetSession
from repro.harness.tracing import TransactionTrace, TransactionTracer
from repro.mdcc import Cluster
from repro.net import uniform_topology
from repro.sim import Environment, RandomStreams
from repro.storage import Update, WriteOp


def make_session(seed=101):
    env = Environment()
    topo = uniform_topology(3, one_way_ms=20.0, sigma=0.02)
    cluster = Cluster(env, topo, RandomStreams(seed=seed))
    cluster.load({"item:1": 100, "item:2": 100})
    return env, cluster, PlanetSession(cluster, "web", 0)


def test_trace_records_protocol_stages():
    env, cluster, session = make_session()
    tracer = TransactionTracer()
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_failure(lambda i: None)
          .on_complete(lambda i: None))
    planet_tx = tx.execute()
    trace = tracer.attach(planet_tx)
    env.run()
    stages = trace.stages()
    for expected in ("reads_done", "proposed", "accepted", "learned",
                     "decided", "stage:complete", "finally"):
        assert expected in stages
    # Times are monotone non-decreasing along the timeline.
    times = [event.at_ms for event in trace.events]
    assert times == sorted(times)


def test_trace_learned_detail_and_decision():
    env, cluster, session = make_session()
    tracer = TransactionTracer()
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1)),
                               WriteOp("item:2", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_failure(lambda i: None))
    planet_tx = tx.execute()
    trace = tracer.attach(planet_tx)
    env.run()
    learned = [e for e in trace.events if e.stage == "learned"]
    assert len(learned) == 2
    assert "accepted" in learned[-1].detail
    decided = [e for e in trace.events if e.stage == "decided"]
    assert decided[0].detail == "commit"


def test_trace_duration_between_stages():
    env, cluster, session = make_session()
    tracer = TransactionTracer()
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_failure(lambda i: None))
    planet_tx = tx.execute()
    trace = tracer.attach(planet_tx)
    env.run()
    gap = trace.duration_of("proposed", "decided")
    assert gap is not None and gap > 0
    assert trace.duration_of("proposed", "never-happens") is None


def test_trace_render_and_str():
    env, cluster, session = make_session()
    tracer = TransactionTracer()
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=5_000)
          .on_failure(lambda i: None))
    planet_tx = tx.execute()
    trace = tracer.attach(planet_tx)
    env.run()
    text = trace.render()
    assert trace.txid in text
    assert "decided" in text


def test_attach_requires_started_transaction():
    tracer = TransactionTracer()
    trace = TransactionTrace(txid="t", start_ms=0.0)
    trace.add(5.0, "x")
    assert trace.events[0].at_ms == 5.0
    # attach() needs a handle
    env, cluster, session = make_session(seed=102)
    tx = (session.transaction([WriteOp("item:1", Update.delta(-1))],
                              timeout_ms=100)
          .on_failure(lambda i: None))
    planet_tx = tx.execute()
    # handle exists immediately after execute, so attaching works
    assert tracer.attach(planet_tx) is not None
